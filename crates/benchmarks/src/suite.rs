//! The assembled nine-benchmark suite.

use crate::kernels;
use autophase_ir::Module;

/// One benchmark: a name and its freshly built module.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (matches the paper's Figure 7 labels).
    pub name: &'static str,
    /// The program, in unoptimized (`-O0`-like) form.
    pub module: Module,
}

/// Build the full suite, in the paper's order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "adpcm",
            module: kernels::adpcm(),
        },
        Benchmark {
            name: "aes",
            module: kernels::aes(),
        },
        Benchmark {
            name: "blowfish",
            module: kernels::blowfish(),
        },
        Benchmark {
            name: "dhrystone",
            module: kernels::dhrystone(),
        },
        Benchmark {
            name: "gsm",
            module: kernels::gsm(),
        },
        Benchmark {
            name: "matmul",
            module: kernels::matmul(),
        },
        Benchmark {
            name: "mpeg2",
            module: kernels::mpeg2(),
        },
        Benchmark {
            name: "qsort",
            module: kernels::qsort(),
        },
        Benchmark {
            name: "sha",
            module: kernels::sha(),
        },
    ]
}

/// Look one benchmark up by name.
pub fn by_name(name: &str) -> Option<Module> {
    suite()
        .into_iter()
        .find(|b| b.name == name)
        .map(|b| b.module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::verify_module;

    #[test]
    fn all_benchmarks_verify_and_terminate() {
        for b in suite() {
            verify_module(&b.module).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let t = run_main(&b.module, 5_000_000).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(t.insts_executed > 500, "{} too trivial", b.name);
        }
    }

    #[test]
    fn checksums_are_deterministic_and_distinct() {
        let r1: Vec<Option<i64>> = suite()
            .iter()
            .map(|b| run_main(&b.module, 5_000_000).unwrap().return_value)
            .collect();
        let r2: Vec<Option<i64>> = suite()
            .iter()
            .map(|b| run_main(&b.module, 5_000_000).unwrap().return_value)
            .collect();
        assert_eq!(r1, r2);
        let mut distinct = r1.clone();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() >= 8,
            "checksums suspiciously collide: {r1:?}"
        );
    }

    #[test]
    fn suite_construction_is_deterministic() {
        let a = suite();
        let b = suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                autophase_ir::printer::print_module(&x.module),
                autophase_ir::printer::print_module(&y.module),
                "{} not deterministic",
                x.name
            );
        }
    }

    #[test]
    fn feature_profiles_are_realistic() {
        // Every kernel must look like a real program to the extractor:
        // loops (edges > blocks), memory traffic, and branches.
        for b in suite() {
            let f = autophase_features::extract(&b.module);
            assert!(f[50] >= 5, "{}: too few blocks", b.name);
            assert!(f[18] > f[50], "{}: no loops?", b.name);
            assert!(f[52] > 5, "{}: no memory traffic", b.name);
            assert!(f[15] >= 3, "{}: no branching", b.name);
            assert!(f[27] >= 1, "{}: no allocas (not -O0-like)", b.name);
        }
    }

    #[test]
    fn qsort_actually_sorts() {
        // The order-sensitive checksum differs from the unsorted one; as a
        // sanity check, run and make sure the loop terminated (not fuel).
        let m = by_name("qsort").unwrap();
        let t = run_main(&m, 5_000_000).unwrap();
        assert!(t.return_value.is_some());
    }

    #[test]
    fn o3_preserves_every_benchmark_and_reduces_work() {
        for b in suite() {
            let before = run_main(&b.module, 20_000_000).unwrap();
            let mut m = b.module.clone();
            autophase_passes::o3::o3(&mut m);
            verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let after = run_main(&m, 20_000_000).unwrap();
            assert_eq!(
                before.observable(),
                after.observable(),
                "{} changed behaviour under O3",
                b.name
            );
            assert!(
                after.insts_executed < before.insts_executed,
                "{}: O3 did not reduce dynamic work ({} -> {})",
                b.name,
                before.insts_executed,
                after.insts_executed
            );
        }
    }

    #[test]
    fn hls_cycles_improve_under_o3() {
        use autophase_hls::{profile::cycle_count, HlsConfig};
        let cfg = HlsConfig::default();
        let mut improved = 0;
        let total = suite().len();
        for b in suite() {
            let c0 = cycle_count(&b.module, &cfg).unwrap();
            let mut m = b.module.clone();
            autophase_passes::o3::o3(&mut m);
            let c1 = cycle_count(&m, &cfg).unwrap();
            if c1 < c0 {
                improved += 1;
            }
        }
        assert_eq!(improved, total, "O3 should speed up every benchmark");
    }

    #[test]
    fn suite_has_calls_and_tables() {
        // The kernels must exercise interprocedural and global passes.
        let with_calls = suite()
            .iter()
            .filter(|b| autophase_features::extract(&b.module)[33] > 0)
            .count();
        assert!(with_calls >= 4);
        let with_globals = suite()
            .iter()
            .filter(|b| b.module.global_ids().count() > 0)
            .count();
        assert!(with_globals >= 4);
    }
}
