//! The nine-benchmark evaluation suite (§6.1).
//!
//! The paper evaluates on nine real HLS programs "adapted from CHStone and
//! LegUp examples": adpcm, aes, blowfish, dhrystone, gsm, matmul, mpeg2,
//! qsort, and sha. This crate rebuilds each as a faithful-in-structure
//! integer kernel in `autophase-ir`, emitted the way a `-O0` C frontend
//! would: every local behind an alloca, loops in top-tested "while" form,
//! helpers called rather than inlined — leaving exactly the optimization
//! headroom the pass-ordering search is supposed to exploit.
//!
//! Every benchmark's `main` returns a checksum of its outputs, so the
//! semantics-preservation oracle covers the whole computation, and runs
//! within a few hundred thousand interpreter steps.
//!
//! # Example
//!
//! ```
//! let suite = autophase_benchmarks::suite();
//! assert_eq!(suite.len(), 9);
//! for b in &suite {
//!     autophase_ir::verify::verify_module(&b.module)?;
//! }
//! # Ok::<(), autophase_ir::verify::VerifyError>(())
//! ```
#![warn(missing_docs)]

pub mod kernels;
pub mod suite;

pub use suite::{suite, Benchmark};
