//! The nine benchmark kernels.
//!
//! Construction conventions (deliberately `-O0`-like):
//! * scalars live behind 1-element allocas (`var`/`get`/`set` helpers);
//! * loops are built with [`FunctionBuilder::counted_loop`], i.e. in
//!   top-tested "while" form that `-loop-rotate` can improve;
//! * helper routines are real functions, so `-inline`/`-functionattrs`
//!   matter;
//! * constant tables are module globals, so `-globalopt`/`-memcpyopt`
//!   matter.

use autophase_ir::builder::FunctionBuilder;
use autophase_ir::{BinOp, CmpPred, FuncId, Global, Module, Type, Value};

/// Allocate a scalar local initialized to `init`.
fn var(b: &mut FunctionBuilder, init: Value) -> Value {
    let p = b.alloca(Type::I32, 1);
    b.store(p, init);
    p
}

fn get(b: &mut FunctionBuilder, p: Value) -> Value {
    b.load(Type::I32, p)
}

fn set(b: &mut FunctionBuilder, p: Value, v: Value) {
    b.store(p, v);
}

/// Clamp helper used by several kernels: `clamp(x, lo, hi)`.
fn add_clamp(m: &mut Module) -> FuncId {
    let mut b = FunctionBuilder::new("clamp", vec![Type::I32, Type::I32, Type::I32], Type::I32);
    let lo_bb = b.new_block();
    let hi_chk = b.new_block();
    let hi_bb = b.new_block();
    let ok = b.new_block();
    let x = b.arg(0);
    let lo = b.arg(1);
    let hi = b.arg(2);
    let c1 = b.icmp(CmpPred::Slt, x, lo);
    b.cond_br(c1, lo_bb, hi_chk);
    b.switch_to(lo_bb);
    b.ret(Some(lo));
    b.switch_to(hi_chk);
    let c2 = b.icmp(CmpPred::Sgt, x, hi);
    b.cond_br(c2, hi_bb, ok);
    b.switch_to(hi_bb);
    b.ret(Some(hi));
    b.switch_to(ok);
    b.ret(Some(x));
    m.add_function(b.finish())
}

/// Fold an array region into a running checksum local.
fn checksum_array(b: &mut FunctionBuilder, acc: Value, arr: Value, len: i32) {
    b.counted_loop(Value::i32(len), |b, i| {
        let p = b.gep(arr, i);
        let v = b.load(Type::I32, p);
        let c = get(b, acc);
        let x = b.binary(BinOp::Xor, c, v);
        let r = b.binary(BinOp::Mul, x, Value::i32(16777619));
        set(b, acc, r);
    });
}

/// `adpcm`: ADPCM encoder over a synthetic waveform — step-size table,
/// sign logic, saturation.
pub fn adpcm() -> Module {
    let mut m = Module::new("adpcm");
    let step_tab: Vec<i64> = (0..32).map(|i| 7 + i * i * 3).collect();
    let steps = m.add_global(Global::constant("step_table", Type::I32, step_tab));
    let clamp = add_clamp(&mut m);

    let n = 64;
    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    let input = b.alloca(Type::I32, n as u32);
    // Synthetic triangle-ish waveform.
    b.counted_loop(Value::i32(n), |b, i| {
        let t = b.binary(BinOp::Mul, i, Value::i32(37));
        let w = b.binary(BinOp::URem, t, Value::i32(255));
        let centered = b.binary(BinOp::Sub, w, Value::i32(128));
        let p = b.gep(input, i);
        b.store(p, centered);
    });

    let out = b.alloca(Type::I32, n as u32);
    let valpred = var(&mut b, Value::i32(0));
    let index = var(&mut b, Value::i32(0));
    b.counted_loop(Value::i32(n), |b, i| {
        let p = b.gep(input, i);
        let sample = b.load(Type::I32, p);
        let vp = get(b, valpred);
        let diff0 = b.binary(BinOp::Sub, sample, vp);
        // sign/magnitude
        let neg = b.icmp(CmpPred::Slt, diff0, Value::i32(0));
        let negd = b.binary(BinOp::Sub, Value::i32(0), diff0);
        let mag = b.select(neg, negd, diff0);
        let idx = get(b, index);
        let sp = b.gep(Value::Global(steps), idx);
        let step = b.load(Type::I32, sp);
        // delta = min(mag * 4 / step, 7)
        let m4 = b.binary(BinOp::Mul, mag, Value::i32(4));
        let d = b.binary(BinOp::SDiv, m4, step);
        let delta = b.call(clamp, Type::I32, vec![d, Value::i32(0), Value::i32(7)]);
        // predictor update: vp += sign ? -(delta*step/4) : delta*step/4
        let ds = b.binary(BinOp::Mul, delta, step);
        let upd = b.binary(BinOp::AShr, ds, Value::i32(2));
        let nupd = b.binary(BinOp::Sub, Value::i32(0), upd);
        let sel = b.select(neg, nupd, upd);
        let vp2 = b.binary(BinOp::Add, vp, sel);
        let vp3 = b.call(
            clamp,
            Type::I32,
            vec![vp2, Value::i32(-32768), Value::i32(32767)],
        );
        set(b, valpred, vp3);
        // index update
        let step_change = b.binary(BinOp::Sub, delta, Value::i32(3));
        let idx2 = b.binary(BinOp::Add, idx, step_change);
        let idx3 = b.call(clamp, Type::I32, vec![idx2, Value::i32(0), Value::i32(31)]);
        set(b, index, idx3);
        // emit code
        let zneg = b.cast(autophase_ir::CastOp::ZExt, Type::I32, neg);
        let signbit = b.binary(BinOp::Shl, zneg, Value::i32(3));
        let code = b.binary(BinOp::Or, delta, signbit);
        let op = b.gep(out, i);
        b.store(op, code);
    });

    let acc = var(&mut b, Value::i32(0));
    checksum_array(&mut b, acc, out, n);
    let vpf = get(&mut b, valpred);
    let af = get(&mut b, acc);
    let r = b.binary(BinOp::Add, af, vpf);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

/// `aes`: byte-substitution + mix rounds over a 16-byte state with an
/// S-box table.
pub fn aes() -> Module {
    let mut m = Module::new("aes");
    // A bijective-ish "sbox": affine over GF-ish arithmetic (not real AES,
    // same access pattern).
    let sbox: Vec<i64> = (0..256).map(|i| ((i * 167 + 91) % 256) as i64).collect();
    let sbox_g = m.add_global(Global::constant("sbox", Type::I32, sbox));
    let rkeys: Vec<i64> = (0..176).map(|i| ((i * 73 + 13) % 256) as i64).collect();
    let rk_g = m.add_global(Global::constant("round_keys", Type::I32, rkeys));

    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    let state = b.alloca(Type::I32, 16);
    b.counted_loop(Value::i32(16), |b, i| {
        let v = b.binary(BinOp::Mul, i, Value::i32(17));
        let v = b.binary(BinOp::And, v, Value::i32(255));
        let p = b.gep(state, i);
        b.store(p, v);
    });

    // 10 rounds: sub-bytes, shift-ish rotate, add round key.
    b.counted_loop(Value::i32(10), |b, round| {
        // SubBytes
        b.counted_loop(Value::i32(16), |b, i| {
            let p = b.gep(state, i);
            let v = b.load(Type::I32, p);
            let sp = b.gep(Value::Global(sbox_g), v);
            let s = b.load(Type::I32, sp);
            b.store(p, s);
        });
        // MixColumns-ish: state[i] ^= state[(i+4)%16] * 2 (mod 256)
        b.counted_loop(Value::i32(16), |b, i| {
            let j0 = b.binary(BinOp::Add, i, Value::i32(4));
            let j = b.binary(BinOp::URem, j0, Value::i32(16));
            let pj = b.gep(state, j);
            let vj = b.load(Type::I32, pj);
            let dv = b.binary(BinOp::Shl, vj, Value::i32(1));
            let dv = b.binary(BinOp::And, dv, Value::i32(255));
            let pi = b.gep(state, i);
            let vi = b.load(Type::I32, pi);
            let x = b.binary(BinOp::Xor, vi, dv);
            b.store(pi, x);
        });
        // AddRoundKey
        b.counted_loop(Value::i32(16), |b, i| {
            let off = b.binary(BinOp::Mul, round, Value::i32(16));
            let k = b.binary(BinOp::Add, off, i);
            let kp = b.gep(Value::Global(rk_g), k);
            let kv = b.load(Type::I32, kp);
            let pi = b.gep(state, i);
            let vi = b.load(Type::I32, pi);
            let x = b.binary(BinOp::Xor, vi, kv);
            b.store(pi, x);
        });
    });

    let acc = var(&mut b, Value::i32(0));
    checksum_array(&mut b, acc, state, 16);
    let r = get(&mut b, acc);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

/// `blowfish`: Feistel network with P-array and an S-box-driven F
/// function implemented as a helper call.
pub fn blowfish() -> Module {
    let mut m = Module::new("blowfish");
    let p_arr: Vec<i64> = (0..18u32)
        .map(|i| 0x243F_6A88u32.wrapping_add(i.wrapping_mul(0x9E37_79B9)) as i32 as i64)
        .collect();
    let p_g = m.add_global(Global::constant("p_array", Type::I32, p_arr));
    let sbox: Vec<i64> = (0..256)
        .map(|i| ((i * 2654435761u64) % 4294967296) as i64 as i32 as i64)
        .collect();
    let s_g = m.add_global(Global::constant("sbox", Type::I32, sbox));

    // F(x) = (S[x&255] + S[(x>>8)&255]) ^ S[(x>>16)&255]
    let f_fn = {
        let mut b = FunctionBuilder::new("feistel_f", vec![Type::I32], Type::I32);
        let x = b.arg(0);
        let b0 = b.binary(BinOp::And, x, Value::i32(255));
        let x8 = b.binary(BinOp::LShr, x, Value::i32(8));
        let b1 = b.binary(BinOp::And, x8, Value::i32(255));
        let x16 = b.binary(BinOp::LShr, x, Value::i32(16));
        let b2 = b.binary(BinOp::And, x16, Value::i32(255));
        let p0 = b.gep(Value::Global(s_g), b0);
        let s0 = b.load(Type::I32, p0);
        let p1 = b.gep(Value::Global(s_g), b1);
        let s1 = b.load(Type::I32, p1);
        let p2 = b.gep(Value::Global(s_g), b2);
        let s2 = b.load(Type::I32, p2);
        let t = b.binary(BinOp::Add, s0, s1);
        let r = b.binary(BinOp::Xor, t, s2);
        b.ret(Some(r));
        m.add_function(b.finish())
    };

    let n_blocks = 8;
    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    let data = b.alloca(Type::I32, (n_blocks * 2) as u32);
    b.counted_loop(Value::i32(n_blocks * 2), |b, i| {
        let v = b.binary(BinOp::Mul, i, Value::i32(0x01010101u32 as i32));
        let p = b.gep(data, i);
        b.store(p, v);
    });

    b.counted_loop(Value::i32(n_blocks), |b, blk| {
        let li = b.binary(BinOp::Mul, blk, Value::i32(2));
        let ri = b.binary(BinOp::Add, li, Value::i32(1));
        let lp = b.gep(data, li);
        let rp = b.gep(data, ri);
        let l_var = var(b, Value::i32(0));
        let r_var = var(b, Value::i32(0));
        let l0 = b.load(Type::I32, lp);
        set(b, l_var, l0);
        let r0 = b.load(Type::I32, rp);
        set(b, r_var, r0);
        // 16 Feistel rounds.
        b.counted_loop(Value::i32(16), |b, round| {
            let l = get(b, l_var);
            let pp = b.gep(Value::Global(p_g), round);
            let pv = b.load(Type::I32, pp);
            let lx = b.binary(BinOp::Xor, l, pv);
            let f = b.call(f_fn, Type::I32, vec![lx]);
            let r = get(b, r_var);
            let rx = b.binary(BinOp::Xor, r, f);
            set(b, l_var, rx);
            set(b, r_var, lx);
        });
        let lf = get(b, l_var);
        let rf = get(b, r_var);
        b.store(lp, lf);
        b.store(rp, rf);
    });

    let acc = var(&mut b, Value::i32(0));
    checksum_array(&mut b, acc, data, n_blocks * 2);
    let r = get(&mut b, acc);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

/// `dhrystone`: the classic integer mix — record copies through arrays,
/// arithmetic procedures, character-ish comparisons.
pub fn dhrystone() -> Module {
    let mut m = Module::new("dhrystone");

    // Proc: f(a, b) = (a + b) * 3 - 1 through branches.
    let proc7 = {
        let mut b = FunctionBuilder::new("proc7", vec![Type::I32, Type::I32], Type::I32);
        let s = b.binary(BinOp::Add, b.arg(0), b.arg(1));
        let t = b.binary(BinOp::Mul, s, Value::i32(3));
        let r = b.binary(BinOp::Sub, t, Value::i32(1));
        b.ret(Some(r));
        m.add_function(b.finish())
    };
    // Func2-ish comparison helper.
    let func2 = {
        let mut b = FunctionBuilder::new("func2", vec![Type::I32, Type::I32], Type::I32);
        let gt = b.new_block();
        let le = b.new_block();
        let c = b.icmp(CmpPred::Sgt, b.arg(0), b.arg(1));
        b.cond_br(c, gt, le);
        b.switch_to(gt);
        let d = b.binary(BinOp::Sub, b.arg(0), b.arg(1));
        b.ret(Some(d));
        b.switch_to(le);
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish())
    };

    let runs = 40;
    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    let arr1 = b.alloca(Type::I32, 32);
    let arr2 = b.alloca(Type::I32, 32);
    let int_glob = var(&mut b, Value::i32(0));
    let bool_glob = var(&mut b, Value::i32(0));

    b.counted_loop(Value::i32(runs), |b, run| {
        // Proc1-ish: arr1[run % 32] = proc7(run, int_glob)
        let ig = get(b, int_glob);
        let v = b.call(proc7, Type::I32, vec![run, ig]);
        let idx = b.binary(BinOp::URem, run, Value::i32(32));
        let p1 = b.gep(arr1, idx);
        b.store(p1, v);
        // Proc8-ish: arr2[i] = arr1[i] + run for a stripe
        b.counted_loop(Value::i32(8), |b, i| {
            let j = b.binary(BinOp::Add, i, Value::i32(4));
            let j = b.binary(BinOp::URem, j, Value::i32(32));
            let src = b.gep(arr1, j);
            let sv = b.load(Type::I32, src);
            let dv = b.binary(BinOp::Add, sv, run);
            let dst = b.gep(arr2, j);
            b.store(dst, dv);
        });
        // Func2-ish comparisons update bool_glob / int_glob.
        let a0 = b.gep(arr2, Value::i32(4));
        let av = b.load(Type::I32, a0);
        let cres = b.call(func2, Type::I32, vec![av, run]);
        let bg = get(b, bool_glob);
        let bg2 = b.binary(BinOp::Add, bg, cres);
        set(b, bool_glob, bg2);
        let ig2 = b.binary(BinOp::Add, ig, Value::i32(1));
        set(b, int_glob, ig2);
    });

    let acc = var(&mut b, Value::i32(0));
    checksum_array(&mut b, acc, arr1, 32);
    checksum_array(&mut b, acc, arr2, 32);
    let a = get(&mut b, acc);
    let bg = get(&mut b, bool_glob);
    let ig = get(&mut b, int_glob);
    let t = b.binary(BinOp::Add, a, bg);
    let r = b.binary(BinOp::Add, t, ig);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

/// `gsm`: LPC autocorrelation — the multiply-accumulate heart of the
/// CHStone gsm kernel.
pub fn gsm() -> Module {
    let mut m = Module::new("gsm");
    let n = 64;
    let lags = 9;
    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    let signal = b.alloca(Type::I32, n as u32);
    b.counted_loop(Value::i32(n), |b, i| {
        let t = b.binary(BinOp::Mul, i, Value::i32(89));
        let t2 = b.binary(BinOp::URem, t, Value::i32(127));
        let v = b.binary(BinOp::Sub, t2, Value::i32(63));
        let p = b.gep(signal, i);
        b.store(p, v);
    });
    let autoc = b.alloca(Type::I32, lags as u32);
    b.counted_loop(Value::i32(lags), |b, k| {
        let acc = var(b, Value::i32(0));
        let bound = b.binary(BinOp::Sub, Value::i32(n), k);
        b.counted_loop(bound, |b, i| {
            let pi = b.gep(signal, i);
            let xi = b.load(Type::I32, pi);
            let ik = b.binary(BinOp::Add, i, k);
            let pk = b.gep(signal, ik);
            let xk = b.load(Type::I32, pk);
            let prod = b.binary(BinOp::Mul, xi, xk);
            let scaled = b.binary(BinOp::AShr, prod, Value::i32(2));
            let a = get(b, acc);
            let s = b.binary(BinOp::Add, a, scaled);
            set(b, acc, s);
        });
        let a = get(b, acc);
        let p = b.gep(autoc, k);
        b.store(p, a);
    });
    let acc = var(&mut b, Value::i32(0));
    checksum_array(&mut b, acc, autoc, lags);
    let r = get(&mut b, acc);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

/// `matmul`: 8×8 integer matrix multiply, triple loop.
pub fn matmul() -> Module {
    let mut m = Module::new("matmul");
    let n = 8;
    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    let a = b.alloca(Type::I32, (n * n) as u32);
    let bb_ = b.alloca(Type::I32, (n * n) as u32);
    let c = b.alloca(Type::I32, (n * n) as u32);
    b.counted_loop(Value::i32(n * n), |b, i| {
        let va = b.binary(BinOp::URem, i, Value::i32(7));
        let pa = b.gep(a, i);
        b.store(pa, va);
        let t = b.binary(BinOp::Mul, i, Value::i32(3));
        let vb = b.binary(BinOp::URem, t, Value::i32(5));
        let pb = b.gep(bb_, i);
        b.store(pb, vb);
    });
    b.counted_loop(Value::i32(n), |b, i| {
        b.counted_loop(Value::i32(n), |b, j| {
            let acc = var(b, Value::i32(0));
            b.counted_loop(Value::i32(n), |b, k| {
                let in_ = b.binary(BinOp::Mul, i, Value::i32(n));
                let aik = b.binary(BinOp::Add, in_, k);
                let pa = b.gep(a, aik);
                let va = b.load(Type::I32, pa);
                let kn = b.binary(BinOp::Mul, k, Value::i32(n));
                let bkj = b.binary(BinOp::Add, kn, j);
                let pb = b.gep(bb_, bkj);
                let vb = b.load(Type::I32, pb);
                let prod = b.binary(BinOp::Mul, va, vb);
                let cur = get(b, acc);
                let s = b.binary(BinOp::Add, cur, prod);
                set(b, acc, s);
            });
            let in_ = b.binary(BinOp::Mul, i, Value::i32(n));
            let cij = b.binary(BinOp::Add, in_, j);
            let pc = b.gep(c, cij);
            let s = get(b, acc);
            b.store(pc, s);
        });
    });
    let acc = var(&mut b, Value::i32(0));
    checksum_array(&mut b, acc, c, n * n);
    let r = get(&mut b, acc);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

/// `mpeg2`: an 8-point IDCT-like butterfly applied to the rows and
/// columns of an 8×8 block (the CHStone mpeg2 kernel's hot loop).
pub fn mpeg2() -> Module {
    let mut m = Module::new("mpeg2");
    let w: Vec<i64> = vec![2048, 2841, 2676, 2408, 2048, 1609, 1108, 565];
    let w_g = m.add_global(Global::constant("idct_w", Type::I32, w));
    let n = 8;
    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    let block = b.alloca(Type::I32, (n * n) as u32);
    b.counted_loop(Value::i32(n * n), |b, i| {
        let t = b.binary(BinOp::Mul, i, Value::i32(7));
        let v0 = b.binary(BinOp::URem, t, Value::i32(64));
        let v = b.binary(BinOp::Sub, v0, Value::i32(32));
        let p = b.gep(block, i);
        b.store(p, v);
    });
    // Row pass then column pass.
    for pass in 0..2 {
        b.counted_loop(Value::i32(n), |b, row| {
            b.counted_loop(Value::i32(n / 2), |b, k| {
                let stride = Value::i32(if pass == 0 { 1 } else { n });
                let base = b.binary(BinOp::Mul, row, Value::i32(if pass == 0 { n } else { 1 }));
                let ks = b.binary(BinOp::Mul, k, stride);
                let i0 = b.binary(BinOp::Add, base, ks);
                let off = b.binary(BinOp::Mul, Value::i32(n / 2), stride);
                let i1 = b.binary(BinOp::Add, i0, off);
                let p0 = b.gep(block, i0);
                let x0 = b.load(Type::I32, p0);
                let p1 = b.gep(block, i1);
                let x1 = b.load(Type::I32, p1);
                let wp = b.gep(Value::Global(w_g), k);
                let wk = b.load(Type::I32, wp);
                let scaled = b.binary(BinOp::Mul, x1, wk);
                let scaled = b.binary(BinOp::AShr, scaled, Value::i32(11));
                let s = b.binary(BinOp::Add, x0, scaled);
                let d = b.binary(BinOp::Sub, x0, scaled);
                b.store(p0, s);
                b.store(p1, d);
            });
        });
    }
    let acc = var(&mut b, Value::i32(0));
    checksum_array(&mut b, acc, block, n * n);
    let r = get(&mut b, acc);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

/// `qsort`: iterative quicksort with an explicit stack (CHstone's qsort
/// is the classic recursive one; the iterative form exercises the same
/// partition loop without unbounded recursion).
pub fn qsort() -> Module {
    let mut m = Module::new("qsort");
    let n = 48;
    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    let arr = b.alloca(Type::I32, n as u32);
    b.counted_loop(Value::i32(n), |b, i| {
        let t = b.binary(BinOp::Mul, i, Value::i32(1103515245i64 as i32));
        let t = b.binary(BinOp::Add, t, Value::i32(12345));
        let v = b.binary(BinOp::URem, t, Value::i32(1000));
        let p = b.gep(arr, i);
        b.store(p, v);
    });

    // Explicit stack of (lo, hi) ranges.
    let stack = b.alloca(Type::I32, 64);
    let sp = var(&mut b, Value::i32(2));
    // push (0, n-1)
    let s0 = b.gep(stack, Value::i32(0));
    b.store(s0, Value::i32(0));
    let s1 = b.gep(stack, Value::i32(1));
    b.store(s1, Value::i32(n - 1));

    // while (sp > 0)
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let spv = get(&mut b, sp);
    let more = b.icmp(CmpPred::Sgt, spv, Value::i32(0));
    b.cond_br(more, body, exit);

    b.switch_to(body);
    {
        let b = &mut b;
        // pop hi, lo
        let spv = get(b, sp);
        let hi_i = b.binary(BinOp::Sub, spv, Value::i32(1));
        let lo_i = b.binary(BinOp::Sub, spv, Value::i32(2));
        let hp = b.gep(stack, hi_i);
        let hi = b.load(Type::I32, hp);
        let lp = b.gep(stack, lo_i);
        let lo = b.load(Type::I32, lp);
        set(b, sp, lo_i);

        let valid = b.new_block();
        let next_iter = b.new_block();
        let c = b.icmp(CmpPred::Slt, lo, hi);
        b.cond_br(c, valid, next_iter);

        b.switch_to(valid);
        // Lomuto partition with pivot = arr[hi].
        let pp = b.gep(arr, hi);
        let pivot = b.load(Type::I32, pp);
        let store_i = var(b, lo);
        let span = b.binary(BinOp::Sub, hi, lo);
        b.counted_loop(span, |b, off| {
            let j = b.binary(BinOp::Add, lo, off);
            let pj = b.gep(arr, j);
            let vj = b.load(Type::I32, pj);
            let lt = b.icmp(CmpPred::Slt, vj, pivot);
            let swap_bb = b.new_block();
            let cont_bb = b.new_block();
            b.cond_br(lt, swap_bb, cont_bb);
            b.switch_to(swap_bb);
            let si = get(b, store_i);
            let psi = b.gep(arr, si);
            let vsi = b.load(Type::I32, psi);
            b.store(psi, vj);
            b.store(pj, vsi);
            let si2 = b.binary(BinOp::Add, si, Value::i32(1));
            set(b, store_i, si2);
            b.br(cont_bb);
            b.switch_to(cont_bb);
        });
        // move pivot into place
        let si = get(b, store_i);
        let psi = b.gep(arr, si);
        let vsi = b.load(Type::I32, psi);
        b.store(psi, pivot);
        b.store(pp, vsi);
        // push (lo, si-1) and (si+1, hi)
        let spv = get(b, sp);
        let a0 = b.gep(stack, spv);
        b.store(a0, lo);
        let sp1 = b.binary(BinOp::Add, spv, Value::i32(1));
        let a1 = b.gep(stack, sp1);
        let sim1 = b.binary(BinOp::Sub, si, Value::i32(1));
        b.store(a1, sim1);
        let sp2 = b.binary(BinOp::Add, spv, Value::i32(2));
        let a2 = b.gep(stack, sp2);
        let sip1 = b.binary(BinOp::Add, si, Value::i32(1));
        b.store(a2, sip1);
        let sp3 = b.binary(BinOp::Add, spv, Value::i32(3));
        let a3 = b.gep(stack, sp3);
        b.store(a3, hi);
        let sp4 = b.binary(BinOp::Add, spv, Value::i32(4));
        set(b, sp, sp4);
        b.br(next_iter);

        b.switch_to(next_iter);
        b.br(header);
    }

    b.switch_to(exit);
    // Checksum must depend on order: acc = acc*31 + arr[i].
    let acc = var(&mut b, Value::i32(0));
    b.counted_loop(Value::i32(n), |b, i| {
        let p = b.gep(arr, i);
        let v = b.load(Type::I32, p);
        let c = get(b, acc);
        let t = b.binary(BinOp::Mul, c, Value::i32(31));
        let s = b.binary(BinOp::Add, t, v);
        set(b, acc, s);
    });
    let r = get(&mut b, acc);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

/// `sha`: SHA-1-style compression rounds — rotations, round functions,
/// message schedule.
pub fn sha() -> Module {
    let mut m = Module::new("sha");

    // rotl(x, n) helper.
    let rotl = {
        let mut b = FunctionBuilder::new("rotl", vec![Type::I32, Type::I32], Type::I32);
        let x = b.arg(0);
        let s = b.arg(1);
        let l = b.binary(BinOp::Shl, x, s);
        let inv = b.binary(BinOp::Sub, Value::i32(32), s);
        let r = b.binary(BinOp::LShr, x, inv);
        let o = b.binary(BinOp::Or, l, r);
        b.ret(Some(o));
        m.add_function(b.finish())
    };

    let mut b = FunctionBuilder::new("main", vec![], Type::I32);
    // Message schedule W[0..80].
    let w = b.alloca(Type::I32, 80);
    b.counted_loop(Value::i32(16), |b, i| {
        let v = b.binary(BinOp::Mul, i, Value::i32(0x0badf00du32 as i32));
        let p = b.gep(w, i);
        b.store(p, v);
    });
    b.counted_loop(Value::i32(64), |b, t| {
        let i = b.binary(BinOp::Add, t, Value::i32(16));
        let i3 = b.binary(BinOp::Sub, i, Value::i32(3));
        let i8 = b.binary(BinOp::Sub, i, Value::i32(8));
        let i14 = b.binary(BinOp::Sub, i, Value::i32(14));
        let i16 = b.binary(BinOp::Sub, i, Value::i32(16));
        let p3 = b.gep(w, i3);
        let l3 = b.load(Type::I32, p3);
        let l8 = {
            let p = b.gep(w, i8);
            b.load(Type::I32, p)
        };
        let l14 = {
            let p = b.gep(w, i14);
            b.load(Type::I32, p)
        };
        let l16 = {
            let p = b.gep(w, i16);
            b.load(Type::I32, p)
        };
        let x1 = b.binary(BinOp::Xor, l3, l8);
        let x2 = b.binary(BinOp::Xor, x1, l14);
        let x3 = b.binary(BinOp::Xor, x2, l16);
        let rot = b.call(rotl, Type::I32, vec![x3, Value::i32(1)]);
        let p = b.gep(w, i);
        b.store(p, rot);
    });

    // Compression.
    let a = var(&mut b, Value::i32(0x67452301u32 as i32));
    let b_ = var(&mut b, Value::i32(0xEFCDAB89u32 as i32));
    let c_ = var(&mut b, Value::i32(0x98BADCFEu32 as i32));
    let d = var(&mut b, Value::i32(0x10325476u32 as i32));
    let e = var(&mut b, Value::i32(0xC3D2E1F0u32 as i32));
    b.counted_loop(Value::i32(80), |b, t| {
        let va = get(b, a);
        let vb = get(b, b_);
        let vc = get(b, c_);
        let vd = get(b, d);
        let ve = get(b, e);
        // Round function by quarter: (b&c)|(~b&d), b^c^d, majority, b^c^d.
        let quarter = b.binary(BinOp::SDiv, t, Value::i32(20));
        let f_ch = {
            let bc = b.binary(BinOp::And, vb, vc);
            let nb = b.binary(BinOp::Xor, vb, Value::i32(-1));
            let nbd = b.binary(BinOp::And, nb, vd);
            b.binary(BinOp::Or, bc, nbd)
        };
        let f_par = {
            let x = b.binary(BinOp::Xor, vb, vc);
            b.binary(BinOp::Xor, x, vd)
        };
        let f_maj = {
            let bc = b.binary(BinOp::And, vb, vc);
            let bd = b.binary(BinOp::And, vb, vd);
            let cd = b.binary(BinOp::And, vc, vd);
            let o1 = b.binary(BinOp::Or, bc, bd);
            b.binary(BinOp::Or, o1, cd)
        };
        let q0 = b.icmp(CmpPred::Eq, quarter, Value::i32(0));
        let q2 = b.icmp(CmpPred::Eq, quarter, Value::i32(2));
        let f12 = b.select(q2, f_maj, f_par);
        let f = b.select(q0, f_ch, f12);
        let k0 = Value::i32(0x5A827999u32 as i32);
        let k1 = Value::i32(0x6ED9EBA1u32 as i32);
        let k2 = Value::i32(0x8F1BBCDCu32 as i32);
        let k3 = Value::i32(0xCA62C1D6u32 as i32);
        let q1 = b.icmp(CmpPred::Eq, quarter, Value::i32(1));
        let k23 = b.select(q2, k2, k3);
        let k123 = b.select(q1, k1, k23);
        let k = b.select(q0, k0, k123);
        let rot5 = b.call(rotl, Type::I32, vec![va, Value::i32(5)]);
        let t1 = b.binary(BinOp::Add, rot5, f);
        let t2 = b.binary(BinOp::Add, t1, ve);
        let wp = b.gep(w, t);
        let wt = b.load(Type::I32, wp);
        let t3 = b.binary(BinOp::Add, t2, wt);
        let temp = b.binary(BinOp::Add, t3, k);
        set(b, e, vd);
        set(b, d, vc);
        let rot30 = b.call(rotl, Type::I32, vec![vb, Value::i32(30)]);
        set(b, c_, rot30);
        set(b, b_, va);
        set(b, a, temp);
    });

    let va = get(&mut b, a);
    let vb = get(&mut b, b_);
    let vc = get(&mut b, c_);
    let vd = get(&mut b, d);
    let ve = get(&mut b, e);
    let s1 = b.binary(BinOp::Xor, va, vb);
    let s2 = b.binary(BinOp::Xor, s1, vc);
    let s3 = b.binary(BinOp::Xor, s2, vd);
    let s4 = b.binary(BinOp::Xor, s3, ve);
    b.ret(Some(s4));
    m.add_function(b.finish());
    m
}
