//! `-sccp`: sparse conditional constant propagation.
//!
//! Lattice-based (⊤ unknown / constant / ⊥ varying) propagation that tracks
//! block executability: instructions in blocks proven unreachable are never
//! evaluated, and φ-nodes only merge over executable edges — so constants
//! survive through branches that constant conditions rule out. Afterwards,
//! proven-constant results are substituted and branches on proven constants
//! are folded.

use crate::util;
use autophase_ir::fold;
use autophase_ir::{BlockId, FuncId, InstId, Module, Opcode, Type, Value};
use std::collections::{HashMap, HashSet, VecDeque};

/// Lattice value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lat {
    /// Not yet known (optimistic top).
    Unknown,
    /// Proven constant.
    Const(Type, i64),
    /// Proven varying (bottom).
    Varying,
}

impl Lat {
    fn meet(self, other: Lat) -> Lat {
        match (self, other) {
            (Lat::Unknown, x) | (x, Lat::Unknown) => x,
            (Lat::Const(t1, a), Lat::Const(_, b)) if a == b => Lat::Const(t1, a),
            _ => Lat::Varying,
        }
    }
}

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, sccp_function)
}

pub(crate) fn sccp_function(m: &mut Module, fid: FuncId) -> bool {
    let solution = solve(m, fid, &HashMap::new());
    apply_solution(m, fid, &solution)
}

pub(crate) struct Solution {
    pub consts: HashMap<InstId, (Type, i64)>,
    pub executable: HashSet<BlockId>,
}

impl Solution {
    /// Blocks of `f` the solver proved unreachable (folded away when the
    /// solution is applied).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn unreachable_blocks(&self, f: &autophase_ir::Function) -> usize {
        f.block_ids()
            .filter(|bb| !self.executable.contains(bb))
            .count()
    }
}

/// Solve the SCCP dataflow for one function. `arg_consts` optionally pins
/// argument lattice values (used by `-ipsccp`).
pub(crate) fn solve(m: &Module, fid: FuncId, arg_consts: &HashMap<u32, i64>) -> Solution {
    let f = m.func(fid);
    let mut lat: HashMap<InstId, Lat> = HashMap::new();
    let mut exec_blocks: HashSet<BlockId> = HashSet::new();
    let mut exec_edges: HashSet<(BlockId, BlockId)> = HashSet::new();
    let mut block_q: VecDeque<BlockId> = VecDeque::new();
    let mut inst_q: VecDeque<InstId> = VecDeque::new();

    let value_lat = |lat: &HashMap<InstId, Lat>, v: Value| -> Lat {
        match v {
            Value::ConstInt(t, c) => Lat::Const(t, c),
            Value::Undef(t) => Lat::Const(t, 0),
            Value::Global(_) => Lat::Varying,
            Value::Arg(i) => match arg_consts.get(&i) {
                Some(&c) => Lat::Const(f.params.get(i as usize).copied().unwrap_or(Type::I64), c),
                None => Lat::Varying,
            },
            Value::Inst(id) => lat.get(&id).copied().unwrap_or(Lat::Unknown),
        }
    };

    block_q.push_back(f.entry);
    exec_blocks.insert(f.entry);

    let eval_inst = |lat: &HashMap<InstId, Lat>,
                     exec_edges: &HashSet<(BlockId, BlockId)>,
                     bb: BlockId,
                     iid: InstId|
     -> Lat {
        let inst = f.inst(iid);
        match &inst.op {
            Opcode::Binary(op, a, b) => match (value_lat(lat, *a), value_lat(lat, *b)) {
                (Lat::Const(_, x), Lat::Const(_, y)) => {
                    Lat::Const(inst.ty, fold::eval_binop(*op, inst.ty, x, y))
                }
                (Lat::Varying, _) | (_, Lat::Varying) => Lat::Varying,
                _ => Lat::Unknown,
            },
            Opcode::ICmp(p, a, b) => {
                let ty = util::type_of(f, *a);
                match (value_lat(lat, *a), value_lat(lat, *b)) {
                    (Lat::Const(_, x), Lat::Const(_, y)) => {
                        Lat::Const(Type::I1, fold::eval_icmp(*p, ty, x, y))
                    }
                    (Lat::Varying, _) | (_, Lat::Varying) => Lat::Varying,
                    _ => Lat::Unknown,
                }
            }
            Opcode::Cast(op, v) => {
                let from = util::type_of(f, *v);
                match value_lat(lat, *v) {
                    Lat::Const(_, x) if inst.ty.is_int() && from.is_int() => {
                        Lat::Const(inst.ty, fold::eval_cast(*op, from, inst.ty, x))
                    }
                    Lat::Const(..) => Lat::Varying,
                    x => x,
                }
            }
            Opcode::Select { cond, tval, fval } => match value_lat(lat, *cond) {
                Lat::Const(_, c) => value_lat(lat, if c != 0 { *tval } else { *fval }),
                Lat::Varying => value_lat(lat, *tval).meet(value_lat(lat, *fval)),
                Lat::Unknown => Lat::Unknown,
            },
            Opcode::Phi { incoming } => {
                let mut acc = Lat::Unknown;
                for (pred, v) in incoming {
                    if exec_edges.contains(&(*pred, bb)) {
                        acc = acc.meet(value_lat(lat, *v));
                    }
                }
                acc
            }
            _ => Lat::Varying,
        }
    };

    // Fixpoint.
    loop {
        let mut progressed = false;
        while let Some(bb) = block_q.pop_front() {
            progressed = true;
            for &iid in &f.block(bb).insts {
                inst_q.push_back(iid);
            }
        }
        while let Some(iid) = inst_q.pop_front() {
            let Some(bb) = placement(f, iid) else {
                continue;
            };
            if !exec_blocks.contains(&bb) {
                continue;
            }
            progressed = true;
            let inst = f.inst(iid);
            if inst.is_terminator() {
                // Determine executable out-edges.
                let succs: Vec<BlockId> = match &inst.op {
                    Opcode::Br { target } => vec![*target],
                    Opcode::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => match value_lat(&lat, *cond) {
                        Lat::Const(_, c) => vec![if c != 0 { *then_bb } else { *else_bb }],
                        Lat::Varying => vec![*then_bb, *else_bb],
                        Lat::Unknown => vec![],
                    },
                    Opcode::Switch {
                        value,
                        default,
                        cases,
                    } => match value_lat(&lat, *value) {
                        Lat::Const(_, c) => vec![cases
                            .iter()
                            .find(|(k, _)| *k == c)
                            .map(|(_, b)| *b)
                            .unwrap_or(*default)],
                        Lat::Varying => {
                            let mut v: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                            v.push(*default);
                            v
                        }
                        Lat::Unknown => vec![],
                    },
                    _ => vec![],
                };
                for s in succs {
                    let new_edge = exec_edges.insert((bb, s));
                    if exec_blocks.insert(s) {
                        block_q.push_back(s);
                    } else if new_edge {
                        // φs in s must re-merge over the new edge.
                        for &pid in &f.block(s).insts {
                            if f.inst(pid).is_phi() {
                                inst_q.push_back(pid);
                            }
                        }
                    }
                }
                continue;
            }
            if inst.ty.is_void() {
                continue;
            }
            let new = eval_inst(&lat, &exec_edges, bb, iid);
            let old = lat.get(&iid).copied().unwrap_or(Lat::Unknown);
            let merged = old.meet(new);
            // Monotonic update only.
            let went_down = merged != old;
            if went_down {
                lat.insert(iid, merged);
                // Re-evaluate users (and terminators that branch on it).
                for (user, _) in f.users(Value::Inst(iid)) {
                    inst_q.push_back(user);
                }
            }
        }
        if !progressed && block_q.is_empty() && inst_q.is_empty() {
            break;
        }
        if block_q.is_empty() && inst_q.is_empty() {
            break;
        }
    }

    let consts = lat
        .into_iter()
        .filter_map(|(id, l)| match l {
            Lat::Const(t, c) => Some((id, (t, c))),
            _ => None,
        })
        .collect();
    Solution {
        consts,
        executable: exec_blocks,
    }
}

fn placement(f: &autophase_ir::Function, iid: InstId) -> Option<BlockId> {
    if !f.inst_exists(iid) {
        return None;
    }
    f.block_of(iid)
}

pub(crate) fn apply_solution(m: &mut Module, fid: FuncId, sol: &Solution) -> bool {
    let mut changed = false;
    let f = m.func_mut(fid);
    // Substitute proven constants.
    for (&iid, &(ty, c)) in &sol.consts {
        if !f.inst_exists(iid) {
            continue;
        }
        if f.replace_all_uses(Value::Inst(iid), Value::ConstInt(ty, c)) > 0 {
            changed = true;
        }
    }
    // Fold branches whose condition is now a constant, so unreachable
    // regions actually disappear (simplifycfg finishes the cleanup).
    changed |= crate::simplifycfg::run_on_function(m, fid);
    changed |= util::delete_dead(m, fid) > 0;
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, CmpPred};

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn propagates_through_dead_branch() {
        // x = 1; if (false) x = 2; return x + 1  →  return 2
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let t = b.new_block();
        let j = b.new_block();
        b.cond_br(Value::FALSE, t, j);
        b.switch_to(t);
        b.br(j);
        b.switch_to(j);
        let x = b.phi(
            Type::I32,
            vec![(b.entry_block(), Value::i32(1)), (t, Value::i32(2))],
        );
        let r = b.binary(BinOp::Add, x, Value::i32(1));
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(2));
        // The φ merged only over the executable edge: result folded to 2.
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 1);
    }

    #[test]
    fn plain_constant_chain_folds() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let x = b.binary(BinOp::Add, Value::i32(4), Value::i32(5));
        let c = b.icmp(CmpPred::Sgt, x, Value::i32(3));
        let s = b.select(c, x, Value::i32(0));
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(9));
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 1);
    }

    #[test]
    fn varying_inputs_untouched() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let x = b.binary(BinOp::Add, b.arg(0), Value::i32(5));
        b.ret(Some(x));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn phi_of_equal_constants_over_live_edges() {
        // Both live edges feed 7 → φ is 7 even though branch is varying.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I32, vec![(t, Value::i32(7)), (e, Value::i32(7))]);
        let r = b.binary(BinOp::Mul, p, Value::i32(2));
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(14));
    }

    #[test]
    fn constant_loop_bound_dead_loop() {
        // for i in 0..0 — loop never executes; body constants fold away.
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(5));
        b.counted_loop(Value::i32(0), |b, _| {
            b.store(acc, Value::i32(99));
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        let before = run_main(&m, 1000).unwrap().observable();
        run(&mut m);
        assert_verified(&m);
        assert_eq!(run_main(&m, 1000).unwrap().observable(), before);
    }

    #[test]
    fn solver_reports_unreachable_blocks() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(Value::FALSE, t, e);
        b.switch_to(t);
        b.ret(Some(Value::i32(1)));
        b.switch_to(e);
        b.ret(Some(Value::i32(2)));
        let mut m = module_with(b.finish());
        let fid = m.main().unwrap();
        let sol = solve(&m, fid, &std::collections::HashMap::new());
        assert_eq!(sol.unreachable_blocks(m.func(fid)), 1);
        apply_solution(&mut m, fid, &sol);
        assert_verified(&m);
    }

    #[test]
    fn switch_on_constant_prunes() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let c1 = b.new_block();
        let c2 = b.new_block();
        let d = b.new_block();
        b.switch(Value::i32(1), d, vec![(1, c1), (2, c2)]);
        b.switch_to(c1);
        b.ret(Some(Value::i32(100)));
        b.switch_to(c2);
        b.ret(Some(Value::i32(200)));
        b.switch_to(d);
        b.ret(Some(Value::i32(300)));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(100));
        assert_eq!(m.func(m.main().unwrap()).num_blocks(), 1);
    }
}
