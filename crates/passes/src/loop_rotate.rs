//! `-loop-rotate`: turn while-loops into do-while loops.
//!
//! For a loop whose header tests the exit condition at the top (the shape a
//! C `for`/`while` compiles to), the header's computations are duplicated
//! into the preheader (guarding loop entry) and into the latch (testing
//! continuation at the bottom). The rotated loop executes one block per
//! iteration instead of two — in the HLS backend that directly removes FSM
//! states from every iteration, which is why the paper's random forests
//! single this pass out (§4, Figure 6: "point (23,23) has the highest
//! importance").

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::{find_loops, Loop};
use autophase_ir::{BlockId, FuncId, InstId, Module, Opcode, Value};
use std::collections::HashMap;

/// Upper bound on header instructions cloned into preheader and latch.
pub const ROTATE_HEADER_LIMIT: usize = 16;

/// Run the pass. Returns true if any loop was rotated.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let mut changed = false;
        while rotate_once(m, fid) {
            changed = true;
        }
        if changed {
            // The old header's test is dead and the header now falls
            // through to the body; cleanup merges them so the rotated loop
            // really executes one block per iteration (LLVM's rotate runs
            // the same simplification).
            util::delete_dead(m, fid);
            crate::simplifycfg::run_on_function(m, fid);
        }
        changed
    })
}

/// True if the loop is already bottom-tested (latch exits the loop).
pub fn is_rotated(l: &Loop, f: &autophase_ir::Function) -> bool {
    l.single_latch()
        .map(|latch| f.successors(latch).iter().any(|s| !l.contains(*s)))
        .unwrap_or(false)
}

/// Rotate a single loop anywhere in the module (debug/ablation hook).
pub fn rotate_once_public(m: &mut Module) -> bool {
    let fids: Vec<FuncId> = m.func_ids().collect();
    for fid in fids {
        if rotate_once(m, fid) {
            return true;
        }
    }
    false
}

fn rotate_once(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loops = find_loops(f, &cfg, &dt);
    let index = util::UserIndex::build(f);

    for l in &loops {
        let Some(preheader) = l.preheader(&cfg) else {
            continue;
        };
        let Some(latch) = l.single_latch() else {
            continue;
        };
        if is_rotated(l, f) {
            continue;
        }
        // Header must end in a condbr with exactly one in-loop and one
        // out-of-loop target.
        let Some(term) = f.terminator(l.header) else {
            continue;
        };
        let Opcode::CondBr {
            cond: _,
            then_bb,
            else_bb,
        } = f.inst(term).op
        else {
            continue;
        };
        let (body_entry, exit) = match (l.contains(then_bb), l.contains(else_bb)) {
            (true, false) => (then_bb, else_bb),
            (false, true) => (else_bb, then_bb),
            _ => continue,
        };
        if body_entry == l.header || l.header == latch {
            continue; // self-loop or irregular shape
        }
        // The latch must branch unconditionally to the header.
        let Some(latch_term) = f.terminator(latch) else {
            continue;
        };
        if !matches!(f.inst(latch_term).op, Opcode::Br { .. }) {
            continue;
        }
        // The exit must be dedicated (preds only from the loop) so its φs
        // only see loop edges — guaranteed after -loop-simplify.
        if cfg.unique_preds(exit).iter().any(|p| !l.contains(*p)) {
            continue;
        }
        // Header non-φ instructions must be clonable: pure or loads, few.
        let header_insts: Vec<InstId> = f.block(l.header).insts.clone();
        let non_phi: Vec<InstId> = header_insts
            .iter()
            .copied()
            .filter(|&i| !f.inst(i).is_phi() && i != term)
            .collect();
        if non_phi.len() > ROTATE_HEADER_LIMIT {
            continue;
        }
        let clonable = non_phi.iter().all(|&i| {
            let inst = f.inst(i);
            util::is_pure(m, inst) && !matches!(inst.op, Opcode::Alloca { .. })
        });
        if !clonable {
            continue;
        }
        // Values defined in the header (φs or computations) that are used
        // outside the loop would need LCSSA-style repair; require that all
        // external uses sit in the (dedicated) exit block as φs or plain
        // uses we can rewire. For simplicity require no external non-exit
        // uses.
        let all_header_defs: Vec<InstId> = header_insts.clone();
        let external_ok = all_header_defs.iter().all(|&d| {
            index
                .users(d)
                .iter()
                .all(|&(_, ubb)| l.contains(ubb) || ubb == exit)
        });
        if !external_ok {
            continue;
        }

        do_rotate(m.func_mut(fid), l, preheader, latch, body_entry, exit, term);
        return true;
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn do_rotate(
    f: &mut autophase_ir::Function,
    l: &Loop,
    preheader: BlockId,
    latch: BlockId,
    body_entry: BlockId,
    exit: BlockId,
    header_term: InstId,
) {
    let header = l.header;
    let header_insts: Vec<InstId> = f.block(header).insts.clone();
    let phis: Vec<InstId> = header_insts
        .iter()
        .copied()
        .filter(|&i| f.inst(i).is_phi())
        .collect();
    let computed: Vec<InstId> = header_insts
        .iter()
        .copied()
        .filter(|&i| !f.inst(i).is_phi() && i != header_term)
        .collect();

    // Initial and next values of each φ.
    let mut init_map: HashMap<Value, Value> = HashMap::new();
    let mut next_map: HashMap<Value, Value> = HashMap::new();
    for &phi in &phis {
        let Opcode::Phi { incoming } = &f.inst(phi).op else {
            unreachable!()
        };
        for (p, v) in incoming {
            if *p == preheader {
                init_map.insert(Value::Inst(phi), *v);
            } else if *p == latch {
                next_map.insert(Value::Inst(phi), *v);
            }
        }
    }

    // Clone the header computations into the preheader (with init values)
    // and into the latch (with next values). The clones are inserted before
    // each block's terminator.
    let clone_into = |f: &mut autophase_ir::Function,
                      target: BlockId,
                      map: &HashMap<Value, Value>|
     -> HashMap<Value, Value> {
        let mut vmap = map.clone();
        let before_term = f.block(target).insts.len().saturating_sub(1);
        for (i, &src) in computed.iter().enumerate() {
            let mut inst = f.inst(src).clone();
            util::remap_operands(&mut inst, &vmap);
            let id = f.insert_inst(target, before_term + i, inst);
            vmap.insert(Value::Inst(src), Value::Inst(id));
        }
        vmap
    };
    let pre_map = clone_into(f, preheader, &init_map);
    let latch_map = clone_into(f, latch, &next_map);

    let cond = match &f.inst(header_term).op {
        Opcode::CondBr { cond, .. } => *cond,
        _ => unreachable!("checked condbr"),
    };
    let pre_cond = *pre_map.get(&cond).unwrap_or(&cond);
    let latch_cond = *latch_map.get(&cond).unwrap_or(&cond);

    // Preheader: guard — if the condition holds enter the loop (header),
    // else go to exit.
    let pre_term = f.terminator(preheader).expect("preheader has br");
    f.inst_mut(pre_term).op = Opcode::CondBr {
        cond: pre_cond,
        then_bb: header,
        else_bb: exit,
    };

    // Latch: bottom test — back to header or out to exit.
    let latch_term = f.terminator(latch).expect("latch has br");
    f.inst_mut(latch_term).op = Opcode::CondBr {
        cond: latch_cond,
        then_bb: header,
        else_bb: exit,
    };

    // Header: now falls through to the body unconditionally; its cloned
    // computations stay (the φs feed body uses), its terminator simplifies.
    f.inst_mut(header_term).op = Opcode::Br { target: body_entry };

    // The value `v` an exit φ received from the header edge becomes, after
    // rotation:
    //  * on the guard-fail (preheader) edge: v at the would-be first header
    //    entry — a φ's raw init value, or the preheader clone of a
    //    computation;
    //  * on the latch edge: v at the would-be next header entry — a φ's raw
    //    next value, which is already valid at the latch (remapping it again
    //    through the latch clone map would skip an iteration in φ-of-φ
    //    shift-register chains like sha's `e=d; d=c; …`), or the latch
    //    clone of a computation.
    let is_header_phi = |v: Value| matches!(v, Value::Inst(id) if phis.contains(&id));
    let edge_values = |v: Value| -> (Value, Value) {
        if is_header_phi(v) {
            (
                *init_map.get(&v).unwrap_or(&v),
                *next_map.get(&v).unwrap_or(&v),
            )
        } else {
            (
                *pre_map.get(&v).unwrap_or(&v),
                *latch_map.get(&v).unwrap_or(&v),
            )
        }
    };

    // Exit φs: entries from header now come from preheader and latch.
    let exit_phis: Vec<InstId> = f
        .block(exit)
        .insts
        .iter()
        .copied()
        .filter(|&i| f.inst(i).is_phi())
        .collect();
    for phi in exit_phis {
        let header_entry = match &f.inst(phi).op {
            Opcode::Phi { incoming } => incoming
                .iter()
                .position(|(p, _)| *p == header)
                .map(|pos| (pos, incoming[pos].1)),
            _ => None,
        };
        if let Some((pos, v)) = header_entry {
            let (pre_v, latch_v) = edge_values(v);
            if let Opcode::Phi { incoming } = &mut f.inst_mut(phi).op {
                incoming.remove(pos);
                incoming.push((preheader, pre_v));
                incoming.push((latch, latch_v));
            }
        }
    }
    // Non-φ uses in the exit of header-defined values are now wrong (the
    // header may not dominate the exit anymore — it does not, since both
    // preheader and latch jump there). Wrap them in φs.
    for &d in header_insts.iter() {
        if !f.inst_exists(d) || f.inst(d).ty.is_void() {
            continue;
        }
        let dv = Value::Inst(d);
        let ext_users: Vec<(InstId, BlockId)> = f
            .users(dv)
            .into_iter()
            .filter(|&(u, ubb)| ubb == exit && !f.inst(u).is_phi())
            .collect();
        if ext_users.is_empty() {
            continue;
        }
        let (pre_v, latch_v) = edge_values(dv);
        let ty = f.inst(d).ty;
        let phi = f.insert_inst(
            exit,
            0,
            autophase_ir::Inst::new(
                ty,
                Opcode::Phi {
                    incoming: vec![(preheader, pre_v), (latch, latch_v)],
                },
            ),
        );
        for (u, _) in ext_users {
            f.inst_mut(u).replace_uses(dv, Value::Inst(phi));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_function;
    use autophase_ir::loops::analyze_loops;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, Type};

    fn sum_loop() -> Module {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, i| {
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, i);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        m
    }

    #[test]
    fn while_loop_becomes_do_while() {
        let mut m = sum_loop();
        let fid = m.main().unwrap();
        let before: Vec<_> = [0, 1, 7]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100_000).unwrap().return_value)
            .collect();
        assert!(run(&mut m));
        assert_verified(&m);
        let after: Vec<_> = [0, 1, 7]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100_000).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
        // The loop is now bottom-tested.
        let f = m.func(fid);
        let (_, _, loops) = analyze_loops(f);
        assert_eq!(loops.len(), 1);
        assert!(is_rotated(&loops[0], f));
    }

    #[test]
    fn rotation_reduces_block_executions() {
        let mut m = sum_loop();
        let fid = m.main().unwrap();
        let before = run_function(&m, fid, &[100], 1_000_000).unwrap();
        let blocks_before: u64 = before.block_counts.values().sum();
        assert!(run(&mut m));
        let after = run_function(&m, fid, &[100], 1_000_000).unwrap();
        let blocks_after: u64 = after.block_counts.values().sum();
        assert!(
            blocks_after < blocks_before,
            "rotated loop should enter fewer blocks: {blocks_after} vs {blocks_before}"
        );
    }

    #[test]
    fn zero_trip_loop_still_correct() {
        let mut m = sum_loop();
        let fid = m.main().unwrap();
        assert!(run(&mut m));
        assert_eq!(
            run_function(&m, fid, &[0], 1000).unwrap().return_value,
            Some(0)
        );
        assert_eq!(
            run_function(&m, fid, &[-5], 1000).unwrap().return_value,
            Some(0)
        );
    }

    #[test]
    fn induction_value_used_after_loop() {
        // return i after loop: exit φ repair path.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let mut iv = Value::i32(0);
        b.counted_loop(b.arg(0), |_b, i| {
            iv = i;
        });
        let r = b.binary(BinOp::Add, iv, Value::i32(1000));
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before: Vec<_> = [0, 3, 9]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100_000).unwrap().return_value)
            .collect();
        let rotated = run(&mut m);
        assert_verified(&m);
        let after: Vec<_> = [0, 3, 9]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100_000).unwrap().return_value)
            .collect();
        assert_eq!(before, after, "rotated={rotated}");
    }

    #[test]
    fn already_rotated_loop_untouched() {
        let mut m = sum_loop();
        assert!(run(&mut m));
        // Second application is a no-op.
        assert!(!run(&mut m));
    }

    #[test]
    fn nested_loops_rotate() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, i| {
            b.counted_loop(b.arg(0), |b, j| {
                let c = b.load(Type::I32, acc);
                let p = b.binary(BinOp::Mul, i, j);
                let n = b.binary(BinOp::Add, c, p);
                b.store(acc, n);
            });
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before = run_function(&m, fid, &[6], 1_000_000).unwrap().return_value;
        assert!(run(&mut m));
        assert_verified(&m);
        let after = run_function(&m, fid, &[6], 1_000_000).unwrap().return_value;
        assert_eq!(before, after);
        let f = m.func(fid);
        let (_, _, loops) = analyze_loops(f);
        assert_eq!(loops.len(), 2);
        for l in &loops {
            assert!(is_rotated(l, f));
        }
    }
}
