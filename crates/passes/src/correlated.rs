//! `-correlated-propagation`: branch-correlated value propagation.
//!
//! After `br (icmp eq x, C), then, else`, every use of `x` in blocks
//! dominated by the *then* edge can be replaced by `C` (and dually,
//! `icmp ne` refines the else side). Select instructions whose condition
//! equality pins an operand are simplified the same way.

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::{BlockId, CmpPred, FuncId, Module, Opcode, Value};

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let changed = propagate_function(m, fid);
        if changed {
            util::delete_dead(m, fid);
        }
        changed
    })
}

fn propagate_function(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);

    // Collect (region_head, x, C) facts from equality branches.
    let mut facts: Vec<(BlockId, Value, Value)> = Vec::new();
    for &bb in cfg.rpo() {
        let Some(term) = f.terminator(bb) else {
            continue;
        };
        let Opcode::CondBr {
            cond: Value::Inst(cid),
            then_bb,
            else_bb,
        } = f.inst(term).op
        else {
            continue;
        };
        if !f.inst_exists(cid) {
            continue;
        }
        let Opcode::ICmp(pred, a, b) = f.inst(cid).op else {
            continue;
        };
        let (eq_target, x, c) = match pred {
            CmpPred::Eq if b.is_const() => (then_bb, a, b),
            CmpPred::Ne if b.is_const() => (else_bb, a, b),
            _ => continue,
        };
        if x.is_const() {
            continue;
        }
        // The fact holds in eq_target only if that block is solely entered
        // through this edge: eq_target's unique pred is bb, and bb's other
        // arm differs.
        let other = if eq_target == then_bb {
            else_bb
        } else {
            then_bb
        };
        if other == eq_target {
            continue;
        }
        if cfg.unique_preds(eq_target) == vec![bb] {
            facts.push((eq_target, x, c));
        }
    }
    if facts.is_empty() {
        return false;
    }

    let mut changed = false;
    let fm = m.func_mut(fid);
    for (head, x, c) in facts {
        // Replace uses of x in all blocks dominated by head. φ incoming
        // values are attributed to the *predecessor* edge, so only rewrite
        // φ entries whose incoming block is dominated by head.
        for bb in fm.block_ids().collect::<Vec<_>>() {
            if !dt.dominates(head, bb) {
                continue;
            }
            let ids: Vec<_> = fm.block(bb).insts.clone();
            for iid in ids {
                let inst = fm.inst_mut(iid);
                match &mut inst.op {
                    Opcode::Phi { incoming } => {
                        for (pred, v) in incoming.iter_mut() {
                            if *v == x && dt.dominates(head, *pred) {
                                *v = c;
                                changed = true;
                            }
                        }
                    }
                    _ => {
                        let mut local = false;
                        inst.for_each_operand_mut(|v| {
                            if *v == x {
                                *v = c;
                                local = true;
                            }
                        });
                        changed |= local;
                    }
                }
            }
        }
        // φ entries in head's successors-from-outside... handled above.
        let _ = head;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_function;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, Type};

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn eq_branch_pins_value() {
        // if (x == 3) return x * 10; else return x;
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let c = b.icmp(CmpPred::Eq, b.arg(0), Value::i32(3));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let r = b.binary(BinOp::Mul, b.arg(0), Value::i32(10));
        b.ret(Some(r));
        b.switch_to(e);
        b.ret(Some(b.arg(0)));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        // In the then-block the mul now reads the constant 3.
        let f = m.func(m.main().unwrap());
        let has_const_mul = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .any(|i| {
                matches!(
                    f.inst(i).op,
                    Opcode::Binary(BinOp::Mul, Value::ConstInt(_, 3), _)
                        | Opcode::Binary(BinOp::Mul, _, Value::ConstInt(_, 3))
                )
            });
        assert!(has_const_mul);
        assert_eq!(
            run_function(&m, m.main().unwrap(), &[3], 100)
                .unwrap()
                .return_value,
            Some(30)
        );
        assert_eq!(
            run_function(&m, m.main().unwrap(), &[4], 100)
                .unwrap()
                .return_value,
            Some(4)
        );
    }

    #[test]
    fn ne_branch_pins_else_side() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let c = b.icmp(CmpPred::Ne, b.arg(0), Value::i32(7));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(Some(Value::i32(0)));
        b.switch_to(e);
        let r = b.binary(BinOp::Add, b.arg(0), Value::i32(1));
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_eq!(
            run_function(&m, m.main().unwrap(), &[7], 100)
                .unwrap()
                .return_value,
            Some(8)
        );
    }

    #[test]
    fn shared_target_not_rewritten() {
        // Both arms reach the same block: no fact holds there.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let j = b.new_block();
        let c = b.icmp(CmpPred::Eq, b.arg(0), Value::i32(3));
        b.cond_br(c, j, j);
        b.switch_to(j);
        let r = b.binary(BinOp::Mul, b.arg(0), Value::i32(10));
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
        assert_eq!(
            run_function(&m, m.main().unwrap(), &[4], 100)
                .unwrap()
                .return_value,
            Some(40)
        );
    }

    #[test]
    fn semantics_preserved_randomish() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(CmpPred::Eq, b.arg(0), Value::i32(5));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let a = b.binary(BinOp::Shl, b.arg(0), Value::i32(1));
        b.br(j);
        b.switch_to(e);
        let d = b.binary(BinOp::Add, b.arg(0), Value::i32(2));
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I32, vec![(t, a), (e, d)]);
        b.ret(Some(p));
        let mut m = module_with(b.finish());
        let f = m.main().unwrap();
        let before: Vec<_> = (0..10)
            .map(|x| run_function(&m, f, &[x], 100).unwrap().return_value)
            .collect();
        run(&mut m);
        assert_verified(&m);
        let after: Vec<_> = (0..10)
            .map(|x| run_function(&m, f, &[x], 100).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
    }
}
