//! `-loop-reduce` (loop strength reduction).
//!
//! A multiply of the induction variable by a loop-invariant constant
//! (`k = i * c`) is replaced by a new induction variable updated by
//! addition (`k' = φ(init*c, k' + step*c)`). Multipliers are expensive in
//! hardware; the HLS delay model charges them several times an adder, so
//! this directly shortens the critical path in loop bodies.

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::find_loops;
use autophase_ir::{BinOp, FuncId, Inst, InstId, Module, Opcode, Value};

/// Run the pass. Returns true if any multiply was reduced.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let mut changed = false;
        while reduce_once(m, fid) {
            changed = true;
        }
        if changed {
            util::delete_dead(m, fid);
        }
        changed
    })
}

fn reduce_once(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loops = find_loops(f, &cfg, &dt);
    for l in &loops {
        let Some(preheader) = l.entering_block(&cfg) else {
            continue;
        };
        let Some(latch) = l.single_latch() else {
            continue;
        };
        // Find induction φs in the header: i = φ(pre: init, latch: i + step).
        let header_phis: Vec<InstId> = f
            .block(l.header)
            .insts
            .iter()
            .copied()
            .filter(|&i| f.inst(i).is_phi())
            .collect();
        for &iv in &header_phis {
            let Opcode::Phi { incoming } = &f.inst(iv).op else {
                continue;
            };
            if incoming.len() != 2 {
                continue;
            }
            let init = incoming
                .iter()
                .find(|(p, _)| *p == preheader)
                .map(|(_, v)| *v);
            let next = incoming.iter().find(|(p, _)| *p == latch).map(|(_, v)| *v);
            let (Some(init), Some(Value::Inst(next_id))) = (init, next) else {
                continue;
            };
            let Opcode::Binary(BinOp::Add, base, Value::ConstInt(sty, step)) = f.inst(next_id).op
            else {
                continue;
            };
            if base != Value::Inst(iv) {
                continue;
            }
            // Find `k = iv * c` inside the loop with constant c (≠ 0, ±1 and
            // not a power of two — instcombine handles those better).
            for &bb in &l.blocks {
                for &k in &f.block(bb).insts {
                    let Opcode::Binary(BinOp::Mul, a, Value::ConstInt(cty, c)) = f.inst(k).op
                    else {
                        continue;
                    };
                    if a != Value::Inst(iv) || c == 0 || c == 1 || c == -1 {
                        continue;
                    }
                    if util::power_of_two(c).is_some() {
                        continue;
                    }
                    // Build k' = φ(pre: init*c, latch: k' + step*c).
                    let ty = f.inst(k).ty;
                    let fm = m.func_mut(fid);
                    // init*c computed in the preheader (constant-folded when
                    // init is constant).
                    let init_times_c: Value = match init {
                        Value::ConstInt(_, iv0) => Value::ConstInt(
                            ty,
                            autophase_ir::fold::eval_binop(BinOp::Mul, ty, iv0, c),
                        ),
                        other => {
                            let at = fm.block(preheader).insts.len().saturating_sub(1);
                            let id = fm.insert_inst(
                                preheader,
                                at,
                                Inst::new(
                                    ty,
                                    Opcode::Binary(BinOp::Mul, other, Value::ConstInt(cty, c)),
                                ),
                            );
                            Value::Inst(id)
                        }
                    };
                    let phi = fm.insert_inst(
                        l.header,
                        0,
                        Inst::new(ty, Opcode::Phi { incoming: vec![] }),
                    );
                    // k'_next inserted in the latch before its terminator.
                    let at = fm.block(latch).insts.len().saturating_sub(1);
                    let kn = fm.insert_inst(
                        latch,
                        at,
                        Inst::new(
                            ty,
                            Opcode::Binary(
                                BinOp::Add,
                                Value::Inst(phi),
                                Value::const_int(
                                    ty,
                                    autophase_ir::fold::eval_binop(BinOp::Mul, sty, step, c),
                                ),
                            ),
                        ),
                    );
                    if let Opcode::Phi { incoming } = &mut fm.inst_mut(phi).op {
                        incoming.push((preheader, init_times_c));
                        incoming.push((latch, Value::Inst(kn)));
                    }
                    // Replace k with the new IV. k = iv*c is exact at every
                    // point where k executes... but k reads the *current*
                    // φ, so substituting the φ k' (which also tracks the
                    // current iteration) is exact everywhere in the loop.
                    fm.replace_all_uses(Value::Inst(k), Value::Inst(phi));
                    if let Some(kbb) = fm.block_of(k) {
                        fm.remove_inst(kbb, k);
                    }
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_function;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::Type;

    fn count_muls(m: &Module, fid: FuncId) -> usize {
        let f = m.func(fid);
        f.block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter(|&i| matches!(f.inst(i).op, Opcode::Binary(BinOp::Mul, ..)))
            .count()
    }

    #[test]
    fn iv_multiply_becomes_additive_iv() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, i| {
            let k = b.binary(BinOp::Mul, i, Value::i32(12)); // strength-reducible
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, k);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before = run_function(&m, fid, &[7], 100_000).unwrap().return_value;
        assert_eq!(count_muls(&m, fid), 1);
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(count_muls(&m, fid), 0);
        let after = run_function(&m, fid, &[7], 100_000).unwrap().return_value;
        assert_eq!(before, after);
        assert_eq!(after, Some(252)); // 12 * (0+1+...+6)
    }

    #[test]
    fn power_of_two_left_for_instcombine() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, i| {
            let k = b.binary(BinOp::Mul, i, Value::i32(8));
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, k);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn invariant_multiply_untouched() {
        // x*12 where x is an argument, not an IV: licm's job, not lsr's.
        let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, _| {
            let k = b.binary(BinOp::Mul, b.arg(1), Value::i32(12));
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, k);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn rotated_loop_also_reduced() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, i| {
            let k = b.binary(BinOp::Mul, i, Value::i32(5));
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, k);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        crate::loop_rotate::run(&mut m);
        let fid = m.main().unwrap();
        let before = run_function(&m, fid, &[6], 100_000).unwrap().return_value;
        assert!(run(&mut m));
        assert_verified(&m);
        let after = run_function(&m, fid, &[6], 100_000).unwrap().return_value;
        assert_eq!(before, after);
        assert_eq!(count_muls(&m, fid), 0);
    }
}
