//! Lowering and canonicalization passes: `-lowerswitch`,
//! `-break-crit-edges`, `-codegenprepare`, and the faithful no-ops
//! (`-lowerinvoke`, `-loweratomic`, `-lower-expect`, `-strip`,
//! `-strip-nondebug`).
//!
//! The no-op passes exist in the registry because the paper's action space
//! includes them; on IR without invokes/atomics/debug-info the real LLVM
//! passes change nothing either, so the RL agent faces the same
//! useless-action landscape the paper describes.

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::{BlockId, CmpPred, Inst, InstId, Module, Opcode, Type, Value};

/// `-lowerswitch`: rewrite every `switch` into a chain of `icmp eq` +
/// conditional branches. Returns true on change.
pub fn run_lowerswitch(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let f = m.func(fid);
        let mut targets: Vec<(BlockId, InstId)> = Vec::new();
        for bb in f.block_ids() {
            if let Some(t) = f.terminator(bb) {
                if matches!(f.inst(t).op, Opcode::Switch { .. }) {
                    targets.push((bb, t));
                }
            }
        }
        if targets.is_empty() {
            return false;
        }
        for (bb, term) in targets {
            lower_one_switch(m.func_mut(fid), bb, term);
        }
        true
    })
}

fn lower_one_switch(f: &mut autophase_ir::Function, bb: BlockId, term: InstId) {
    let Opcode::Switch {
        value,
        default,
        cases,
    } = f.inst(term).op.clone()
    else {
        unreachable!("caller checked switch")
    };
    // Remember the φ values each target received from `bb` before rewiring.
    let mut targets: Vec<BlockId> = cases.iter().map(|(_, t)| *t).collect();
    targets.push(default);
    targets.sort();
    targets.dedup();
    let mut phi_vals: Vec<(BlockId, InstId, Value)> = Vec::new();
    for &t in &targets {
        for &iid in &f.block(t).insts {
            if let Opcode::Phi { incoming } = &f.inst(iid).op {
                if let Some((_, v)) = incoming.iter().find(|(p, _)| *p == bb) {
                    phi_vals.push((t, iid, *v));
                }
            }
        }
    }

    // Build the chain: bb tests case 0; each subsequent test gets its own
    // block; the last test falls through to default.
    f.block_mut(bb).insts.pop(); // unlink the switch (erased below)
    let value_ty = util::type_of(f, value);
    let mut chain: Vec<BlockId> = vec![bb];
    let mut cur_bb = bb;
    for (i, (k, target)) in cases.iter().enumerate() {
        let is_last = i == cases.len() - 1;
        let cmp = f.append_inst(
            cur_bb,
            Inst::new(
                Type::I1,
                Opcode::ICmp(CmpPred::Eq, value, Value::const_int(value_ty, *k)),
            ),
        );
        let next_bb = if is_last { default } else { f.add_block() };
        f.append_inst(
            cur_bb,
            Inst::new(
                Type::Void,
                Opcode::CondBr {
                    cond: Value::Inst(cmp),
                    then_bb: *target,
                    else_bb: next_bb,
                },
            ),
        );
        if !is_last {
            chain.push(next_bb);
        }
        cur_bb = next_bb;
    }
    if cases.is_empty() {
        f.append_inst(
            cur_bb,
            Inst::new(Type::Void, Opcode::Br { target: default }),
        );
    }
    f.erase_inst(term);

    // Rebuild φ incoming entries: drop the old `bb` edge, then add one per
    // chain block that now branches to the target, all carrying the value
    // the target used to receive from `bb`.
    for &t in &targets {
        f.remove_phi_edge(t, bb);
    }
    for (t, phi, v) in phi_vals {
        let preds: Vec<BlockId> = chain
            .iter()
            .copied()
            .filter(|&c| f.successors(c).contains(&t))
            .collect();
        if let Opcode::Phi { incoming } = &mut f.inst_mut(phi).op {
            for p in preds {
                if !incoming.iter().any(|(q, _)| *q == p) {
                    incoming.push((p, v));
                }
            }
        }
    }
}

/// `-break-crit-edges`: split every critical edge by inserting a forwarding
/// block. Returns true on change.
pub fn run_break_crit_edges(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let f = m.func_mut(fid);
        let cfg = Cfg::new(f);
        let edges = cfg.critical_edges();
        if edges.is_empty() {
            return false;
        }
        for (src, dst) in edges {
            split_edge(f, src, dst);
        }
        true
    })
}

/// Insert a block on the edge `src → dst`, updating φ-nodes in `dst`.
/// Splits *all* parallel edges from src to dst at once (they carry the same
/// φ values). Returns the new block.
pub fn split_edge(f: &mut autophase_ir::Function, src: BlockId, dst: BlockId) -> BlockId {
    let mid = f.add_block();
    f.append_inst(mid, Inst::new(Type::Void, Opcode::Br { target: dst }));
    if let Some(term) = f.terminator(src) {
        f.inst_mut(term).for_each_successor_mut(|s| {
            if *s == dst {
                *s = mid;
            }
        });
    }
    f.retarget_phis(dst, src, mid);
    mid
}

/// `-codegenprepare`: sink address computations (`gep`) next to their
/// single memory user so the backend can chain them into the same FSM
/// state. Returns true on change.
pub fn run_codegenprepare(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let f = m.func(fid);
        let index = util::UserIndex::build(f);
        let mut moves: Vec<(InstId, BlockId, InstId, BlockId)> = Vec::new();
        for bb in f.block_ids() {
            for &iid in &f.block(bb).insts {
                if !matches!(f.inst(iid).op, Opcode::Gep { .. }) {
                    continue;
                }
                let [(user, ubb)] = index.users(iid) else {
                    continue;
                };
                if *ubb == bb {
                    continue;
                }
                let is_mem = matches!(f.inst(*user).op, Opcode::Load { .. } | Opcode::Store { .. });
                if is_mem && !f.inst(*user).is_phi() {
                    moves.push((iid, bb, *user, *ubb));
                }
            }
        }
        if moves.is_empty() {
            return false;
        }
        let f = m.func_mut(fid);
        for (gep, from, user, to) in moves {
            f.block_mut(from).insts.retain(|&i| i != gep);
            let pos = f
                .block(to)
                .insts
                .iter()
                .position(|&i| i == user)
                .expect("user in its block");
            f.block_mut(to).insts.insert(pos, gep);
        }
        true
    })
}

/// `-lowerinvoke`: no invoke instructions exist in this IR; like LLVM's
/// pass on invoke-free input, this never changes anything.
pub fn run_lowerinvoke(_m: &mut Module) -> bool {
    false
}

/// `-loweratomic`: no atomic instructions exist in this IR; faithful no-op.
pub fn run_loweratomic(_m: &mut Module) -> bool {
    false
}

/// `-lower-expect`: no `llvm.expect` intrinsics exist in this IR; faithful
/// no-op.
pub fn run_lower_expect(_m: &mut Module) -> bool {
    false
}

/// `-strip`: no symbol/debug metadata exists in this IR; faithful no-op.
pub fn run_strip(_m: &mut Module) -> bool {
    false
}

/// `-strip-nondebug`: faithful no-op (see [`run_strip`]).
pub fn run_strip_nondebug(_m: &mut Module) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_function;
    use autophase_ir::verify::assert_verified;

    fn switch_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let c1 = b.new_block();
        let c2 = b.new_block();
        let d = b.new_block();
        b.switch(b.arg(0), d, vec![(1, c1), (2, c2)]);
        b.switch_to(c1);
        b.ret(Some(Value::i32(10)));
        b.switch_to(c2);
        b.ret(Some(Value::i32(20)));
        b.switch_to(d);
        b.ret(Some(Value::i32(30)));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn lowerswitch_preserves_dispatch() {
        let mut m = switch_module();
        let fid = m.main().unwrap();
        let before: Vec<_> = (0..4)
            .map(|x| run_function(&m, fid, &[x], 100).unwrap().return_value)
            .collect();
        assert!(run_lowerswitch(&mut m));
        assert_verified(&m);
        let after: Vec<_> = (0..4)
            .map(|x| run_function(&m, fid, &[x], 100).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
        // No switch remains.
        let f = m.func(fid);
        let any_switch = f.block_ids().any(|bb| {
            f.block(bb)
                .insts
                .iter()
                .any(|&i| matches!(f.inst(i).op, Opcode::Switch { .. }))
        });
        assert!(!any_switch);
    }

    #[test]
    fn lowerswitch_with_phi_targets() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let j = b.new_block();
        let c1 = b.new_block();
        let entry = b.entry_block();
        b.switch(b.arg(0), j, vec![(1, c1), (2, j)]);
        b.switch_to(c1);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I32, vec![(entry, Value::i32(0)), (c1, Value::i32(1))]);
        b.ret(Some(p));
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before: Vec<_> = (0..4)
            .map(|x| run_function(&m, fid, &[x], 100).unwrap().return_value)
            .collect();
        assert!(run_lowerswitch(&mut m));
        assert_verified(&m);
        let after: Vec<_> = (0..4)
            .map(|x| run_function(&m, fid, &[x], 100).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn break_crit_edges_splits() {
        // entry -> {a, join}, a -> join: entry→join is critical.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let a = b.new_block();
        let join = b.new_block();
        let c = b.icmp(CmpPred::Eq, b.arg(0), Value::i32(0));
        let entry = b.entry_block();
        b.cond_br(c, a, join);
        b.switch_to(a);
        b.br(join);
        b.switch_to(join);
        let p = b.phi(Type::I32, vec![(entry, Value::i32(1)), (a, Value::i32(2))]);
        b.ret(Some(p));
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before: Vec<_> = (0..2)
            .map(|x| run_function(&m, fid, &[x], 100).unwrap().return_value)
            .collect();
        assert!(run_break_crit_edges(&mut m));
        assert_verified(&m);
        let cfg = Cfg::new(m.func(fid));
        assert!(cfg.critical_edges().is_empty());
        let after: Vec<_> = (0..2)
            .map(|x| run_function(&m, fid, &[x], 100).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn codegenprepare_sinks_gep() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let use_bb = b.new_block();
        let skip_bb = b.new_block();
        let buf = b.alloca(Type::I32, 8);
        b.store(buf, Value::i32(5));
        let addr = b.gep(buf, Value::i32(0));
        let c = b.icmp(CmpPred::Sgt, b.arg(0), Value::i32(0));
        b.cond_br(c, use_bb, skip_bb);
        b.switch_to(use_bb);
        let v = b.load(Type::I32, addr);
        b.ret(Some(v));
        b.switch_to(skip_bb);
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        assert!(run_codegenprepare(&mut m));
        assert_verified(&m);
        let f = m.func(fid);
        let gep_bb = f
            .block_ids()
            .find(|&bb| {
                f.block(bb)
                    .insts
                    .iter()
                    .any(|&i| matches!(f.inst(i).op, Opcode::Gep { .. }))
            })
            .unwrap();
        assert_eq!(gep_bb, use_bb);
        assert_eq!(
            run_function(&m, fid, &[1], 100).unwrap().return_value,
            Some(5)
        );
    }

    #[test]
    fn noop_passes_are_noops() {
        let mut m = switch_module();
        assert!(!run_lowerinvoke(&mut m));
        assert!(!run_loweratomic(&mut m));
        assert!(!run_lower_expect(&mut m));
        assert!(!run_strip(&mut m));
        assert!(!run_strip_nondebug(&mut m));
    }
}
