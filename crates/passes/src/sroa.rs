//! `-sroa` / `-scalarrepl` / `-scalarrepl-ssa`: scalar replacement of
//! aggregates.
//!
//! A small array alloca whose every access goes through a constant-index
//! `gep` is split into one single-element alloca per touched index. The
//! pieces then become `-mem2reg` candidates; `-scalarrepl-ssa` runs the
//! promotion immediately, matching LLVM's SSAUpdater-based variant.

use crate::util;
use autophase_ir::{FuncId, Inst, InstId, Module, Opcode, Type, Value};
use std::collections::HashMap;

/// Maximum number of elements split.
pub const SROA_ELEM_LIMIT: u32 = 64;

/// Run `-sroa`. Returns true if any aggregate was split.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, split_function)
}

/// Run `-scalarrepl`: same splitting with a smaller legacy element limit.
pub fn run_scalarrepl(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| split_function_limit(m, fid, 16))
}

/// Run `-scalarrepl-ssa`: split, then promote the pieces to SSA.
pub fn run_scalarrepl_ssa(m: &mut Module) -> bool {
    let mut changed = run_scalarrepl(m);
    changed |= crate::mem2reg::run(m);
    changed
}

fn split_function(m: &mut Module, fid: FuncId) -> bool {
    split_function_limit(m, fid, SROA_ELEM_LIMIT)
}

fn split_function_limit(m: &mut Module, fid: FuncId, limit: u32) -> bool {
    let mut changed = false;
    loop {
        let Some(split) = find_splittable(m.func(fid), limit) else {
            return changed;
        };
        let Splittable {
            alloca,
            elem_ty,
            gep_accesses,
            indices,
        } = split;
        let f = m.func_mut(fid);
        // One scalar alloca per accessed index, created right after the
        // original alloca.
        let bb = f.block_of(alloca).expect("alloca is placed");
        let pos = f
            .block(bb)
            .insts
            .iter()
            .position(|&i| i == alloca)
            .expect("alloca in its block");
        let mut index_slot: HashMap<i64, InstId> = HashMap::new();
        for (k, idx) in indices.iter().enumerate() {
            let slot = f.insert_inst(
                bb,
                pos + 1 + k,
                Inst::new(Type::Ptr, Opcode::Alloca { elem_ty, count: 1 }),
            );
            index_slot.insert(*idx, slot);
        }
        // Redirect each gep's users to the scalar slot and drop the gep.
        for (gep, idx) in gep_accesses {
            let slot = index_slot[&idx];
            f.replace_all_uses(Value::Inst(gep), Value::Inst(slot));
            if let Some(gbb) = f.block_of(gep) {
                f.remove_inst(gbb, gep);
            }
        }
        // Direct (index-0) uses of the alloca itself.
        if let Some(&slot0) = index_slot.get(&0) {
            f.replace_all_uses(Value::Inst(alloca), Value::Inst(slot0));
        }
        if f.count_uses(Value::Inst(alloca)) == 0 {
            f.remove_inst(bb, alloca);
        }
        changed = true;
    }
}

struct Splittable {
    alloca: InstId,
    elem_ty: Type,
    /// Constant-index geps to rewrite.
    gep_accesses: Vec<(InstId, i64)>,
    /// All touched indices (slots to create), sorted, deduplicated.
    indices: Vec<i64>,
}

/// Find an alloca where every use is either a `load`/`store` of matching
/// type directly on it (index 0) or a constant-index `gep` whose own uses
/// are all matching loads/stores.
fn find_splittable(f: &autophase_ir::Function, limit: u32) -> Option<Splittable> {
    for bb in f.block_ids() {
        'cand: for &iid in &f.block(bb).insts {
            let Opcode::Alloca { elem_ty, count } = f.inst(iid).op else {
                continue;
            };
            if count < 2 || count > limit || !elem_ty.is_int() {
                continue;
            }
            let addr = Value::Inst(iid);
            let mut accesses: Vec<(InstId, i64)> = Vec::new();
            let mut direct_mem = false;
            for (user, _) in f.users(addr) {
                match &f.inst(user).op {
                    Opcode::Gep {
                        ptr,
                        index: Value::ConstInt(_, idx),
                    } if *ptr == addr => {
                        if *idx < 0 || *idx >= count as i64 {
                            continue 'cand;
                        }
                        // All gep users must be typed loads/stores.
                        let gv = Value::Inst(user);
                        for (gu, _) in f.users(gv) {
                            match &f.inst(gu).op {
                                Opcode::Load { ptr } if *ptr == gv => {
                                    if f.inst(gu).ty != elem_ty {
                                        continue 'cand;
                                    }
                                }
                                Opcode::Store { ptr, value } if *ptr == gv && *value != gv => {
                                    if util::type_of(f, *value) != elem_ty {
                                        continue 'cand;
                                    }
                                }
                                _ => continue 'cand,
                            }
                        }
                        accesses.push((user, *idx));
                    }
                    Opcode::Load { ptr } if *ptr == addr => {
                        if f.inst(user).ty != elem_ty {
                            continue 'cand;
                        }
                        direct_mem = true;
                    }
                    Opcode::Store { ptr, value } if *ptr == addr && *value != addr => {
                        if util::type_of(f, *value) != elem_ty {
                            continue 'cand;
                        }
                        direct_mem = true;
                    }
                    _ => continue 'cand,
                }
            }
            if accesses.is_empty() && !direct_mem {
                continue;
            }
            let mut indices: Vec<i64> = accesses.iter().map(|(_, i)| *i).collect();
            if direct_mem {
                indices.push(0); // direct loads/stores hit element 0
            }
            indices.sort_unstable();
            indices.dedup();
            return Some(Splittable {
                alloca: iid,
                elem_ty,
                gep_accesses: accesses,
                indices,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::BinOp;

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn constant_indexed_array_split() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let arr = b.alloca(Type::I32, 4);
        let p0 = b.gep(arr, Value::i32(0));
        let p1 = b.gep(arr, Value::i32(1));
        b.store(p0, Value::i32(10));
        b.store(p1, Value::i32(20));
        let a = b.load(Type::I32, p0);
        let c = b.load(Type::I32, p1);
        let s = b.binary(BinOp::Add, a, c);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 1000).unwrap().return_value, Some(30));
        // No geps remain; two scalar allocas exist.
        let f = m.func(m.main().unwrap());
        let geps = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter(|&i| matches!(f.inst(i).op, Opcode::Gep { .. }))
            .count();
        assert_eq!(geps, 0);
        let allocas = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter(|&i| matches!(f.inst(i).op, Opcode::Alloca { count: 1, .. }))
            .count();
        assert_eq!(allocas, 2);
    }

    #[test]
    fn sroa_then_mem2reg_eliminates_memory() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let arr = b.alloca(Type::I32, 2);
        let p0 = b.gep(arr, Value::i32(0));
        let p1 = b.gep(arr, Value::i32(1));
        b.store(p0, Value::i32(6));
        b.store(p1, Value::i32(7));
        let a = b.load(Type::I32, p0);
        let c = b.load(Type::I32, p1);
        let s = b.binary(BinOp::Mul, a, c);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run_scalarrepl_ssa(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 1000).unwrap().return_value, Some(42));
        let f = m.func(m.main().unwrap());
        for bb in f.block_ids() {
            for (_, inst) in f.insts_in(bb) {
                assert!(!inst.reads_memory() && !inst.writes_memory());
            }
        }
    }

    #[test]
    fn dynamic_index_blocks_split() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let arr = b.alloca(Type::I32, 4);
        let p = b.gep(arr, b.arg(0)); // dynamic
        b.store(p, Value::i32(1));
        let v = b.load(Type::I32, p);
        b.ret(Some(v));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn escaping_array_blocks_split() {
        let mut m = Module::new("t");
        let callee = {
            let mut b = FunctionBuilder::new("reads_ptr", vec![Type::Ptr], Type::I32);
            let v = b.load(Type::I32, b.arg(0));
            b.ret(Some(v));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let arr = b.alloca(Type::I32, 4);
        let p0 = b.gep(arr, Value::i32(0));
        b.store(p0, Value::i32(5));
        let r = b.call(callee, Type::I32, vec![arr]);
        b.ret(Some(r));
        m.add_function(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn direct_and_gep_access_mix() {
        // Direct store to arr (index 0) plus gep access to index 1.
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let arr = b.alloca(Type::I32, 2);
        b.store(arr, Value::i32(3)); // direct = index 0
        let p1 = b.gep(arr, Value::i32(1));
        b.store(p1, Value::i32(4));
        let a = b.load(Type::I32, arr);
        let c = b.load(Type::I32, p1);
        let s = b.binary(BinOp::Add, a, c);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 1000).unwrap().return_value, Some(7));
    }

    #[test]
    fn huge_array_not_split() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let arr = b.alloca(Type::I32, 1000);
        let p = b.gep(arr, Value::i32(999));
        b.store(p, Value::i32(1));
        let v = b.load(Type::I32, p);
        b.ret(Some(v));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
    }
}
