//! `-dse`: dead-store elimination.
//!
//! Two rules:
//! * within a block, a store overwritten by a later store to the same
//!   address with no intervening may-alias read/call is dead;
//! * stores to a non-escaping alloca that is never loaded are dead.

use crate::util;
use autophase_ir::{BlockId, FuncId, InstId, Module, Opcode, Value};

/// Run the pass. Returns true if any store was removed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let mut changed = intra_block(m, fid);
        changed |= unread_allocas(m, fid);
        if changed {
            util::delete_dead(m, fid);
        }
        changed
    })
}

fn intra_block(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let mut victims: Vec<(BlockId, InstId)> = Vec::new();
    for bb in f.block_ids() {
        let insts = &f.block(bb).insts;
        for (i, &iid) in insts.iter().enumerate() {
            let Opcode::Store { ptr, .. } = f.inst(iid).op else {
                continue;
            };
            // Scan forward for a killing store before any may-alias read.
            for &later in &insts[i + 1..] {
                let linst = f.inst(later);
                match &linst.op {
                    Opcode::Store { ptr: p2, .. } if *p2 == ptr => {
                        victims.push((bb, iid));
                        break;
                    }
                    Opcode::Store { ptr: p2, .. } if util::may_alias(f, *p2, ptr) => {
                        // Unknown overlap: stop (the later store may only
                        // partially shadow ours in a model with widths).
                        break;
                    }
                    Opcode::Load { ptr: p2 } if util::may_alias(f, *p2, ptr) => {
                        break;
                    }
                    Opcode::Call { .. } => break,
                    _ => {}
                }
            }
        }
    }
    if victims.is_empty() {
        return false;
    }
    let f = m.func_mut(fid);
    for (bb, iid) in victims {
        f.remove_inst(bb, iid);
    }
    true
}

fn unread_allocas(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let mut dead_stores: Vec<(BlockId, InstId)> = Vec::new();
    for bb in f.block_ids() {
        for &iid in &f.block(bb).insts {
            if !matches!(f.inst(iid).op, Opcode::Alloca { .. }) {
                continue;
            }
            let addr = Value::Inst(iid);
            // All users must be stores *to* this alloca (directly or via
            // constant geps we can root), with the alloca never loaded,
            // geped-into-and-loaded, or escaping.
            let mut ok = true;
            let mut stores: Vec<(InstId, BlockId)> = Vec::new();
            let mut frontier = vec![addr];
            while let Some(p) = frontier.pop() {
                for (user, ubb) in f.users(p) {
                    match &f.inst(user).op {
                        Opcode::Store { ptr, value } if *ptr == p && *value != p => {
                            stores.push((user, ubb));
                        }
                        Opcode::Gep { ptr, .. } if *ptr == p => {
                            frontier.push(Value::Inst(user));
                        }
                        _ => {
                            ok = false;
                        }
                    }
                }
                if !ok {
                    break;
                }
            }
            if ok {
                dead_stores.extend(stores.into_iter().map(|(i, b)| (b, i)));
            }
        }
    }
    if dead_stores.is_empty() {
        return false;
    }
    let f = m.func_mut(fid);
    for (bb, iid) in dead_stores {
        if f.inst_exists(iid) {
            f.remove_inst(bb, iid);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, Type};

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn overwritten_store_removed() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 1);
        b.store(p, Value::i32(1)); // dead
        b.store(p, Value::i32(2));
        let v = b.load(Type::I32, p);
        b.ret(Some(v));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(2));
        let f = m.func(m.main().unwrap());
        let stores = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter(|&i| matches!(f.inst(i).op, Opcode::Store { .. }))
            .count();
        assert_eq!(stores, 1);
    }

    #[test]
    fn intervening_load_blocks_removal() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 1);
        b.store(p, Value::i32(1));
        let v = b.load(Type::I32, p); // reads the first store
        b.store(p, Value::i32(2));
        let w = b.load(Type::I32, p);
        let s = b.binary(BinOp::Add, v, w);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        run(&mut m);
        assert_verified(&m);
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(3));
    }

    #[test]
    fn store_only_alloca_stores_removed() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 8);
        b.counted_loop(Value::i32(8), |b, i| {
            let q = b.gep(p, i);
            b.store(q, i);
        });
        b.ret(Some(Value::i32(7)));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        let f = m.func(m.main().unwrap());
        let stores = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter(|&i| matches!(f.inst(i).op, Opcode::Store { .. }))
            .count();
        assert_eq!(stores, 0);
        assert_eq!(run_main(&m, 10_000).unwrap().return_value, Some(7));
    }

    #[test]
    fn loaded_alloca_stores_kept() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 4);
        let q = b.gep(p, Value::i32(1));
        b.store(q, Value::i32(5));
        let v = b.load(Type::I32, q);
        b.ret(Some(v));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(5));
    }

    #[test]
    fn distinct_allocas_do_not_block() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 1);
        let q = b.alloca(Type::I32, 1);
        b.store(p, Value::i32(1)); // dead: overwritten below, q-load irrelevant
        let vq0 = b.load(Type::I32, q);
        b.store(p, Value::i32(2));
        let vp = b.load(Type::I32, p);
        let s = b.binary(BinOp::Add, vp, vq0);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(2));
    }

    #[test]
    fn call_blocks_removal() {
        let mut m = Module::new("t");
        let callee = {
            let mut b = FunctionBuilder::new("reader", vec![Type::Ptr], Type::I32);
            let v = b.load(Type::I32, b.arg(0));
            b.ret(Some(v));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 1);
        b.store(p, Value::i32(1));
        let r = b.call(callee, Type::I32, vec![p]);
        b.store(p, Value::i32(2));
        let v = b.load(Type::I32, p);
        let s = b.binary(BinOp::Add, r, v);
        b.ret(Some(s));
        m.add_function(b.finish());
        run(&mut m);
        assert_verified(&m);
        assert_eq!(run_main(&m, 1000).unwrap().return_value, Some(3));
    }
}
