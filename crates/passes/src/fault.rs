//! Deterministic, seeded fault injection for chaos testing.
//!
//! Compiled only under `cfg(any(test, feature = "fault-injection"))` —
//! production builds contain none of this. The harness answers one
//! question for the rest of the workspace: *does the evaluation stack
//! survive a misbehaving pass?* A [`FaultPlan`] describes exactly which
//! checked applications fault and how ([`FaultKind`]: panic, IR
//! corruption, fuel exhaustion); [`install_plan`] arms it process-wide;
//! [`crate::checked::apply_checked`] and the phase-ordering environment
//! poll it on every application.
//!
//! # Determinism
//!
//! Injection must not depend on thread interleaving, or the chaos suite
//! could never assert that non-faulted episodes stay bit-identical across
//! worker counts. Two mechanisms guarantee that:
//!
//! * Application counts are **thread-local** and scoped to an *episode
//!   context* ([`set_episode`], called by the environment on every
//!   reset). An episode always runs on a single worker thread, so "the
//!   Nth apply of pass P in episode E" is the same application no matter
//!   how many workers exist or which one runs the episode.
//! * A spec with `episode: None` matches any context and counts applies
//!   since the context was last reset — the right mode for single-thread
//!   unit tests driving [`crate::checked::apply_checked`] directly.
//!
//! Plans are either hand-written ([`FaultPlan::new`]) or generated from a
//! seed ([`FaultPlan::seeded`]) with a SplitMix64 stream, so a chaos run
//! is reproducible from one `u64`.

use crate::checked::{FaultKind, INJECTED_PANIC_MSG};
use crate::registry::PassId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, PoisonError};

/// One planned fault: the `nth` (1-based) checked application of `pass`
/// within a matching context faults with `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which pass to sabotage.
    pub pass: PassId,
    /// Which application of that pass within the context (1-based).
    pub nth: u32,
    /// Restrict to one episode context (`None` matches any context).
    pub episode: Option<u64>,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A set of planned faults plus a fired-count for assertions.
#[derive(Debug)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    fired: AtomicU64,
}

impl FaultPlan {
    /// A plan from explicit specs.
    pub fn new(specs: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan {
            specs,
            fired: AtomicU64::new(0),
        }
    }

    /// A reproducible plan derived from `seed`: one fault per entry of
    /// `passes`, cycling through the three [`FaultKind`]s, targeting a
    /// pseudo-random episode in `0..episodes` (or any context when
    /// `episodes` is 0) at a pseudo-random `nth` in `1..=3`.
    pub fn seeded(seed: u64, passes: &[PassId], episodes: u64) -> FaultPlan {
        const KINDS: [FaultKind; 3] = [
            FaultKind::Panic,
            FaultKind::CorruptIr,
            FaultKind::ExhaustFuel,
        ];
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let specs = passes
            .iter()
            .enumerate()
            .map(|(i, &pass)| FaultSpec {
                pass,
                nth: (next() % 3) as u32 + 1,
                episode: if episodes == 0 {
                    None
                } else {
                    Some(next() % episodes)
                },
                kind: KINDS[i % KINDS.len()],
            })
            .collect();
        FaultPlan::new(specs)
    }

    /// The planned faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// How many planned faults have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Episode indices this plan targets (specs with `episode: None`
    /// contribute nothing — they match any context).
    pub fn target_episodes(&self) -> Vec<u64> {
        let mut eps: Vec<u64> = self.specs.iter().filter_map(|s| s.episode).collect();
        eps.sort_unstable();
        eps.dedup();
        eps
    }
}

/// Fast "is any plan armed?" flag so [`poll`] is one relaxed load when
/// the harness is idle.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
    &SLOT
}

fn lock_slot() -> MutexGuard<'static, Option<Arc<FaultPlan>>> {
    // A panic while holding this lock (tests inject panics on purpose)
    // must not wedge the harness: the Option is always in a valid state.
    plan_slot().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arm `plan` process-wide. Returns the shared handle so the caller can
/// later assert on [`FaultPlan::fired`]. Replaces any previous plan.
pub fn install_plan(plan: FaultPlan) -> Arc<FaultPlan> {
    let plan = Arc::new(plan);
    *lock_slot() = Some(Arc::clone(&plan));
    ACTIVE.store(true, Ordering::Release);
    plan
}

/// Disarm the harness (subsequent [`poll`]s return `None`).
pub fn clear_plan() {
    ACTIVE.store(false, Ordering::Release);
    *lock_slot() = None;
}

struct Ctx {
    episode: Option<u64>,
    counts: HashMap<PassId, u32>,
}

thread_local! {
    static CTX: RefCell<Ctx> = RefCell::new(Ctx {
        episode: None,
        counts: HashMap::new(),
    });
}

/// Enter an episode context on this thread (the phase-ordering
/// environment calls this from every reset). Resets the per-pass
/// application counts, which is what keeps "the Nth apply of pass P in
/// episode E" independent of worker count and scheduling.
pub fn set_episode(episode: Option<u64>) {
    CTX.with(|c| {
        let mut c = c.borrow_mut();
        c.episode = episode;
        c.counts.clear();
    });
}

/// Count one attempted application of `pass` in the current context and
/// return the fault planned for it, if any. Cheap when no plan is armed.
pub fn poll(pass: PassId) -> Option<FaultKind> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let plan = lock_slot().clone()?;
    let (episode, count) = CTX.with(|c| {
        let mut c = c.borrow_mut();
        let count = c.counts.entry(pass).or_insert(0);
        *count += 1;
        let count = *count;
        (c.episode, count)
    });
    let hit = plan.specs.iter().find(|s| {
        s.pass == pass && s.nth == count && (s.episode.is_none() || s.episode == episode)
    })?;
    plan.fired.fetch_add(1, Ordering::Relaxed);
    Some(hit.kind)
}

/// Install (once) a panic hook that swallows *injected* panics — payloads
/// equal to [`INJECTED_PANIC_MSG`] — and delegates everything else to the
/// previous hook. Chaos tests inject thousands of panics on purpose; this
/// keeps their stderr readable without hiding real failures.
pub fn quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| *s == INJECTED_PANIC_MSG);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Serialize tests that install a plan: the plan is process-global, so
/// concurrently running `#[test]`s that arm different plans would race.
/// Hold the returned guard for the duration of the test.
pub fn test_guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_counts_per_pass_and_fires_on_nth() {
        let _g = test_guard();
        set_episode(None);
        let plan = install_plan(FaultPlan::new(vec![FaultSpec {
            pass: 15,
            nth: 2,
            episode: None,
            kind: FaultKind::Panic,
        }]));
        assert_eq!(poll(15), None); // 1st apply
        assert_eq!(poll(7), None); // other pass does not advance 15's count
        assert_eq!(poll(15), Some(FaultKind::Panic)); // 2nd apply
        assert_eq!(poll(15), None); // 3rd
        assert_eq!(plan.fired(), 1);
        clear_plan();
    }

    #[test]
    fn episode_filter_and_context_reset() {
        let _g = test_guard();
        let plan = install_plan(FaultPlan::new(vec![FaultSpec {
            pass: 33,
            nth: 1,
            episode: Some(4),
            kind: FaultKind::ExhaustFuel,
        }]));
        set_episode(Some(3));
        assert_eq!(poll(33), None);
        set_episode(Some(4));
        assert_eq!(poll(33), Some(FaultKind::ExhaustFuel));
        // Re-entering the same episode (a retry) re-arms the count.
        set_episode(Some(4));
        assert_eq!(poll(33), Some(FaultKind::ExhaustFuel));
        assert_eq!(plan.fired(), 2);
        clear_plan();
        set_episode(None);
    }

    #[test]
    fn no_plan_means_no_faults() {
        let _g = test_guard();
        clear_plan();
        set_episode(None);
        for pass in 0..46 {
            assert_eq!(poll(pass), None);
        }
    }

    #[test]
    fn seeded_plans_are_reproducible_and_cover_kinds() {
        let a = FaultPlan::seeded(9, &[15, 24, 33], 8);
        let b = FaultPlan::seeded(9, &[15, 24, 33], 8);
        assert_eq!(a.specs(), b.specs());
        let c = FaultPlan::seeded(10, &[15, 24, 33], 8);
        assert_ne!(a.specs(), c.specs());
        let kinds: Vec<FaultKind> = a.specs().iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::Panic,
                FaultKind::CorruptIr,
                FaultKind::ExhaustFuel
            ]
        );
        for s in a.specs() {
            assert!((1..=3).contains(&s.nth));
            assert!(s.episode.unwrap() < 8);
        }
        assert!(FaultPlan::seeded(9, &[1], 0).specs()[0].episode.is_none());
    }
}
