//! `-loop-simplify`: canonicalize natural loops.
//!
//! Ensures every loop has a dedicated preheader (single outside
//! predecessor of the header whose only successor is the header), a single
//! latch (multiple back edges merged through a fresh block), and dedicated
//! exits (exit blocks whose predecessors are all inside the loop). This is
//! the form `-licm`, `-loop-rotate`, and `-loop-unroll` want.

use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::{find_loops, Loop};
use autophase_ir::{BlockId, FuncId, Inst, InstId, Module, Opcode, Type};

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    crate::util::for_each_function(m, |m, fid| {
        let mut changed = false;
        // Each structural fix invalidates the analysis; iterate.
        loop {
            let f = m.func(fid);
            let cfg = Cfg::new(f);
            let dt = DomTree::new(f, &cfg);
            let loops = find_loops(f, &cfg, &dt);
            let mut fixed_something = false;
            for l in &loops {
                if l.preheader(&cfg).is_none() {
                    insert_preheader(m.func_mut(fid), &cfg, l);
                    fixed_something = true;
                    break;
                }
                if l.single_latch().is_none() {
                    merge_latches(m.func_mut(fid), l);
                    fixed_something = true;
                    break;
                }
                if let Some(exit) = non_dedicated_exit(f, &cfg, l) {
                    dedicate_exit(m.func_mut(fid), &cfg, l, exit);
                    fixed_something = true;
                    break;
                }
            }
            if !fixed_something {
                break;
            }
            changed = true;
        }
        changed
    })
}

/// An exit block with predecessors outside the loop, if any.
fn non_dedicated_exit(f: &autophase_ir::Function, cfg: &Cfg, l: &Loop) -> Option<BlockId> {
    let _ = f;
    l.exits
        .iter()
        .copied()
        .find(|&e| cfg.unique_preds(e).iter().any(|p| !l.contains(*p)))
}

/// Insert a preheader: outside predecessors of the header are rerouted
/// through a fresh block.
fn insert_preheader(f: &mut autophase_ir::Function, cfg: &Cfg, l: &Loop) {
    let outside: Vec<BlockId> = cfg
        .unique_preds(l.header)
        .into_iter()
        .filter(|p| !l.contains(*p))
        .collect();
    reroute_through_new_block(f, &outside, l.header);
}

/// Merge multiple latches through a fresh block that becomes the only latch.
fn merge_latches(f: &mut autophase_ir::Function, l: &Loop) {
    reroute_through_new_block(f, &l.latches, l.header);
}

/// Give `exit` a dedicated version reached only from inside the loop.
fn dedicate_exit(f: &mut autophase_ir::Function, cfg: &Cfg, l: &Loop, exit: BlockId) {
    let inside: Vec<BlockId> = cfg
        .unique_preds(exit)
        .into_iter()
        .filter(|p| l.contains(*p))
        .collect();
    reroute_through_new_block(f, &inside, exit);
}

/// Create a block `mid` with `br target`, and make every block in `preds`
/// branch to `mid` instead of `target`. φ-nodes in `target` are merged: the
/// entries for `preds` become φ-nodes in `mid` when their values differ,
/// or a single forwarded entry when they agree.
fn reroute_through_new_block(
    f: &mut autophase_ir::Function,
    preds: &[BlockId],
    target: BlockId,
) -> BlockId {
    let mid = f.add_block();

    // Fix φ-nodes first (they reference pred block ids).
    let phi_ids: Vec<InstId> = f
        .block(target)
        .insts
        .iter()
        .copied()
        .filter(|&i| f.inst(i).is_phi())
        .collect();
    for phi in phi_ids {
        let ty = f.inst(phi).ty;
        let Opcode::Phi { incoming } = &f.inst(phi).op else {
            unreachable!("filtered phi")
        };
        let routed: Vec<(BlockId, autophase_ir::Value)> = incoming
            .iter()
            .filter(|(p, _)| preds.contains(p))
            .cloned()
            .collect();
        if routed.is_empty() {
            continue;
        }
        let merged_value = if routed.len() == 1 || routed.iter().all(|(_, v)| *v == routed[0].1) {
            routed[0].1
        } else {
            // A φ in `mid` merges the different incoming values.
            let new_phi = f.insert_inst(
                mid,
                0,
                Inst::new(
                    ty,
                    Opcode::Phi {
                        incoming: routed.clone(),
                    },
                ),
            );
            autophase_ir::Value::Inst(new_phi)
        };
        if let Opcode::Phi { incoming } = &mut f.inst_mut(phi).op {
            incoming.retain(|(p, _)| !preds.contains(p));
            incoming.push((mid, merged_value));
        }
    }

    // Terminator of mid.
    f.append_inst(mid, Inst::new(Type::Void, Opcode::Br { target }));

    // Reroute the pred terminators.
    for &p in preds {
        if let Some(t) = f.terminator(p) {
            f.inst_mut(t).for_each_successor_mut(|s| {
                if *s == target {
                    *s = mid;
                }
            });
        }
    }
    mid
}

/// Query used by tests and by `-licm`: true if every loop in the function
/// is in simplified form.
pub fn is_simplified(m: &Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loops = find_loops(f, &cfg, &dt);
    loops.iter().all(|l| {
        l.preheader(&cfg).is_some()
            && l.single_latch().is_some()
            && non_dedicated_exit(f, &cfg, l).is_none()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_function;
    use autophase_ir::loops::analyze_loops;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::Opcode;
    use autophase_ir::{BinOp, CmpPred, Value};

    /// A loop whose header is branched to directly from two outside blocks
    /// (no preheader) and with two latches.
    fn messy_loop() -> Module {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let header = b.new_block();
        let body_a = b.new_block();
        let body_b = b.new_block();
        let exit = b.new_block();
        let alt_entry = b.new_block();

        let c0 = b.icmp(CmpPred::Sgt, b.arg(0), Value::i32(10));
        b.cond_br(c0, alt_entry, header);

        b.switch_to(alt_entry);
        b.br(header);

        b.switch_to(header);
        let entry = b.entry_block();
        let i = b.phi(
            Type::I32,
            vec![(entry, Value::i32(0)), (alt_entry, Value::i32(1))],
        );
        let c = b.icmp(CmpPred::Slt, i, b.arg(0));
        b.cond_br(c, body_a, exit);

        b.switch_to(body_a);
        let inc = b.binary(BinOp::Add, i, Value::i32(1));
        let odd = b.binary(BinOp::And, i, Value::i32(1));
        let c2 = b.icmp(CmpPred::Ne, odd, Value::i32(0));
        b.cond_br(c2, body_b, header); // latch 1

        b.switch_to(body_b);
        let inc2 = b.binary(BinOp::Add, inc, Value::i32(1));
        b.br(header); // latch 2
        if let Value::Inst(pid) = i {
            if let Opcode::Phi { incoming } = &mut b.func_mut().inst_mut(pid).op {
                incoming.push((body_a, inc));
                incoming.push((body_b, inc2));
            }
        }

        b.switch_to(exit);
        b.ret(Some(i));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        m
    }

    #[test]
    fn messy_loop_gets_canonicalized() {
        let mut m = messy_loop();
        let fid = m.main().unwrap();
        assert!(!is_simplified(&m, fid));
        let before: Vec<_> = [0, 5, 20]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100_000).unwrap().return_value)
            .collect();
        assert!(run(&mut m));
        assert_verified(&m);
        assert!(
            is_simplified(&m, fid),
            "{}",
            autophase_ir::printer::print_module(&m)
        );
        let after: Vec<_> = [0, 5, 20]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100_000).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn builder_loop_already_simplified() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        b.counted_loop(b.arg(0), |_, _| {});
        b.ret(Some(Value::i32(0)));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        assert!(is_simplified(&m, fid));
        assert!(!run(&mut m));
    }

    #[test]
    fn shared_exit_gets_dedicated() {
        // Loop exit block also reachable from outside the loop.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let shared = b.new_block();
        let after_loop = b.new_block();
        let c0 = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c0, shared, after_loop);
        b.switch_to(after_loop);
        b.counted_loop(b.arg(0), |_, _| {});
        b.br(shared);
        b.switch_to(shared);
        b.ret(Some(Value::i32(1)));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before: Vec<_> = [-1, 3]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100_000).unwrap().return_value)
            .collect();
        if !is_simplified(&m, fid) {
            assert!(run(&mut m));
        }
        assert_verified(&m);
        assert!(is_simplified(&m, fid));
        let after: Vec<_> = [-1, 3]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100_000).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn nested_loops_simplified() {
        let mut m = messy_loop();
        run(&mut m);
        let fid = m.main().unwrap();
        let f = m.func(fid);
        let (_, _, loops) = analyze_loops(f);
        assert!(!loops.is_empty());
        assert!(is_simplified(&m, fid));
    }
}
