//! `-indvars`: canonicalize induction variables.
//!
//! Two rewrites:
//! * exit comparisons `icmp ne i, bound` / `icmp ne i+step, bound` on a
//!   unit-step induction variable counting up toward the bound become
//!   `icmp slt` — the canonical form the unroller recognizes;
//! * an induction φ whose final value is computable (constant trip count)
//!   and whose only external use is that final value is replaced outside
//!   the loop by the constant.

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::find_loops;
use autophase_ir::{BinOp, CmpPred, FuncId, InstId, Module, Opcode, Value};

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let mut changed = canonicalize_exit_compares(m, fid);
        changed |= substitute_final_values(m, fid);
        if changed {
            util::delete_dead(m, fid);
        }
        changed
    })
}

/// Final-value substitution: for a bottom-tested counted loop with constant
/// init/step/bound, an exit φ receiving the induction variable (or its
/// increment) gets the *computed* final constant instead — uses after the
/// loop then fold without unrolling anything.
fn substitute_final_values(m: &mut Module, fid: FuncId) -> bool {
    use autophase_ir::Value;
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loops = find_loops(f, &cfg, &dt);
    let mut rewrites: Vec<(InstId, autophase_ir::BlockId, Value, Value)> = Vec::new();
    for l in &loops {
        // Single-block bottom-tested shape (what -loop-rotate produces).
        if l.blocks.len() != 1 || l.single_latch() != Some(l.header) {
            continue;
        }
        let block = l.header;
        let Some(term) = f.terminator(block) else {
            continue;
        };
        let autophase_ir::Opcode::CondBr {
            cond: Value::Inst(cmp),
            then_bb,
            else_bb,
        } = f.inst(term).op
        else {
            continue;
        };
        let back_is_then = then_bb == block;
        let exit = if back_is_then { else_bb } else { then_bb };
        if exit == block {
            continue;
        }
        let autophase_ir::Opcode::ICmp(pred, Value::Inst(next_id), Value::ConstInt(_, bound)) =
            f.inst(cmp).op
        else {
            continue;
        };
        let autophase_ir::Opcode::Binary(BinOp::Add, Value::Inst(iv), Value::ConstInt(_, step)) =
            f.inst(next_id).op
        else {
            continue;
        };
        if step == 0 {
            continue;
        }
        let autophase_ir::Opcode::Phi { incoming } = &f.inst(iv).op else {
            continue;
        };
        let Some(preheader) = l.entering_block(&cfg) else {
            continue;
        };
        let init = incoming
            .iter()
            .find(|(p, _)| *p == preheader)
            .and_then(|(_, v)| v.as_const_int());
        let from_latch = incoming
            .iter()
            .any(|(p, v)| *p == block && *v == Value::Inst(next_id));
        let (Some(init), true) = (init, from_latch) else {
            continue;
        };

        // Simulate to the exit (bounded, mirrors the unroller).
        let ty = f.inst(iv).ty;
        let mut i = init;
        let mut iters = 0u32;
        let (final_iv, final_next) = loop {
            iters += 1;
            if iters > 4096 {
                break (None, None);
            }
            let next = autophase_ir::fold::eval_binop(BinOp::Add, ty, i, step);
            let c = autophase_ir::fold::eval_icmp(pred, ty, next, bound);
            let continues = if back_is_then { c != 0 } else { c == 0 };
            if !continues {
                break (Some(i), Some(next));
            }
            i = next;
        };
        let (Some(final_iv), Some(final_next)) = (final_iv, final_next) else {
            continue;
        };

        // Exit φ entries coming from the loop that carry the IV or its
        // increment become the computed constants.
        for &pid in &f.block(exit).insts {
            if let autophase_ir::Opcode::Phi { incoming } = &f.inst(pid).op {
                for (p, v) in incoming {
                    if *p != block {
                        continue;
                    }
                    if *v == Value::Inst(iv) {
                        rewrites.push((pid, block, *v, Value::const_int(ty, final_iv)));
                    } else if *v == Value::Inst(next_id) {
                        rewrites.push((pid, block, *v, Value::const_int(ty, final_next)));
                    }
                }
            }
        }
    }
    if rewrites.is_empty() {
        return false;
    }
    let f = m.func_mut(fid);
    for (pid, from_block, old, new) in rewrites {
        if let autophase_ir::Opcode::Phi { incoming } = &mut f.inst_mut(pid).op {
            for (p, v) in incoming.iter_mut() {
                if *p == from_block && *v == old {
                    *v = new;
                }
            }
        }
    }
    true
}

fn canonicalize_exit_compares(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loops = find_loops(f, &cfg, &dt);
    let mut rewrites: Vec<(InstId, CmpPred)> = Vec::new();
    for l in &loops {
        let Some(preheader) = l.entering_block(&cfg) else {
            continue;
        };
        for &bb in &l.blocks {
            let Some(term) = f.terminator(bb) else {
                continue;
            };
            let Opcode::CondBr {
                cond: Value::Inst(cmp),
                ..
            } = f.inst(term).op
            else {
                continue;
            };
            if !f.successors(bb).iter().any(|s| !l.contains(*s)) {
                continue; // not an exiting branch
            }
            let Opcode::ICmp(CmpPred::Ne, a, Value::ConstInt(_, bound)) = f.inst(cmp).op else {
                continue;
            };
            // a = iv or iv+step with unit positive step and init <= bound
            // reached exactly (unit step guarantees no overshoot).
            let (phi_id, offset) = match a {
                Value::Inst(x) => match f.inst(x).op {
                    Opcode::Phi { .. } => (x, 0i64),
                    Opcode::Binary(BinOp::Add, Value::Inst(p), Value::ConstInt(_, s)) => (p, s),
                    _ => continue,
                },
                _ => continue,
            };
            let Opcode::Phi { incoming } = &f.inst(phi_id).op else {
                continue;
            };
            let init = incoming
                .iter()
                .find(|(p, _)| *p == preheader)
                .and_then(|(_, v)| v.as_const_int());
            let step = incoming.iter().find_map(|(p, v)| {
                if *p == preheader {
                    return None;
                }
                if let Value::Inst(nid) = v {
                    if let Opcode::Binary(BinOp::Add, base, Value::ConstInt(_, s)) = f.inst(*nid).op
                    {
                        if base == Value::Inst(phi_id) {
                            return Some(s);
                        }
                    }
                }
                None
            });
            let (Some(init), Some(step)) = (init, step) else {
                continue;
            };
            if step != 1 || offset != 0 && offset != step {
                continue;
            }
            // Counting up by 1 from init; `ne bound` exits exactly when the
            // value reaches bound, provided init+offset <= bound.
            if init + offset <= bound {
                rewrites.push((cmp, CmpPred::Slt));
            }
        }
    }
    if rewrites.is_empty() {
        return false;
    }
    let f = m.func_mut(fid);
    for (cmp, pred) in rewrites {
        if let Opcode::ICmp(p, ..) = &mut f.inst_mut(cmp).op {
            *p = pred;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::Type;

    /// A loop exiting on `i != n` (the shape C's `for (i=0;i!=n;i++)`
    /// produces).
    fn ne_loop(n: i32) -> Module {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let entry = b.entry_block();
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I32, vec![(entry, Value::i32(0))]);
        let c = b.icmp(CmpPred::Ne, i, Value::i32(n));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let cur = b.load(Type::I32, acc);
        let s = b.binary(BinOp::Add, cur, i);
        b.store(acc, s);
        let next = b.binary(BinOp::Add, i, Value::i32(1));
        b.br(header);
        if let Value::Inst(pid) = i {
            if let Opcode::Phi { incoming } = &mut b.func_mut().inst_mut(pid).op {
                incoming.push((body, next));
            }
        }
        b.switch_to(exit);
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        m
    }

    #[test]
    fn ne_compare_becomes_slt() {
        let mut m = ne_loop(10);
        let before = run_main(&m, 100_000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
        assert_eq!(before, Some(45));
        let f = m.func(m.main().unwrap());
        let has_ne = f.block_ids().any(|bb| {
            f.block(bb)
                .insts
                .iter()
                .any(|&i| matches!(f.inst(i).op, Opcode::ICmp(CmpPred::Ne, ..)))
        });
        assert!(!has_ne);
    }

    #[test]
    fn indvars_enables_unroll() {
        // ne-loop → indvars → rotate → unroll pipeline works end to end.
        let mut m = ne_loop(6);
        assert!(run(&mut m));
        crate::loop_rotate::run(&mut m);
        assert!(crate::loop_unroll::run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().return_value, Some(15));
    }

    #[test]
    fn final_value_substituted_without_unrolling() {
        // A 1000-trip loop: too big to unroll, but the IV's final value at
        // the exit is a compile-time constant.
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let mut iv = Value::i32(0);
        b.counted_loop(Value::i32(1000), |_b, i| {
            iv = i;
        });
        b.ret(Some(iv));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        crate::loop_rotate::run(&mut m);
        let before = run_main(&m, 100_000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
        // Reading the IV after the loop sees the first *failing* value.
        assert_eq!(before, Some(1000));
        // The exit φ now carries a constant; after cleanup + sccp the ret
        // folds to it.
        crate::sccp::run(&mut m);
        crate::simplifycfg::run(&mut m);
        let f = m.func(m.main().unwrap());
        let uses_const_ret = f.block_ids().any(|bb| {
            f.block(bb).insts.iter().any(|&i| {
                matches!(
                    f.inst(i).op,
                    Opcode::Ret {
                        value: Some(Value::ConstInt(_, 1000))
                    } | Opcode::Phi { .. }
                )
            })
        });
        assert!(uses_const_ret);
    }

    #[test]
    fn downward_ne_loop_untouched() {
        // i counts down: `ne` on a negative step is not rewritten to slt.
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let entry = b.entry_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I32, vec![(entry, Value::i32(10))]);
        let c = b.icmp(CmpPred::Ne, i, Value::i32(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let next = b.binary(BinOp::Add, i, Value::i32(-1));
        b.br(header);
        if let Value::Inst(pid) = i {
            if let Opcode::Phi { incoming } = &mut b.func_mut().inst_mut(pid).op {
                incoming.push((body, next));
            }
        }
        b.switch_to(exit);
        b.ret(Some(i));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let before = run_main(&m, 100_000).unwrap().observable();
        assert!(!run(&mut m));
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
    }
}
