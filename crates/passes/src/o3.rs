//! Reference optimization levels `-O0` and `-O3`.
//!
//! `-O3` is a fixed, hand-ordered pipeline modeled on LLVM's: early
//! cleanup, mem2reg, scalar simplification, interprocedural passes, the
//! loop pipeline (simplify → rotate → licm → unswitch → idioms → unroll),
//! and late cleanup. It is the baseline every experiment compares against,
//! exactly as the paper compares against `clang -O3`.

use crate::registry::{self, PassId};
use autophase_ir::Module;

/// `-O0`: no optimization at all.
pub fn o0(_m: &mut Module) {}

/// The `-O3` pass sequence, as Table-1 indices.
pub const O3_SEQUENCE: &[PassId] = &[
    31, // -simplifycfg
    43, // -sroa
    38, // -mem2reg
    26, // -early-cse
    5,  // -sccp
    30, // -instcombine
    31, // -simplifycfg
    19, // -functionattrs
    25, // -inline
    24, // -partial-inliner
    42, // -deadargelim
    41, // -ipsccp
    40, // -functionattrs (re-infer after inlining)
    43, // -sroa
    38, // -mem2reg
    30, // -instcombine
    8,  // -jump-threading
    0,  // -correlated-propagation
    15, // -reassociate
    31, // -simplifycfg
    29, // -loop-simplify
    16, // -lcssa
    23, // -loop-rotate
    36, // -licm
    10, // -loop-unswitch
    27, // -indvars
    14, // -loop-deletion
    20, // -loop-idiom
    12, // -loop-reduce
    33, // -loop-unroll
    7,  // -gvn
    18, // -memcpyopt
    5,  // -sccp
    30, // -instcombine
    32, // -dse
    28, // -adce
    31, // -simplifycfg
    6,  // -globalopt
    22, // -constmerge
    9,  // -globaldce
    35, // -tailcallelim
    37, // -sink
    17, // -codegenprepare
    30, // -instcombine
    31, // -simplifycfg
];

/// Apply `-O3` in place. Returns the number of passes that changed the
/// module.
pub fn o3(m: &mut Module) -> usize {
    registry::apply_sequence(m, O3_SEQUENCE)
}

/// Fault-isolated `-O3`: every pass of [`O3_SEQUENCE`] is applied
/// transactionally via [`crate::checked::apply_checked`], so a pass that
/// panics, breaks the verifier, or blows the fuel budget is rolled back
/// and skipped instead of aborting the pipeline. Returns the changing
/// pass ids that survived — the effective ordering actually applied.
///
/// This is the degradation baseline a serving layer falls back to when
/// the learned policy path faults: it must make progress on *any*
/// verified module, never crash.
pub fn o3_checked(m: &mut Module, budget: &crate::checked::FuelBudget) -> Vec<PassId> {
    let mut applied = Vec::new();
    for &id in O3_SEQUENCE {
        if let Ok(true) = crate::checked::apply_checked(m, id, budget) {
            applied.push(id);
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, Type, Value};

    fn workload() -> Module {
        let mut m = Module::new("t");
        let helper = {
            let mut b = FunctionBuilder::new("scale", vec![Type::I32], Type::I32);
            let r = b.binary(BinOp::Mul, b.arg(0), Value::i32(3));
            b.ret(Some(r));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(20), |b, i| {
            let s = b.call(helper, Type::I32, vec![i]);
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, s);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn o3_preserves_semantics_and_shrinks_work() {
        let mut m = workload();
        let before = run_main(&m, 1_000_000).unwrap();
        let changed = o3(&mut m);
        assert!(changed >= 4, "O3 should fire several passes, got {changed}");
        assert_verified(&m);
        let after = run_main(&m, 1_000_000).unwrap();
        assert_eq!(before.observable(), after.observable());
        assert_eq!(after.return_value, Some(570)); // 3 * sum(0..20)
        assert!(
            after.insts_executed < before.insts_executed,
            "O3 should reduce dynamic instructions: {} vs {}",
            after.insts_executed,
            before.insts_executed
        );
    }

    #[test]
    fn o3_is_idempotent_enough_to_rerun() {
        let mut m = workload();
        o3(&mut m);
        let first = run_main(&m, 1_000_000).unwrap().observable();
        o3(&mut m);
        assert_verified(&m);
        assert_eq!(run_main(&m, 1_000_000).unwrap().observable(), first);
    }

    #[test]
    fn o0_does_nothing() {
        let mut m = workload();
        let before = m.num_insts();
        o0(&mut m);
        assert_eq!(m.num_insts(), before);
    }
}
