//! `-instcombine`: peephole algebraic simplification.
//!
//! Iterates local rewrite rules to a fixpoint: constant folding, identity
//! and zero laws, strength reduction (multiply/divide/remainder by powers
//! of two), comparison canonicalization, select folding, cast chains, and
//! `gep` chain collapsing.

use crate::util;
use autophase_ir::fold;
use autophase_ir::{BinOp, CastOp, CmpPred, InstId, Module, Opcode, Type, Value};

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let mut changed = false;
        // Fixpoint over local rules; each rewrite is applied immediately so
        // later simplifications always see the current IR.
        loop {
            let mut local = false;
            let blocks: Vec<_> = m.func(fid).block_ids().collect();
            for bb in blocks {
                let insts: Vec<InstId> = m.func(fid).block(bb).insts.clone();
                for iid in insts {
                    let f = m.func(fid);
                    if !f.inst_exists(iid) {
                        continue;
                    }
                    let Some(rw) = simplify(f, iid) else { continue };
                    let f = m.func_mut(fid);
                    match rw {
                        Rewrite::ReplaceWith(v) => {
                            if v == Value::Inst(iid) {
                                continue;
                            }
                            f.replace_all_uses(Value::Inst(iid), v);
                            // Every ReplaceWith source is a pure instruction;
                            // removing it immediately keeps the fixpoint finite.
                            if let Some(b) = f.block_of(iid) {
                                f.remove_inst(b, iid);
                            }
                            local = true;
                        }
                        Rewrite::NewOp(op) => {
                            f.inst_mut(iid).op = op;
                            local = true;
                        }
                    }
                }
            }
            changed |= local;
            if !local {
                break;
            }
        }
        changed |= util::delete_dead(m, fid) > 0;
        changed
    })
}

enum Rewrite {
    /// Replace all uses of the instruction's result with a value.
    ReplaceWith(Value),
    /// Rewrite the instruction in place.
    NewOp(Opcode),
}

fn simplify(f: &autophase_ir::Function, iid: InstId) -> Option<Rewrite> {
    let inst = f.inst(iid);
    let ty = inst.ty;
    match &inst.op {
        Opcode::Binary(op, a, b) => simplify_binary(f, ty, *op, *a, *b),
        Opcode::ICmp(pred, a, b) => simplify_icmp(f, *pred, *a, *b),
        Opcode::Select { cond, tval, fval } => {
            if let Value::ConstInt(_, c) = cond {
                return Some(Rewrite::ReplaceWith(if *c != 0 { *tval } else { *fval }));
            }
            if tval == fval {
                return Some(Rewrite::ReplaceWith(*tval));
            }
            // select c, true, false → zext/id of c at i1
            if ty == Type::I1 && tval.is_one() && fval.is_zero() {
                return Some(Rewrite::ReplaceWith(*cond));
            }
            None
        }
        Opcode::Cast(op, v) => {
            if let Some(c) = fold::fold_cast(*op, ty, *v) {
                return Some(Rewrite::ReplaceWith(c));
            }
            // Identity casts.
            let from = util::type_of(f, *v);
            if from == ty && matches!(op, CastOp::BitCast) {
                return Some(Rewrite::ReplaceWith(*v));
            }
            if from == ty && matches!(op, CastOp::ZExt | CastOp::SExt | CastOp::Trunc) {
                return Some(Rewrite::ReplaceWith(*v));
            }
            // sext(sext(x)) → sext(x); zext(zext(x)) → zext(x);
            // trunc(zext/sext(x)) with matching widths → x.
            if let Value::Inst(inner) = v {
                if let Opcode::Cast(iop, iv) = &f.inst(*inner).op {
                    let orig_ty = util::type_of(f, *iv);
                    match (iop, op) {
                        (CastOp::SExt, CastOp::SExt) => {
                            return Some(Rewrite::NewOp(Opcode::Cast(CastOp::SExt, *iv)))
                        }
                        (CastOp::ZExt, CastOp::ZExt) => {
                            return Some(Rewrite::NewOp(Opcode::Cast(CastOp::ZExt, *iv)))
                        }
                        (CastOp::SExt | CastOp::ZExt, CastOp::Trunc) if orig_ty == ty => {
                            return Some(Rewrite::ReplaceWith(*iv))
                        }
                        _ => {}
                    }
                }
            }
            None
        }
        Opcode::Gep { ptr, index } => {
            // gep(p, 0) → p
            if index.is_zero() {
                return Some(Rewrite::ReplaceWith(*ptr));
            }
            // gep(gep(p, c1), c2) → gep(p, c1+c2) for constants
            if let (Value::Inst(inner), Value::ConstInt(ity, c2)) = (ptr, index) {
                if let Opcode::Gep {
                    ptr: base,
                    index: Value::ConstInt(_, c1),
                } = &f.inst(*inner).op
                {
                    return Some(Rewrite::NewOp(Opcode::Gep {
                        ptr: *base,
                        index: Value::ConstInt(*ity, c1 + c2),
                    }));
                }
            }
            None
        }
        _ => None,
    }
}

fn simplify_binary(
    f: &autophase_ir::Function,
    ty: Type,
    op: BinOp,
    a: Value,
    b: Value,
) -> Option<Rewrite> {
    // Constant fold outright.
    if let Some(c) = fold::fold_binop(op, ty, a, b) {
        return Some(Rewrite::ReplaceWith(c));
    }
    // Canonicalize: constant to the right for commutative ops.
    if op.is_commutative() && a.is_const() && !b.is_const() {
        return Some(Rewrite::NewOp(Opcode::Binary(op, b, a)));
    }
    let b_const = b.as_const_int();
    match op {
        BinOp::Add => {
            if b.is_zero() {
                return Some(Rewrite::ReplaceWith(a));
            }
            // (x + c1) + c2 → x + (c1+c2)
            if let (Value::Inst(ia), Some(c2)) = (a, b_const) {
                if let Opcode::Binary(BinOp::Add, x, Value::ConstInt(_, c1)) = f.inst(ia).op {
                    return Some(Rewrite::NewOp(Opcode::Binary(
                        BinOp::Add,
                        x,
                        Value::const_int(ty, c1.wrapping_add(c2)),
                    )));
                }
            }
        }
        BinOp::Sub => {
            if b.is_zero() {
                return Some(Rewrite::ReplaceWith(a));
            }
            if a == b {
                return Some(Rewrite::ReplaceWith(Value::const_int(ty, 0)));
            }
            // x - c → x + (-c): canonical form feeds the Add rules.
            if let Some(c) = b_const {
                if c != 0 {
                    return Some(Rewrite::NewOp(Opcode::Binary(
                        BinOp::Add,
                        a,
                        Value::const_int(ty, c.wrapping_neg()),
                    )));
                }
            }
        }
        BinOp::Mul => {
            if b.is_zero() {
                return Some(Rewrite::ReplaceWith(Value::const_int(ty, 0)));
            }
            if b.is_one() && ty != Type::I1 {
                return Some(Rewrite::ReplaceWith(a));
            }
            if let Some(c) = b_const {
                if let Some(k) = util::power_of_two(c) {
                    if k > 0 {
                        return Some(Rewrite::NewOp(Opcode::Binary(
                            BinOp::Shl,
                            a,
                            Value::const_int(ty, k as i64),
                        )));
                    }
                }
            }
        }
        BinOp::UDiv => {
            if b.is_one() && ty != Type::I1 {
                return Some(Rewrite::ReplaceWith(a));
            }
            if let Some(c) = b_const {
                if let Some(k) = util::power_of_two(c) {
                    return Some(Rewrite::NewOp(Opcode::Binary(
                        BinOp::LShr,
                        a,
                        Value::const_int(ty, k as i64),
                    )));
                }
            }
        }
        BinOp::SDiv => {
            if b.is_one() && ty != Type::I1 {
                return Some(Rewrite::ReplaceWith(a));
            }
        }
        BinOp::URem => {
            if let Some(c) = b_const {
                if let Some(_k) = util::power_of_two(c) {
                    return Some(Rewrite::NewOp(Opcode::Binary(
                        BinOp::And,
                        a,
                        Value::const_int(ty, c - 1),
                    )));
                }
            }
            if b.is_one() {
                return Some(Rewrite::ReplaceWith(Value::const_int(ty, 0)));
            }
        }
        BinOp::SRem => {
            if b.is_one() {
                return Some(Rewrite::ReplaceWith(Value::const_int(ty, 0)));
            }
        }
        BinOp::And => {
            if b.is_zero() {
                return Some(Rewrite::ReplaceWith(Value::const_int(ty, 0)));
            }
            if a == b {
                return Some(Rewrite::ReplaceWith(a));
            }
            if let Some(c) = b_const {
                // x & all-ones → x
                if ty.is_int() && ty.wrap(c) == ty.wrap(-1) {
                    return Some(Rewrite::ReplaceWith(a));
                }
            }
        }
        BinOp::Or => {
            if b.is_zero() {
                return Some(Rewrite::ReplaceWith(a));
            }
            if a == b {
                return Some(Rewrite::ReplaceWith(a));
            }
            if let Some(c) = b_const {
                if ty.is_int() && ty.wrap(c) == ty.wrap(-1) {
                    return Some(Rewrite::ReplaceWith(Value::const_int(ty, -1)));
                }
            }
        }
        BinOp::Xor => {
            if b.is_zero() {
                return Some(Rewrite::ReplaceWith(a));
            }
            if a == b {
                return Some(Rewrite::ReplaceWith(Value::const_int(ty, 0)));
            }
        }
        BinOp::Shl | BinOp::LShr | BinOp::AShr => {
            if b.is_zero() {
                return Some(Rewrite::ReplaceWith(a));
            }
            if a.is_zero() {
                return Some(Rewrite::ReplaceWith(Value::const_int(ty, 0)));
            }
        }
    }
    None
}

fn simplify_icmp(f: &autophase_ir::Function, pred: CmpPred, a: Value, b: Value) -> Option<Rewrite> {
    if let Some(c) = fold::fold_icmp(pred, a, b) {
        return Some(Rewrite::ReplaceWith(c));
    }
    // Canonicalize constants to the right.
    if a.is_const() && !b.is_const() {
        return Some(Rewrite::NewOp(Opcode::ICmp(pred.swapped(), b, a)));
    }
    if a == b {
        let r = matches!(
            pred,
            CmpPred::Eq | CmpPred::Sle | CmpPred::Sge | CmpPred::Ule | CmpPred::Uge
        );
        return Some(Rewrite::ReplaceWith(Value::bool(r)));
    }
    // icmp (x + c1), c2 → icmp x, (c2 - c1) for eq/ne (wrap-safe).
    if let (Value::Inst(ia), Value::ConstInt(cty, c2)) = (a, b) {
        if matches!(pred, CmpPred::Eq | CmpPred::Ne) {
            if let Opcode::Binary(BinOp::Add, x, Value::ConstInt(_, c1)) = f.inst(ia).op {
                return Some(Rewrite::NewOp(Opcode::ICmp(
                    pred,
                    x,
                    Value::const_int(cty, c2.wrapping_sub(c1)),
                )));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::assert_verified;

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    fn single_ret_const(m: &Module) -> Option<i64> {
        let f = m.func(m.main()?);
        let term = f.terminator(f.entry)?;
        match f.inst(term).op {
            Opcode::Ret {
                value: Some(Value::ConstInt(_, c)),
            } => Some(c),
            _ => None,
        }
    }

    #[test]
    fn folds_constant_tree() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let x = b.binary(BinOp::Add, Value::i32(2), Value::i32(3));
        let y = b.binary(BinOp::Mul, x, Value::i32(4));
        let z = b.binary(BinOp::Sub, y, Value::i32(6));
        b.ret(Some(z));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(single_ret_const(&m), Some(14));
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 1);
    }

    #[test]
    fn identities_removed() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let x = b.arg(0);
        let a = b.binary(BinOp::Add, x, Value::i32(0));
        let c = b.binary(BinOp::Mul, a, Value::i32(1));
        let d = b.binary(BinOp::Xor, c, Value::i32(0));
        b.ret(Some(d));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 1); // just ret x
    }

    #[test]
    fn mul_pow2_becomes_shl() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let y = b.binary(BinOp::Mul, b.arg(0), Value::i32(8));
        b.ret(Some(y));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        let f = m.func(m.main().unwrap());
        let has_shl = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .any(|i| matches!(f.inst(i).op, Opcode::Binary(BinOp::Shl, ..)));
        assert!(has_shl);
    }

    #[test]
    fn urem_pow2_becomes_and() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let y = b.binary(BinOp::URem, b.arg(0), Value::i32(16));
        b.ret(Some(y));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        let f = m.func(m.main().unwrap());
        let has_and = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .any(|i| matches!(f.inst(i).op, Opcode::Binary(BinOp::And, ..)));
        assert!(has_and);
    }

    #[test]
    fn add_chain_constants_grouped() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let a = b.binary(BinOp::Add, b.arg(0), Value::i32(3));
        let c = b.binary(BinOp::Add, a, Value::i32(4));
        b.ret(Some(c));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        let f = m.func(m.main().unwrap());
        assert_eq!(f.num_insts(), 2); // x+7, ret
    }

    #[test]
    fn sub_self_and_sub_const_canonicalized() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let x = b.arg(0);
        let z = b.binary(BinOp::Sub, x, x);
        let w = b.binary(BinOp::Sub, x, Value::i32(5));
        let s = b.binary(BinOp::Add, z, w);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        let before = autophase_ir::interp::run_function(&m, m.main().unwrap(), &[42], 1000)
            .unwrap()
            .return_value;
        assert!(run(&mut m));
        assert_verified(&m);
        let after = autophase_ir::interp::run_function(&m, m.main().unwrap(), &[42], 1000)
            .unwrap()
            .return_value;
        assert_eq!(before, after);
        assert_eq!(after, Some(37));
    }

    #[test]
    fn icmp_canonicalization_and_fold() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I1);
        // 5 < x  →  x > 5
        let c = b.icmp(CmpPred::Slt, Value::i32(5), b.arg(0));
        b.ret(Some(c));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        let f = m.func(m.main().unwrap());
        let cmp = f.block(f.entry).insts[0];
        assert!(matches!(
            f.inst(cmp).op,
            Opcode::ICmp(CmpPred::Sgt, Value::Arg(0), _)
        ));
    }

    #[test]
    fn select_const_cond_folds() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let s = b.select(Value::TRUE, b.arg(0), Value::i32(7));
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 1);
    }

    #[test]
    fn gep_chain_collapsed() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 8);
        let g1 = b.gep(p, Value::i32(2));
        let g2 = b.gep(g1, Value::i32(3));
        b.store(g2, Value::i32(11));
        let g3 = b.gep(p, Value::i32(5));
        let v = b.load(Type::I32, g3);
        b.ret(Some(v));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 1000).unwrap().return_value, Some(11));
    }

    #[test]
    fn cast_roundtrip_removed() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let w = b.cast(CastOp::SExt, Type::I64, b.arg(0));
        let n = b.cast(CastOp::Trunc, Type::I32, w);
        b.ret(Some(n));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 1);
    }

    #[test]
    fn fixpoint_semantics_preserved_on_branchy_code() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(1));
        b.counted_loop(Value::i32(6), |b, i| {
            let c = b.load(Type::I32, acc);
            let m2 = b.binary(BinOp::Mul, c, Value::i32(2));
            let p = b.binary(BinOp::Add, m2, i);
            let q = b.binary(BinOp::Sub, p, Value::i32(0));
            b.store(acc, q);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        let before = run_main(&m, 100_000).unwrap().observable();
        run(&mut m);
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
    }
}
