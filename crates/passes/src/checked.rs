//! Transactional pass application: apply-or-roll-back.
//!
//! AutoPhase's RL loop hammers the pass pipeline with millions of
//! arbitrary pass orderings, and arbitrary orderings routinely drive
//! passes into states their authors never saw: panics on weird CFGs,
//! invariant-breaking rewrites, runaway code growth. A single such event
//! must never abort a training run. [`apply_checked`] makes every pass
//! application a transaction:
//!
//! 1. snapshot the module,
//! 2. run the pass under [`std::panic::catch_unwind`],
//! 3. enforce the [`FuelBudget`] (post-pass instruction ceiling),
//! 4. re-verify the module with [`verify_module`] when the pass reported
//!    a change,
//! 5. on *any* fault — panic, verifier rejection, fuel exhaustion —
//!    restore the snapshot and report a typed [`PassFault`] instead of
//!    crashing. The caller observes an unchanged module; the environment
//!    maps that to "no-op, zero reward".
//!
//! [`apply_fixpoint_checked`] additionally bounds iteration count,
//! reporting [`PassFault::NonConvergence`] for passes that keep claiming
//! progress past the budget (the failure mode the PR 1 differential suite
//! caught in `-reassociate` and `-partial-inliner`).
//!
//! Every fault increments the `pass_fault_total{<pass>}` and
//! `rollback_total{<pass>}` telemetry counters.
//!
//! Fault *injection* (the chaos-testing harness) lives in [`crate::fault`]
//! and is compiled only under `cfg(any(test, feature = "fault-injection"))`;
//! this module is always available and pays nothing for the harness in
//! production builds.

use crate::changeset::{ChangeSet, ChangeTracker};
use crate::registry::{self, PassId};
use autophase_ir::verify::{verify_functions, verify_module, VerifyError};
use autophase_ir::Module;
use autophase_telemetry as telemetry;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Resource budget one checked pass application may spend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuelBudget {
    /// Hard ceiling on the module's instruction count after the pass. A
    /// pass that grows the module beyond this faults with
    /// [`PassFault::FuelExhausted`] and is rolled back — the backstop
    /// against runaway unroll/inline growth that the registry's
    /// [`registry::GROWTH_LIMIT`] soft limit cannot give (a single apply
    /// can still overshoot it).
    pub max_insts: usize,
    /// Iteration bound for [`apply_fixpoint_checked`]: a pass still
    /// reporting changes after this many applications is declared
    /// non-convergent and rolled back to the pre-fixpoint module.
    pub max_fixpoint_iters: u32,
}

impl Default for FuelBudget {
    fn default() -> FuelBudget {
        FuelBudget {
            // ~7x the registry's GROWTH_LIMIT: generous for legitimate
            // single-apply growth, tiny next to an actual blowup.
            max_insts: 20_000,
            max_fixpoint_iters: 32,
        }
    }
}

/// How a checked pass application failed. The module is always rolled
/// back to its pre-pass state before this is returned.
#[derive(Debug, Clone, PartialEq)]
pub enum PassFault {
    /// The pass panicked.
    Panic {
        /// The offending pass.
        pass: PassId,
    },
    /// The pass left IR behind that the verifier rejects.
    Verifier {
        /// The offending pass.
        pass: PassId,
        /// What the verifier found.
        error: VerifyError,
    },
    /// The pass exceeded the instruction budget (runaway growth).
    FuelExhausted {
        /// The offending pass.
        pass: PassId,
        /// Instruction count the pass produced.
        insts: usize,
        /// The budget it violated.
        limit: usize,
    },
    /// The pass kept reporting changes past the fixpoint iteration bound.
    NonConvergence {
        /// The offending pass.
        pass: PassId,
        /// How many iterations were attempted.
        iters: u32,
    },
}

impl PassFault {
    /// The pass that faulted.
    pub fn pass(&self) -> PassId {
        match *self {
            PassFault::Panic { pass }
            | PassFault::Verifier { pass, .. }
            | PassFault::FuelExhausted { pass, .. }
            | PassFault::NonConvergence { pass, .. } => pass,
        }
    }
}

impl fmt::Display for PassFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = registry::pass_name(self.pass());
        match self {
            PassFault::Panic { .. } => write!(f, "{name} panicked"),
            PassFault::Verifier { error, .. } => {
                write!(f, "{name} broke the verifier: {error}")
            }
            PassFault::FuelExhausted { insts, limit, .. } => {
                write!(f, "{name} exhausted fuel: {insts} insts > limit {limit}")
            }
            PassFault::NonConvergence { iters, .. } => {
                write!(f, "{name} failed to converge within {iters} iterations")
            }
        }
    }
}

impl std::error::Error for PassFault {}

/// The kind of fault an injection harness may force into a checked apply.
/// Only [`apply_checked_with`] consumes these; production code paths
/// never construct them (the seeded harness in [`crate::fault`] does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the pass body (exercises the `catch_unwind` path).
    Panic,
    /// Corrupt the module after the pass runs (exercises the verifier
    /// rejection + rollback path).
    CorruptIr,
    /// Report the fuel budget as exhausted (exercises the fuel path).
    ExhaustFuel,
}

/// Panic payload used by injected panics, so a quiet panic hook can tell
/// them apart from real failures.
pub const INJECTED_PANIC_MSG: &str = "injected fault: pass panic";

/// Apply pass `id` transactionally (see the module docs). Returns
/// `Ok(changed)` exactly like [`registry::apply`] on success; on any
/// fault the module is rolled back to its pre-pass state and the fault is
/// returned. `-terminate` and out-of-range ids are no-ops and cannot
/// fault.
///
/// With the fault-injection harness compiled in and a plan installed,
/// each call polls [`crate::fault::poll`] for an injected fault first.
///
/// # Errors
///
/// Returns the [`PassFault`] that was isolated (module already restored).
pub fn apply_checked(m: &mut Module, id: PassId, budget: &FuelBudget) -> Result<bool, PassFault> {
    #[cfg(any(test, feature = "fault-injection"))]
    let injected = crate::fault::poll(id);
    #[cfg(not(any(test, feature = "fault-injection")))]
    let injected: Option<FaultKind> = None;
    apply_checked_with(m, id, budget, injected)
}

/// [`apply_checked`], but also returning the exact [`ChangeSet`] of a
/// successful apply (empty on `Ok(false)`), so callers that maintain
/// incremental feature state can resync only the dirty functions instead
/// of re-extracting the whole module. Polls the injection plan exactly
/// like [`apply_checked`].
///
/// # Errors
///
/// Returns the [`PassFault`] that was isolated (module already restored).
pub fn apply_checked_changeset(
    m: &mut Module,
    id: PassId,
    budget: &FuelBudget,
) -> Result<(bool, ChangeSet), PassFault> {
    #[cfg(any(test, feature = "fault-injection"))]
    let injected = crate::fault::poll(id);
    #[cfg(not(any(test, feature = "fault-injection")))]
    let injected: Option<FaultKind> = None;
    apply_checked_traced(m, id, budget, injected)
}

/// [`apply_checked`] with an explicit injected fault (or `None` for the
/// plain checked path). Callers that poll the injection plan themselves —
/// the phase-ordering environment does, so injection stays deterministic
/// even when a memoized transition skips the apply — feed the polled
/// fault through here.
///
/// # Errors
///
/// Returns the [`PassFault`] that was isolated (module already restored).
pub fn apply_checked_with(
    m: &mut Module,
    id: PassId,
    budget: &FuelBudget,
    injected: Option<FaultKind>,
) -> Result<bool, PassFault> {
    apply_checked_traced(m, id, budget, injected).map(|(changed, _)| changed)
}

/// [`apply_checked_with`] that additionally derives the exact
/// [`ChangeSet`] of the successful apply (empty on `Ok(false)`).
///
/// The transaction snapshot doubles as the change tracker's baseline:
/// because the snapshot shares every function `Arc`, the pass's
/// copy-on-write mutations land in fresh allocations, and the post-pass
/// pointer diff yields the dirty set with no extra bookkeeping. The same
/// diff drives *dirty-only verification* — only touched functions are
/// re-verified unless the change was structural (functions/globals
/// added or removed, signatures changed), where a clean caller could be
/// invalidated and the whole module is re-checked.
///
/// # Errors
///
/// Returns the [`PassFault`] that was isolated (module already restored).
pub fn apply_checked_traced(
    m: &mut Module,
    id: PassId,
    budget: &FuelBudget,
    injected: Option<FaultKind>,
) -> Result<(bool, ChangeSet), PassFault> {
    if id >= registry::pass_count() || id == registry::TERMINATE {
        return Ok((false, ChangeSet::empty()));
    }
    if let Some(FaultKind::ExhaustFuel) = injected {
        // The pass never ran: the module already *is* its pre-pass state,
        // so the rollback is trivial — but it is still a fault.
        let fault = PassFault::FuelExhausted {
            pass: id,
            insts: usize::MAX,
            limit: budget.max_insts,
        };
        record_fault(&fault);
        return Err(fault);
    }
    let snapshot = m.clone();
    let tracker = ChangeTracker::before(&snapshot);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(FaultKind::Panic) = injected {
            std::panic::panic_any(INJECTED_PANIC_MSG);
        }
        let mut changed = registry::apply(m, id);
        if let Some(FaultKind::CorruptIr) = injected {
            corrupt_module(m);
            changed = true;
        }
        changed
    }));
    let mut changeset = ChangeSet::empty();
    let fault = match outcome {
        Err(_) => Some(PassFault::Panic { pass: id }),
        Ok(changed) => {
            let insts = m.num_insts();
            if insts > budget.max_insts {
                Some(PassFault::FuelExhausted {
                    pass: id,
                    insts,
                    limit: budget.max_insts,
                })
            } else if changed {
                // An unchanged module is bit-identical to the verified
                // pre-pass snapshot; only changed modules need re-checking.
                changeset = tracker.diff(m);
                let verified = if changeset.needs_full_rebuild() {
                    verify_module(m)
                } else {
                    verify_functions(m, changeset.dirty_funcs.iter().copied())
                };
                verified
                    .err()
                    .map(|error| PassFault::Verifier { pass: id, error })
            } else {
                None
            }
        }
    };
    match fault {
        Some(fault) => {
            *m = snapshot;
            record_fault(&fault);
            Err(fault)
        }
        None => {
            if telemetry::enabled() {
                telemetry::incr("snapshot_bytes_saved", "", tracker.bytes_shared(m));
            }
            Ok((outcome.unwrap_or(false), changeset))
        }
    }
}

/// Apply pass `id` to fixpoint (until it reports no change), checked, and
/// bounded by `budget.max_fixpoint_iters`. Returns whether any iteration
/// changed the module. On *any* fault — including non-convergence — the
/// module is rolled back to the state before the **first** iteration.
///
/// # Errors
///
/// Returns the [`PassFault`] that was isolated (module already restored).
pub fn apply_fixpoint_checked(
    m: &mut Module,
    id: PassId,
    budget: &FuelBudget,
) -> Result<bool, PassFault> {
    let snapshot = m.clone();
    let mut changed_any = false;
    for _ in 0..budget.max_fixpoint_iters {
        match apply_checked(m, id, budget) {
            Ok(true) => changed_any = true,
            Ok(false) => return Ok(changed_any),
            Err(fault) => {
                // The inner apply rolled back one step; undo the earlier
                // (successful) iterations too so the caller sees a clean
                // transaction.
                *m = snapshot;
                return Err(fault);
            }
        }
    }
    let fault = PassFault::NonConvergence {
        pass: id,
        iters: budget.max_fixpoint_iters,
    };
    *m = snapshot;
    record_fault(&fault);
    Err(fault)
}

/// Count a fault in telemetry. Every fault implies a rollback (the module
/// is restored to — or provably already at — its pre-pass state), so both
/// counters move together; they are kept separate so dashboards can later
/// distinguish faults with other recovery strategies.
fn record_fault(fault: &PassFault) {
    let name = registry::pass_name(fault.pass());
    telemetry::incr("pass_fault_total", name, 1);
    telemetry::incr("rollback_total", name, 1);
}

/// Make the module fail verification (dangling callee in the first
/// function's entry block). Used only by the [`FaultKind::CorruptIr`]
/// injection path.
fn corrupt_module(m: &mut Module) {
    use autophase_ir::{FuncId, Inst, Opcode, Type};
    let Some(fid) = m.func_ids().next() else {
        return;
    };
    let f = m.func_mut(fid);
    let entry = f.entry;
    let bogus = FuncId::from_index(usize::MAX / 2);
    f.insert_inst(
        entry,
        0,
        Inst::new(
            Type::I32,
            Opcode::Call {
                callee: bogus,
                args: vec![],
            },
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::printer::print_module;
    use autophase_ir::{BinOp, Type, Value};

    fn sample_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(10), |b, i| {
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, i);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn healthy_pass_matches_unchecked_apply() {
        let budget = FuelBudget::default();
        for id in 0..registry::pass_count() {
            let mut checked = sample_module();
            let mut plain = sample_module();
            let got = apply_checked(&mut checked, id, &budget)
                .unwrap_or_else(|f| panic!("unexpected fault: {f}"));
            let want = registry::apply(&mut plain, id);
            assert_eq!(got, want, "{}", registry::pass_name(id));
            assert_eq!(
                print_module(&checked),
                print_module(&plain),
                "{} diverged under checking",
                registry::pass_name(id)
            );
        }
    }

    #[test]
    fn injected_panic_rolls_back() {
        crate::fault::quiet_panic_hook();
        let mut m = sample_module();
        let before = print_module(&m);
        let r = apply_checked_with(&mut m, 38, &FuelBudget::default(), Some(FaultKind::Panic));
        assert_eq!(r, Err(PassFault::Panic { pass: 38 }));
        assert_eq!(print_module(&m), before, "module must be restored");
        verify_module(&m).unwrap();
    }

    #[test]
    fn injected_corruption_rolls_back_via_verifier() {
        let mut m = sample_module();
        let before = print_module(&m);
        let r = apply_checked_with(
            &mut m,
            31,
            &FuelBudget::default(),
            Some(FaultKind::CorruptIr),
        );
        match r {
            Err(PassFault::Verifier { pass: 31, .. }) => {}
            other => panic!("expected verifier fault, got {other:?}"),
        }
        assert_eq!(print_module(&m), before);
        verify_module(&m).unwrap();
    }

    #[test]
    fn injected_fuel_exhaustion_is_a_fault_without_mutation() {
        let mut m = sample_module();
        let before = print_module(&m);
        let r = apply_checked_with(
            &mut m,
            33,
            &FuelBudget::default(),
            Some(FaultKind::ExhaustFuel),
        );
        match r {
            Err(PassFault::FuelExhausted { pass: 33, .. }) => {}
            other => panic!("expected fuel fault, got {other:?}"),
        }
        assert_eq!(print_module(&m), before);
    }

    #[test]
    fn real_growth_past_budget_faults_and_restores() {
        let mut m = sample_module();
        let before = print_module(&m);
        let budget = FuelBudget {
            max_insts: 1,
            ..FuelBudget::default()
        };
        // -mem2reg changes the module, whose size then exceeds the budget.
        let r = apply_checked(&mut m, 38, &budget);
        match r {
            Err(PassFault::FuelExhausted {
                pass: 38,
                insts,
                limit: 1,
            }) => {
                assert!(insts > 1);
            }
            other => panic!("expected fuel fault, got {other:?}"),
        }
        assert_eq!(print_module(&m), before);
    }

    #[test]
    fn fixpoint_bound_reports_non_convergence_and_restores() {
        let mut m = sample_module();
        let before = print_module(&m);
        let budget = FuelBudget {
            // One iteration cannot *prove* convergence of a changing pass,
            // so the fixpoint driver must fault and restore.
            max_fixpoint_iters: 1,
            ..FuelBudget::default()
        };
        let r = apply_fixpoint_checked(&mut m, 38, &budget);
        assert_eq!(r, Err(PassFault::NonConvergence { pass: 38, iters: 1 }));
        assert_eq!(print_module(&m), before);
    }

    #[test]
    fn fixpoint_converges_on_idempotent_pass() {
        let mut m = sample_module();
        let changed = apply_fixpoint_checked(&mut m, 38, &FuelBudget::default()).unwrap();
        assert!(changed);
        verify_module(&m).unwrap();
        // A second fixpoint run finds nothing left to do.
        assert!(!apply_fixpoint_checked(&mut m, 38, &FuelBudget::default()).unwrap());
    }

    #[test]
    fn terminate_and_out_of_range_cannot_fault() {
        let mut m = sample_module();
        let budget = FuelBudget::default();
        assert_eq!(
            apply_checked(&mut m, registry::TERMINATE, &budget),
            Ok(false)
        );
        assert_eq!(apply_checked(&mut m, 9_999, &budget), Ok(false));
    }

    #[test]
    fn faults_display_the_pass_name() {
        let f = PassFault::Panic { pass: 15 };
        assert!(f.to_string().contains("-reassociate"));
        let f = PassFault::FuelExhausted {
            pass: 33,
            insts: 10,
            limit: 5,
        };
        assert!(f.to_string().contains("-loop-unroll"));
        assert_eq!(f.pass(), 33);
    }
}
