//! The pass registry: the paper's Table 1 action space.
//!
//! Index ↔ pass mapping reproduces Table 1 exactly, including the repeated
//! `-functionattrs` (indices 19 and 40) and the episode-terminating action
//! `-terminate` at index 45.
//!
//! [`apply`] is telemetry-instrumented: with telemetry enabled, every
//! invocation records per-pass wall time (`pass.apply_ns{<name>}`), an
//! invocation count (`pass.invocations{<name>}`), and a changed count
//! (`pass.changed{<name>}` — changed/invocations is the changed-flag rate
//! AutoPhase's §4 importance analysis mines). Instrument handles are
//! cached in a `OnceLock`, so the enabled cost is a clock read plus a few
//! relaxed atomics, and the disabled cost is a single relaxed load.

use autophase_ir::Module;
use autophase_telemetry as telemetry;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Index into [`PASS_NAMES`] (the RL action space).
pub type PassId = usize;

/// The 46 Table-1 entries. Index 45 (`-terminate`) is the "stop the
/// episode" pseudo-action and never transforms the module.
pub const PASS_NAMES: [&str; 46] = [
    "-correlated-propagation", // 0
    "-scalarrepl",             // 1
    "-lowerinvoke",            // 2
    "-strip",                  // 3
    "-strip-nondebug",         // 4
    "-sccp",                   // 5
    "-globalopt",              // 6
    "-gvn",                    // 7
    "-jump-threading",         // 8
    "-globaldce",              // 9
    "-loop-unswitch",          // 10
    "-scalarrepl-ssa",         // 11
    "-loop-reduce",            // 12
    "-break-crit-edges",       // 13
    "-loop-deletion",          // 14
    "-reassociate",            // 15
    "-lcssa",                  // 16
    "-codegenprepare",         // 17
    "-memcpyopt",              // 18
    "-functionattrs",          // 19
    "-loop-idiom",             // 20
    "-lowerswitch",            // 21
    "-constmerge",             // 22
    "-loop-rotate",            // 23
    "-partial-inliner",        // 24
    "-inline",                 // 25
    "-early-cse",              // 26
    "-indvars",                // 27
    "-adce",                   // 28
    "-loop-simplify",          // 29
    "-instcombine",            // 30
    "-simplifycfg",            // 31
    "-dse",                    // 32
    "-loop-unroll",            // 33
    "-lower-expect",           // 34
    "-tailcallelim",           // 35
    "-licm",                   // 36
    "-sink",                   // 37
    "-mem2reg",                // 38
    "-prune-eh",               // 39
    "-functionattrs",          // 40
    "-ipsccp",                 // 41
    "-deadargelim",            // 42
    "-sroa",                   // 43
    "-loweratomic",            // 44
    "-terminate",              // 45
];

/// Number of real transform passes (excludes `-terminate`).
pub const NUM_PASSES: usize = 45;

/// Index of the `-terminate` pseudo-action.
pub const TERMINATE: PassId = 45;

/// Number of registry entries including `-terminate`.
pub fn pass_count() -> usize {
    PASS_NAMES.len()
}

/// Name of a pass by index.
///
/// # Panics
///
/// Panics if `id >= pass_count()`.
pub fn pass_name(id: PassId) -> &'static str {
    PASS_NAMES[id]
}

/// Module size (instructions) beyond which code-growing passes
/// (`-inline`, `-partial-inliner`, `-loop-unroll`, `-loop-idiom`,
/// `-loop-unswitch`) refuse to grow further — the analogue of LLVM's
/// inline/unroll cost thresholds, and what keeps arbitrary repeated
/// sequences (an RL agent will happily emit `-loop-unroll` 45 times)
/// compiling in bounded time.
pub const GROWTH_LIMIT: usize = 3_000;

/// Per-pass telemetry instruments, fetched once and cached for the
/// process lifetime (registry lookups are too slow for this path).
struct PassInstruments {
    apply_ns: Arc<telemetry::Histogram>,
    invocations: Arc<telemetry::Counter>,
    changed: Arc<telemetry::Counter>,
}

fn pass_instruments() -> &'static [PassInstruments] {
    static CELL: OnceLock<Vec<PassInstruments>> = OnceLock::new();
    CELL.get_or_init(|| {
        PASS_NAMES
            .iter()
            .map(|&name| PassInstruments {
                apply_ns: telemetry::histogram("pass.apply_ns", name),
                invocations: telemetry::counter("pass.invocations", name),
                changed: telemetry::counter("pass.changed", name),
            })
            .collect()
    })
}

/// Apply pass `id` to the module. Returns true if the module changed.
/// `-terminate` (45) and out-of-range ids are no-ops.
pub fn apply(m: &mut Module, id: PassId) -> bool {
    if !telemetry::enabled() {
        return run_pass(m, id);
    }
    let start = Instant::now();
    let changed = run_pass(m, id);
    if id < PASS_NAMES.len() {
        let ins = &pass_instruments()[id];
        ins.invocations.add(1);
        if changed {
            ins.changed.add(1);
        }
        ins.apply_ns.record(start.elapsed().as_nanos() as u64);
    }
    changed
}

/// The uninstrumented pass dispatch behind [`apply`].
fn run_pass(m: &mut Module, id: PassId) -> bool {
    let grows = matches!(id, 10 | 20 | 24 | 25 | 33);
    if grows && m.num_insts() > GROWTH_LIMIT {
        return false;
    }
    match id {
        0 => crate::correlated::run(m),
        1 => crate::sroa::run_scalarrepl(m),
        2 => crate::lowering::run_lowerinvoke(m),
        3 => crate::lowering::run_strip(m),
        4 => crate::lowering::run_strip_nondebug(m),
        5 => crate::sccp::run(m),
        6 => crate::globals::run_globalopt(m),
        7 => crate::gvn::run(m),
        8 => crate::jump_threading::run(m),
        9 => crate::globals::run_globaldce(m),
        10 => crate::loop_unswitch::run(m),
        11 => crate::sroa::run_scalarrepl_ssa(m),
        12 => crate::loop_reduce::run(m),
        13 => crate::lowering::run_break_crit_edges(m),
        14 => crate::loop_deletion::run(m),
        15 => crate::reassociate::run(m),
        16 => crate::lcssa::run(m),
        17 => crate::lowering::run_codegenprepare(m),
        18 => crate::memcpyopt::run(m),
        19 | 40 => crate::ipo::run_functionattrs(m),
        20 => crate::loop_idiom::run(m),
        21 => crate::lowering::run_lowerswitch(m),
        22 => crate::globals::run_constmerge(m),
        23 => crate::loop_rotate::run(m),
        24 => crate::inline::run_partial(m),
        25 => crate::inline::run(m),
        26 => crate::early_cse::run(m),
        27 => crate::indvars::run(m),
        28 => crate::adce::run(m),
        29 => crate::loop_simplify::run(m),
        30 => crate::instcombine::run(m),
        31 => crate::simplifycfg::run(m),
        32 => crate::dse::run(m),
        33 => crate::loop_unroll::run(m),
        34 => crate::lowering::run_lower_expect(m),
        35 => crate::tailcall::run(m),
        36 => crate::licm::run(m),
        37 => crate::sink::run(m),
        38 => crate::mem2reg::run(m),
        39 => crate::ipo::run_prune_eh(m),
        41 => crate::ipo::run_ipsccp(m),
        42 => crate::ipo::run_deadargelim(m),
        43 => crate::sroa::run(m),
        44 => crate::lowering::run_loweratomic(m),
        _ => false,
    }
}

/// Apply a whole sequence of passes; returns how many of them reported a
/// change. Records the sequence's total wall time
/// (`pass.apply_sequence_ns`) and a sequence count when telemetry is on.
pub fn apply_sequence(m: &mut Module, seq: &[PassId]) -> usize {
    let start = telemetry::maybe_now();
    let changed = seq.iter().filter(|&&p| apply(m, p)).count();
    telemetry::observe_since("pass.apply_sequence_ns", "", start);
    if start.is_some() {
        telemetry::incr("pass.sequences", "", 1);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::verify::verify_module;
    use autophase_ir::{BinOp, Type, Value};

    fn sample_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(10), |b, i| {
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, i);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn table1_has_46_entries() {
        assert_eq!(PASS_NAMES.len(), 46);
        assert_eq!(pass_name(23), "-loop-rotate");
        assert_eq!(pass_name(38), "-mem2reg");
        assert_eq!(pass_name(TERMINATE), "-terminate");
        assert_eq!(pass_name(19), pass_name(40));
    }

    #[test]
    fn every_pass_preserves_semantics_and_verifies() {
        let reference = sample_module();
        let expect = autophase_ir::interp::run_main(&reference, 100_000)
            .unwrap()
            .observable();
        for id in 0..pass_count() {
            let mut m = sample_module();
            apply(&mut m, id);
            verify_module(&m)
                .unwrap_or_else(|e| panic!("{} broke the verifier: {e}", pass_name(id)));
            let got = autophase_ir::interp::run_main(&m, 100_000)
                .unwrap()
                .observable();
            assert_eq!(got, expect, "{} changed behaviour", pass_name(id));
        }
    }

    #[test]
    fn terminate_is_noop() {
        let mut m = sample_module();
        assert!(!apply(&mut m, TERMINATE));
    }

    #[test]
    fn apply_sequence_counts_changes() {
        let mut m = sample_module();
        let n = apply_sequence(&mut m, &[38, 23, 33, 3]);
        assert!(n >= 2, "mem2reg and loop-rotate must both fire, got {n}");
    }
}
