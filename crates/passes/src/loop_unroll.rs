//! `-loop-unroll`: replicate loop bodies.
//!
//! Fully unrolls counted loops with a small constant trip count. The trip
//! count is recognized for canonical induction `i = φ(init, i + step)`
//! compared against a constant bound — the shape `-loop-rotate` (bottom
//! test) and `-indvars` (slt canonicalization) produce, which is why the
//! paper finds "-loop-unroll after -loop-rotate was much more useful than
//! the opposite order" (§4.2): a top-tested loop here is only unrolled
//! when its guard shape is still recognizable, while the rotated form
//! always is.

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::{find_loops, Loop};
use autophase_ir::{BinOp, BlockId, FuncId, Inst, InstId, Module, Opcode, Type, Value};
use std::collections::HashMap;

/// Maximum trip count fully unrolled.
pub const UNROLL_TRIP_LIMIT: i64 = 32;
/// Maximum number of instructions in the loop body to unroll.
pub const UNROLL_SIZE_LIMIT: usize = 64;

/// Run the pass. Returns true if any loop was unrolled.
pub fn run(m: &mut Module) -> bool {
    run_with_limits(m, UNROLL_TRIP_LIMIT, UNROLL_SIZE_LIMIT)
}

/// Run with explicit limits (`-loop-idiom` reuses this for init loops).
pub fn run_with_limits(m: &mut Module, trip_limit: i64, size_limit: usize) -> bool {
    util::for_each_function(m, |m, fid| {
        run_with_limits_filtered(m, fid, trip_limit, size_limit, |_, _| true)
    })
}

/// Per-function unrolling restricted to loops whose single block satisfies
/// `filter` (used by `-loop-idiom` to expand only fill loops).
pub fn run_with_limits_filtered(
    m: &mut Module,
    fid: FuncId,
    trip_limit: i64,
    size_limit: usize,
    filter: impl Fn(&autophase_ir::Function, BlockId) -> bool,
) -> bool {
    let mut changed = false;
    while unroll_once(m, fid, trip_limit, size_limit, &filter) {
        changed = true;
    }
    if changed {
        util::delete_dead(m, fid);
        crate::simplifycfg::run_on_function(m, fid);
    }
    changed
}

/// A recognized counted loop, bottom-tested (rotated form):
/// single block `L`: φs, body, `i_next = i + step`, `c = icmp pred i_next
/// bound`, `condbr c, L, exit` — or top-tested via the preheader guard.
struct CountedLoop {
    /// The loop's single block (header == latch).
    block: BlockId,
    /// Induction φ.
    iv: InstId,
    /// Number of iterations the body executes.
    trip: i64,
}

fn recognize(f: &autophase_ir::Function, cfg: &Cfg, l: &Loop) -> Option<CountedLoop> {
    // Single-block, bottom-tested loops only: header == latch.
    if l.blocks.len() != 1 {
        return None;
    }
    let block = l.header;
    if l.single_latch()? != block {
        return None;
    }
    let term = f.terminator(block)?;
    let Opcode::CondBr {
        cond: Value::Inst(cmp),
        then_bb,
        else_bb,
    } = f.inst(term).op
    else {
        return None;
    };
    let (back_is_then, _exit) = if then_bb == block {
        (true, else_bb)
    } else if else_bb == block {
        (false, then_bb)
    } else {
        return None;
    };
    let Opcode::ICmp(pred, Value::Inst(next_id), Value::ConstInt(_, bound)) = f.inst(cmp).op else {
        return None;
    };
    // next = iv + step
    let Opcode::Binary(BinOp::Add, Value::Inst(iv), Value::ConstInt(_, step)) = f.inst(next_id).op
    else {
        return None;
    };
    if step == 0 {
        return None;
    }
    let Opcode::Phi { incoming } = &f.inst(iv).op else {
        return None;
    };
    if incoming.len() != 2 {
        return None;
    }
    let preheader = l.entering_block(cfg)?;
    let init = incoming
        .iter()
        .find(|(p, _)| *p == preheader)
        .map(|(_, v)| *v)?;
    let from_latch = incoming
        .iter()
        .find(|(p, _)| *p == block)
        .map(|(_, v)| *v)?;
    if from_latch != Value::Inst(next_id) {
        return None;
    }
    let Value::ConstInt(_, init) = init else {
        return None;
    };

    // Simulate the trip count (bounded) — robust against any predicate.
    let ty = f.inst(iv).ty;
    let mut i = init;
    let mut trip = 0i64;
    loop {
        trip += 1;
        if trip > UNROLL_TRIP_LIMIT.max(1024) {
            return None;
        }
        let next = autophase_ir::fold::eval_binop(BinOp::Add, ty, i, step);
        let c = autophase_ir::fold::eval_icmp(pred, ty, next, bound);
        let continues = if back_is_then { c != 0 } else { c == 0 };
        if !continues {
            break;
        }
        i = next;
    }
    Some(CountedLoop { block, iv, trip })
}

/// Unroll a single loop anywhere in the module with default limits
/// (debug/ablation hook). No cleanup afterwards.
pub fn unroll_once_public(m: &mut Module) -> bool {
    let fids: Vec<FuncId> = m.func_ids().collect();
    for fid in fids {
        if unroll_once(m, fid, UNROLL_TRIP_LIMIT, UNROLL_SIZE_LIMIT, &|_, _| true) {
            return true;
        }
    }
    false
}

fn unroll_once(
    m: &mut Module,
    fid: FuncId,
    trip_limit: i64,
    size_limit: usize,
    filter: &impl Fn(&autophase_ir::Function, BlockId) -> bool,
) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loops = find_loops(f, &cfg, &dt);
    for l in &loops {
        let Some(cl) = recognize(f, &cfg, l) else {
            continue;
        };
        if cl.trip > trip_limit || !filter(f, cl.block) {
            continue;
        }
        let body_size = f.block(cl.block).insts.len();
        if body_size > size_limit || body_size * cl.trip as usize > 512 {
            continue;
        }
        // The loop may not contain calls that could recurse into this
        // function (cloned call sites are fine; recursion changes nothing).
        let preheader = l
            .entering_block(&cfg)
            .expect("recognized loop has an entering block");
        do_full_unroll(m.func_mut(fid), l, &cl, preheader);
        return true;
    }
    false
}

/// Replace the single-block loop with `trip` copies of its body chained
/// straight-line, then a jump to the exit.
fn do_full_unroll(f: &mut autophase_ir::Function, l: &Loop, cl: &CountedLoop, preheader: BlockId) {
    let block = cl.block;
    let term = f.terminator(block).expect("loop block has terminator");
    let exit = f
        .inst(term)
        .successors()
        .into_iter()
        .find(|&s| s != block)
        .expect("bottom-tested loop exits somewhere");

    // Current value of each φ (starts at init from preheader).
    let phis: Vec<InstId> = f
        .block(block)
        .insts
        .iter()
        .copied()
        .filter(|&i| f.inst(i).is_phi())
        .collect();
    let mut cur: HashMap<Value, Value> = HashMap::new();
    let mut next_of: HashMap<InstId, Value> = HashMap::new();
    for &phi in &phis {
        let Opcode::Phi { incoming } = &f.inst(phi).op else {
            unreachable!()
        };
        for (p, v) in incoming {
            if *p == preheader {
                cur.insert(Value::Inst(phi), *v);
            } else {
                next_of.insert(phi, *v);
            }
        }
    }
    let body: Vec<InstId> = f
        .block(block)
        .insts
        .iter()
        .copied()
        .filter(|&i| !f.inst(i).is_phi() && i != term)
        .collect();

    // Emit trip copies into a fresh straight-line block. `at_latch_map`
    // holds each value as of the *end of the final iteration* (φs still at
    // their final-iteration values — what a latch→exit edge observes);
    // `carry_map` holds the φs advanced to the next iteration's values.
    let flat = f.add_block();
    let mut carry_map: HashMap<Value, Value> = cur.clone();
    let mut at_latch_map: HashMap<Value, Value> = cur.clone();
    for _iter in 0..cl.trip {
        let mut iter_map = carry_map.clone();
        for &src in &body {
            let mut inst = f.inst(src).clone();
            util::remap_operands(&mut inst, &iter_map);
            let id = f.append_inst(flat, inst);
            iter_map.insert(Value::Inst(src), Value::Inst(id));
        }
        at_latch_map = iter_map.clone();
        // Advance φs (simultaneously: all reads use the pre-advance map).
        let mut advanced: HashMap<Value, Value> = HashMap::new();
        for &phi in &phis {
            let next = next_of
                .get(&phi)
                .copied()
                .unwrap_or(Value::Undef(f.inst(phi).ty));
            let next_now = *iter_map.get(&next).unwrap_or(&next);
            advanced.insert(Value::Inst(phi), next_now);
        }
        for (k, v) in advanced {
            iter_map.insert(k, v);
        }
        carry_map = iter_map;
    }
    let last_map = at_latch_map;
    f.append_inst(flat, Inst::new(Type::Void, Opcode::Br { target: exit }));

    // Rewire: preheader jumps to flat; exit φs and external uses read the
    // final values.
    if let Some(pt) = f.terminator(preheader) {
        f.inst_mut(pt).for_each_successor_mut(|s| {
            if *s == block {
                *s = flat;
            }
        });
    }
    // Exit φs: entry from `block` becomes entry from `flat` with the final
    // value of whatever it referenced.
    let exit_phis: Vec<InstId> = f
        .block(exit)
        .insts
        .iter()
        .copied()
        .filter(|&i| f.inst(i).is_phi())
        .collect();
    for phi in exit_phis {
        if let Opcode::Phi { incoming } = &mut f.inst_mut(phi).op {
            for (p, v) in incoming.iter_mut() {
                if *p == block {
                    *p = flat;
                    if let Some(nv) = last_map.get(v) {
                        *v = *nv;
                    }
                }
            }
        }
    }
    // External (non-exit-φ) uses of loop values: substitute final values.
    let mut final_subst: Vec<(Value, Value)> = Vec::new();
    for &phi in &phis {
        final_subst.push((
            Value::Inst(phi),
            *last_map
                .get(&Value::Inst(phi))
                .unwrap_or(&Value::Undef(f.inst(phi).ty)),
        ));
    }
    for &src in &body {
        if !f.inst(src).ty.is_void() {
            if let Some(v) = last_map.get(&Value::Inst(src)) {
                final_subst.push((Value::Inst(src), *v));
            }
        }
    }
    // Remove the loop block first so in-loop uses don't get clobbered.
    f.remove_block(block);
    for (from, to) in final_subst {
        f.replace_all_uses(from, to);
    }

    let _ = l;
    let _ = cl.iv;
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::{run_function, run_main};
    use autophase_ir::loops::analyze_loops;
    use autophase_ir::verify::assert_verified;

    /// Build a rotated (single-block, bottom-tested) loop summing i.
    fn rotated_sum(n: i32) -> Module {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(n), |b, i| {
            let c = b.load(Type::I32, acc);
            let s = b.binary(BinOp::Add, c, i);
            b.store(acc, s);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        // Rotate to single-block form first.
        crate::loop_rotate::run(&mut m);
        m
    }

    #[test]
    fn full_unroll_of_rotated_loop() {
        let mut m = rotated_sum(8);
        let before = run_main(&m, 100_000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
        assert_eq!(before, Some(28));
        // No loops remain.
        let f = m.func(m.main().unwrap());
        let (_, _, loops) = analyze_loops(f);
        assert!(
            loops.is_empty(),
            "{}",
            autophase_ir::printer::print_module(&m)
        );
    }

    #[test]
    fn unrolled_loop_runs_fewer_dynamic_branches() {
        let mut m = rotated_sum(16);
        let before = run_main(&m, 100_000).unwrap();
        assert!(run(&mut m));
        let after = run_main(&m, 100_000).unwrap();
        let blocks = |t: &autophase_ir::interp::ExecTrace| -> u64 { t.block_counts.values().sum() };
        assert!(blocks(&after) < blocks(&before));
    }

    #[test]
    fn big_trip_count_not_unrolled() {
        let mut m = rotated_sum(1000);
        assert!(!run(&mut m));
    }

    #[test]
    fn unrotated_loop_not_unrolled_but_rotate_enables_it() {
        // This is the paper's ordering interaction in miniature.
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(6), |b, i| {
            let c = b.load(Type::I32, acc);
            let s = b.binary(BinOp::Add, c, i);
            b.store(acc, s);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        // Top-tested two-block loop: unroll refuses.
        assert!(!run(&mut m));
        // After rotation it unrolls.
        assert!(crate::loop_rotate::run(&mut m));
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().return_value, Some(15));
    }

    #[test]
    fn induction_value_used_after_loop_gets_final_value() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let mut iv = Value::i32(0);
        b.counted_loop(Value::i32(5), |_b, i| {
            iv = i;
        });
        let r = b.binary(BinOp::Mul, iv, Value::i32(10));
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        crate::loop_rotate::run(&mut m);
        let before = run_main(&m, 100_000).unwrap().observable();
        run(&mut m);
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
    }

    #[test]
    fn memory_effects_replicated_in_order() {
        // Writes to distinct slots must all survive with correct values.
        let mut m = Module::new("t");
        let g = m.add_global(autophase_ir::Global::zeroed("out", Type::I32, 8));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.counted_loop(Value::i32(8), |b, i| {
            let p = b.gep(Value::Global(g), i);
            let v = b.binary(BinOp::Mul, i, i);
            b.store(p, v);
        });
        // checksum the slots into the return value
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(8), |b, i| {
            let p = b.gep(Value::Global(g), i);
            let v = b.load(Type::I32, p);
            let c = b.load(Type::I32, acc);
            let x = b.binary(BinOp::Xor, c, v);
            let s = b.binary(BinOp::Shl, x, Value::i32(1));
            b.store(acc, s);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        m.add_function(b.finish());
        crate::loop_rotate::run(&mut m);
        let before = run_main(&m, 100_000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
    }

    #[test]
    fn run_function_arg_bound_not_unrolled() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, i| {
            let c = b.load(Type::I32, acc);
            let s = b.binary(BinOp::Add, c, i);
            b.store(acc, s);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        crate::loop_rotate::run(&mut m);
        assert!(!run(&mut m));
        let r = run_function(&m, m.main().unwrap(), &[4], 100_000).unwrap();
        assert_eq!(r.return_value, Some(6));
    }
}
