//! `-gvn`: global value numbering.
//!
//! Dominator-tree scoped CSE: walking the dominator tree top-down, a pure
//! computation is replaced by an equivalent one already available in a
//! dominating block. Loads are also numbered, invalidated at any
//! may-alias store or non-`readnone` call along the walk (conservatively:
//! a block containing any store/call clears load availability for its
//! subtree successors computed after it).

use crate::early_cse::expr_key;
use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::{BlockId, FuncId, InstId, Module, Opcode, Value};
use std::collections::HashMap;

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let changed = gvn_function(m, fid);
        if changed {
            util::delete_dead(m, fid);
        }
        changed
    })
}

type Scope = HashMap<crate::early_cse::ExprKey, InstId>;
type LoadScope = HashMap<Value, Value>;

fn gvn_function(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let mut changed = false;

    // DFS over the dominator tree carrying scoped maps (persistent via
    // cloning; functions are small enough for this to be cheap).
    let mut stack: Vec<(BlockId, Scope, LoadScope)> =
        vec![(f.entry, Scope::new(), LoadScope::new())];
    while let Some((bb, mut scope, mut loads)) = stack.pop() {
        let insts: Vec<InstId> = m.func(fid).block(bb).insts.clone();
        for iid in insts {
            if !m.func(fid).inst_exists(iid) {
                continue;
            }
            let inst = m.func(fid).inst(iid).clone();
            match &inst.op {
                Opcode::Load { ptr } => {
                    if let Some(&known) = loads.get(ptr) {
                        let fm = m.func_mut(fid);
                        fm.replace_all_uses(Value::Inst(iid), known);
                        fm.remove_inst(bb, iid);
                        changed = true;
                    } else {
                        loads.insert(*ptr, Value::Inst(iid));
                    }
                }
                Opcode::Store { ptr, value } => {
                    let fr = m.func(fid);
                    let keys: Vec<Value> = loads.keys().copied().collect();
                    for k in keys {
                        if util::may_alias(fr, k, *ptr) {
                            loads.remove(&k);
                        }
                    }
                    loads.insert(*ptr, *value);
                }
                Opcode::Call { .. } => {
                    if !util::is_pure(m, &inst) {
                        loads.clear();
                    }
                }
                _ => {
                    if util::is_pure_no_read(m, &inst) && !inst.ty.is_void() {
                        if let Some(key) = expr_key(&inst) {
                            if let Some(&prev) = scope.get(&key) {
                                let fm = m.func_mut(fid);
                                fm.replace_all_uses(Value::Inst(iid), Value::Inst(prev));
                                fm.remove_inst(bb, iid);
                                changed = true;
                            } else {
                                scope.insert(key, iid);
                            }
                        }
                    }
                }
            }
        }
        let children = dt.children(bb);
        // A dominated block may be reached along paths containing stores
        // this walk has not seen (join points, loop back edges). Load
        // availability is only propagated to children whose unique CFG
        // predecessor is the current block — there the memory state at
        // entry provably equals the state at the end of `bb`. Pure
        // expression availability is path-independent and always flows.
        for child in children {
            let preds = cfg.unique_preds(child);
            let load_env = if preds == vec![bb] {
                loads.clone()
            } else {
                LoadScope::new()
            };
            stack.push((child, scope.clone(), load_env));
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, CmpPred, Type};

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn cross_block_expression_merged() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let next = b.new_block();
        let x = b.binary(BinOp::Add, b.arg(0), Value::i32(3));
        b.br(next);
        b.switch_to(next);
        let y = b.binary(BinOp::Add, b.arg(0), Value::i32(3));
        let s = b.binary(BinOp::Mul, x, y);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 4); // add, br, mul, ret
    }

    #[test]
    fn branch_arms_not_merged_across() {
        // Expressions in sibling branches do not dominate each other.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let x = b.binary(BinOp::Add, b.arg(0), Value::i32(3));
        b.ret(Some(x));
        b.switch_to(e);
        let y = b.binary(BinOp::Add, b.arg(0), Value::i32(3));
        b.ret(Some(y));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn load_forwarded_across_blocks_when_safe() {
        let mut b = FunctionBuilder::new("main", vec![Type::Ptr], Type::I32);
        let next = b.new_block();
        let v1 = b.load(Type::I32, b.arg(0));
        b.br(next);
        b.switch_to(next);
        let v2 = b.load(Type::I32, b.arg(0));
        let s = b.binary(BinOp::Add, v1, v2);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        let f = m.func(m.main().unwrap());
        let loads = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter(|&i| matches!(f.inst(i).op, Opcode::Load { .. }))
            .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn store_in_sibling_branch_blocks_load_merge_at_join() {
        // entry: load p; branch; then: store p; join: load p must remain.
        let mut b = FunctionBuilder::new("main", vec![Type::Ptr, Type::I32], Type::I32);
        let t = b.new_block();
        let j = b.new_block();
        let v1 = b.load(Type::I32, b.arg(0));
        let c = b.icmp(CmpPred::Ne, b.arg(1), Value::i32(0));
        b.cond_br(c, t, j);
        b.switch_to(t);
        b.store(b.arg(0), Value::i32(9));
        b.br(j);
        b.switch_to(j);
        let v2 = b.load(Type::I32, b.arg(0));
        let s = b.binary(BinOp::Add, v1, v2);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        run(&mut m);
        assert_verified(&m);
        let f = m.func(m.main().unwrap());
        let loads = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter(|&i| matches!(f.inst(i).op, Opcode::Load { .. }))
            .count();
        assert_eq!(loads, 2, "join load must not be forwarded past a store");
    }

    #[test]
    fn semantics_preserved_on_loop() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(5), |b, i| {
            let a = b.binary(BinOp::Mul, i, Value::i32(3));
            let c = b.binary(BinOp::Mul, i, Value::i32(3)); // redundant
            let cur = b.load(Type::I32, acc);
            let t = b.binary(BinOp::Add, a, c);
            let n = b.binary(BinOp::Add, cur, t);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        let before = run_main(&m, 100_000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
    }
}
