//! Interprocedural passes: `-functionattrs`, `-deadargelim`, `-ipsccp`,
//! `-prune-eh`.

use crate::sccp;
use crate::util;
use autophase_ir::{FuncId, InstId, Module, Opcode, Value};
use std::collections::HashMap;

/// `-functionattrs`: infer `readonly` / `readnone` bottom-up over the call
/// graph. A function is `readnone` if it performs no loads, stores, or
/// allocas and only calls `readnone` functions; `readonly` additionally
/// permits loads. Returns true if any attribute changed.
pub fn run_functionattrs(m: &mut Module) -> bool {
    let mut changed = false;
    // Fixpoint (call graphs are tiny).
    loop {
        let mut local = false;
        for fid in m.func_ids().collect::<Vec<_>>() {
            let f = m.func(fid);
            let mut writes = false;
            let mut reads = false;
            // Memory ops on provably-local allocations (pointer roots to an
            // alloca whose address never escapes through a call or store)
            // are invisible to callers — LLVM's functionattrs reasons the
            // same way about non-escaping local memory.
            let escaping = local_allocas_escape(f);
            for bb in f.block_ids() {
                for (_, inst) in f.insts_in(bb) {
                    match &inst.op {
                        Opcode::Store { ptr, .. } if (escaping || !is_local_root(f, *ptr)) => {
                            writes = true;
                        }
                        Opcode::Load { ptr } if (escaping || !is_local_root(f, *ptr)) => {
                            reads = true;
                        }
                        Opcode::Call { callee, .. } => {
                            if *callee == fid {
                                continue; // self-calls inherit our own effect
                            }
                            if !m.func_exists(*callee) {
                                writes = true;
                                reads = true;
                            } else {
                                let a = m.func(*callee).attrs;
                                if !a.readnone {
                                    reads = true;
                                }
                                if !a.readonly && !a.readnone {
                                    writes = true;
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            let readnone = !reads && !writes;
            let readonly = !writes;
            let attrs = m.func(fid).attrs;
            if attrs.readnone != readnone || attrs.readonly != readonly {
                let a = &mut m.func_mut(fid).attrs;
                a.readnone = readnone;
                a.readonly = readonly;
                local = true;
            }
        }
        changed |= local;
        if !local {
            return changed;
        }
    }
}

/// True if the value's pointer root is a local alloca of `f`.
fn is_local_root(f: &autophase_ir::Function, ptr: Value) -> bool {
    matches!(
        crate::util::pointer_root(f, ptr),
        Some(Value::Inst(id)) if matches!(f.inst(id).op, Opcode::Alloca { .. })
    )
}

/// Conservative escape check: any alloca-rooted pointer passed to a call
/// or stored *as data* may be observed elsewhere; treat all local memory
/// as caller-visible in that case.
fn local_allocas_escape(f: &autophase_ir::Function) -> bool {
    for bb in f.block_ids() {
        for (_, inst) in f.insts_in(bb) {
            match &inst.op {
                Opcode::Store { value, .. } if is_local_root(f, *value) => {
                    return true;
                }
                Opcode::Call { args, .. } if args.iter().any(|&a| is_local_root(f, a)) => {
                    return true;
                }
                _ => {}
            }
        }
    }
    false
}

/// `-deadargelim`: remove parameters of internal functions that no body
/// instruction reads, dropping the matching argument at every call site.
/// Returns true if any parameter was removed.
pub fn run_deadargelim(m: &mut Module) -> bool {
    let mut changed = false;
    for fid in m.func_ids().collect::<Vec<_>>() {
        let f = m.func(fid);
        if f.name == "main" || f.params.is_empty() {
            continue;
        }
        let n = f.params.len();
        let mut used = vec![false; n];
        for bb in f.block_ids() {
            for (_, inst) in f.insts_in(bb) {
                inst.for_each_operand(|v| {
                    if let Value::Arg(i) = v {
                        if (i as usize) < n {
                            used[i as usize] = true;
                        }
                    }
                });
            }
        }
        if used.iter().all(|&u| u) {
            continue;
        }
        // Remap old arg index → new arg index.
        let mut remap: Vec<Option<u32>> = Vec::with_capacity(n);
        let mut next = 0u32;
        for &u in &used {
            remap.push(if u {
                let i = next;
                next += 1;
                Some(i)
            } else {
                None
            });
        }
        // Rewrite the function signature and its own arg uses.
        let f = m.func_mut(fid);
        f.params = f
            .params
            .iter()
            .zip(&used)
            .filter(|(_, &u)| u)
            .map(|(t, _)| *t)
            .collect();
        for bb in f.block_ids().collect::<Vec<_>>() {
            let ids: Vec<InstId> = f.block(bb).insts.clone();
            for iid in ids {
                f.inst_mut(iid).for_each_operand_mut(|v| {
                    if let Value::Arg(i) = *v {
                        if let Some(Some(ni)) = remap.get(i as usize) {
                            *v = Value::Arg(*ni);
                        }
                    }
                });
            }
        }
        // Rewrite every call site in the module.
        for caller in m.func_ids().collect::<Vec<_>>() {
            let cf = m.func_mut(caller);
            for bb in cf.block_ids().collect::<Vec<_>>() {
                let ids: Vec<InstId> = cf.block(bb).insts.clone();
                for iid in ids {
                    if let Opcode::Call { callee, args } = &mut cf.inst_mut(iid).op {
                        if *callee == fid {
                            let mut new_args = Vec::new();
                            for (a, &u) in args.iter().zip(&used) {
                                if u {
                                    new_args.push(*a);
                                }
                            }
                            *args = new_args;
                        }
                    }
                }
            }
        }
        changed = true;
    }
    changed
}

/// `-ipsccp`: interprocedural SCCP. For each non-`main` function whose call
/// sites all pass the same constant for a parameter, solve SCCP with that
/// parameter pinned; then run plain SCCP everywhere. Returns true on change.
pub fn run_ipsccp(m: &mut Module) -> bool {
    let mut changed = false;
    // Gather constant arguments per function.
    let mut const_args: HashMap<FuncId, HashMap<u32, i64>> = HashMap::new();
    let mut seen_any: HashMap<FuncId, Vec<Option<Option<i64>>>> = HashMap::new();
    for caller in m.func_ids() {
        let f = m.func(caller);
        for bb in f.block_ids() {
            for (_, inst) in f.insts_in(bb) {
                if let Opcode::Call { callee, args } = &inst.op {
                    let entry = seen_any
                        .entry(*callee)
                        .or_insert_with(|| vec![None; args.len()]);
                    for (i, a) in args.iter().enumerate() {
                        let c = a.as_const_int();
                        if i >= entry.len() {
                            entry.resize(i + 1, None);
                        }
                        entry[i] = match (entry[i], c) {
                            (None, c) => Some(c),
                            (Some(Some(prev)), Some(cur)) if prev == cur => Some(Some(prev)),
                            _ => Some(None),
                        };
                    }
                }
            }
        }
    }
    for (fid, slots) in seen_any {
        if !m.func_exists(fid) || m.func(fid).name == "main" {
            continue;
        }
        let mut pinned = HashMap::new();
        for (i, s) in slots.iter().enumerate() {
            if let Some(Some(c)) = s {
                pinned.insert(i as u32, *c);
            }
        }
        if !pinned.is_empty() {
            const_args.insert(fid, pinned);
        }
    }
    for fid in m.func_ids().collect::<Vec<_>>() {
        let pins = const_args.remove(&fid).unwrap_or_default();
        // A pinned parameter is the same constant at every call site:
        // substitute it into the body outright, then let SCCP cascade.
        if !pins.is_empty() {
            let f = m.func_mut(fid);
            for (&i, &c) in &pins {
                let ty = f
                    .params
                    .get(i as usize)
                    .copied()
                    .unwrap_or(autophase_ir::Type::I64);
                if !ty.is_int() {
                    continue;
                }
                if f.replace_all_uses(Value::Arg(i), Value::ConstInt(ty, ty.wrap(c))) > 0 {
                    changed = true;
                }
            }
        }
        let sol = sccp::solve(m, fid, &pins);
        changed |= sccp::apply_solution(m, fid, &sol);
    }
    changed
}

/// `-prune-eh`: with no exceptions in this IR, the profitable fragment is
/// pruning branches into `unreachable`-terminated blocks (LLVM's pass also
/// cleans these up while removing dead invoke paths). A conditional branch
/// with one arm provably unreachable becomes an unconditional branch.
/// Returns true on change.
pub fn run_prune_eh(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let f = m.func(fid);
        let mut edits: Vec<(InstId, autophase_ir::BlockId)> = Vec::new();
        for bb in f.block_ids() {
            let Some(term) = f.terminator(bb) else {
                continue;
            };
            let Opcode::CondBr {
                then_bb, else_bb, ..
            } = f.inst(term).op
            else {
                continue;
            };
            let is_trap = |b: autophase_ir::BlockId| {
                f.block(b).insts.len() == 1
                    && matches!(
                        f.terminator(b).map(|t| &f.inst(t).op),
                        Some(Opcode::Unreachable)
                    )
            };
            if is_trap(then_bb) && !is_trap(else_bb) {
                edits.push((term, else_bb));
            } else if is_trap(else_bb) && !is_trap(then_bb) {
                edits.push((term, then_bb));
            }
        }
        if edits.is_empty() {
            return false;
        }
        let f = m.func_mut(fid);
        for (term, target) in edits {
            f.inst_mut(term).op = Opcode::Br { target };
        }
        crate::simplifycfg::run_on_function(m, fid);
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, CmpPred, Type};

    #[test]
    fn functionattrs_infers_readnone_chain() {
        let mut m = Module::new("t");
        let leaf = {
            let mut b = FunctionBuilder::new("leaf", vec![Type::I32], Type::I32);
            let r = b.binary(BinOp::Mul, b.arg(0), Value::i32(2));
            b.ret(Some(r));
            m.add_function(b.finish())
        };
        let mid = {
            let mut b = FunctionBuilder::new("mid", vec![Type::I32], Type::I32);
            let r = b.call(leaf, Type::I32, vec![b.arg(0)]);
            b.ret(Some(r));
            m.add_function(b.finish())
        };
        assert!(run_functionattrs(&mut m));
        assert!(m.func(leaf).attrs.readnone);
        assert!(m.func(mid).attrs.readnone);
    }

    #[test]
    fn functionattrs_readonly_for_loader() {
        let mut m = Module::new("t");
        let g = m.add_global(autophase_ir::Global::zeroed("g", Type::I32, 1));
        let reader = {
            let mut b = FunctionBuilder::new("reader", vec![], Type::I32);
            let v = b.load(Type::I32, Value::Global(g));
            b.ret(Some(v));
            m.add_function(b.finish())
        };
        let writer = {
            let mut b = FunctionBuilder::new("writer", vec![], Type::Void);
            b.store(Value::Global(g), Value::i32(1));
            b.ret(None);
            m.add_function(b.finish())
        };
        run_functionattrs(&mut m);
        assert!(m.func(reader).attrs.readonly);
        assert!(!m.func(reader).attrs.readnone);
        assert!(!m.func(writer).attrs.readonly);
    }

    #[test]
    fn deadargelim_drops_unused_params() {
        let mut m = Module::new("t");
        let callee = {
            let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32, Type::I32], Type::I32);
            // only arg1 is used
            let r = b.binary(BinOp::Add, b.arg(1), Value::i32(1));
            b.ret(Some(r));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let r = b.call(
            callee,
            Type::I32,
            vec![Value::i32(10), Value::i32(20), Value::i32(30)],
        );
        b.ret(Some(r));
        m.add_function(b.finish());
        let before = run_main(&m, 1000).unwrap().observable();
        assert!(run_deadargelim(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 1000).unwrap().observable(), before);
        assert_eq!(m.func(callee).params.len(), 1);
        assert_eq!(before, Some(21));
    }

    #[test]
    fn ipsccp_propagates_uniform_constant_args() {
        let mut m = Module::new("t");
        let callee = {
            let mut b = FunctionBuilder::new("scale", vec![Type::I32, Type::I32], Type::I32);
            let r = b.binary(BinOp::Mul, b.arg(0), b.arg(1));
            b.ret(Some(r));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        // arg1 is always 4 at every call site
        let x = b.call(callee, Type::I32, vec![b.arg(0), Value::i32(4)]);
        let y = b.call(callee, Type::I32, vec![Value::i32(3), Value::i32(4)]);
        let s = b.binary(BinOp::Add, x, y);
        b.ret(Some(s));
        m.add_function(b.finish());
        assert!(run_ipsccp(&mut m));
        assert_verified(&m);
        // Inside scale, arg(1) uses were replaced by 4 → mul by const.
        let f = m.func(callee);
        let uses_arg1 = f.block_ids().any(|bb| {
            f.block(bb).insts.iter().any(|&i| {
                let mut used = false;
                f.inst(i).for_each_operand(|v| used |= v == Value::Arg(1));
                used
            })
        });
        assert!(!uses_arg1);
    }

    #[test]
    fn prune_eh_removes_trap_arm() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let trap = b.new_block();
        let ok = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, trap, ok);
        b.switch_to(trap);
        b.unreachable();
        b.switch_to(ok);
        b.ret(Some(Value::i32(1)));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        assert!(run_prune_eh(&mut m));
        assert_verified(&m);
        assert_eq!(m.func(m.main().unwrap()).num_blocks(), 1);
    }
}
