//! `-memcpyopt`: memory-transfer optimization.
//!
//! Our IR has no `memcpy` intrinsic, so the profitable fragment of this
//! pass here is constant-memory forwarding: a load from a constant global
//! at a constant index is replaced by the initializer value. (LLVM's
//! memcpyopt similarly turns copies from constants into direct values.)

use crate::util;
use autophase_ir::{FuncId, InstId, Module, Opcode, Type, Value};

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let changed = fold_const_loads(m, fid);
        if changed {
            util::delete_dead(m, fid);
        }
        changed
    })
}

/// Resolve `load (gep @const_global, C)` and `load @const_global` to the
/// initializer element. Shared with `-globalopt`.
pub(crate) fn fold_const_loads(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let mut rewrites: Vec<(InstId, Value)> = Vec::new();
    for bb in f.block_ids() {
        for &iid in &f.block(bb).insts {
            let Opcode::Load { ptr } = f.inst(iid).op else {
                continue;
            };
            let load_ty = f.inst(iid).ty;
            if !load_ty.is_int() {
                continue;
            }
            let (gid, index) = match ptr {
                Value::Global(g) => (g, 0i64),
                Value::Inst(p) => match f.inst(p).op {
                    Opcode::Gep {
                        ptr: Value::Global(g),
                        index: Value::ConstInt(_, c),
                    } => (g, c),
                    _ => continue,
                },
                _ => continue,
            };
            let g = m.global(gid);
            if !g.is_const {
                continue;
            }
            if index < 0 || index >= g.count as i64 {
                continue; // out-of-bounds reads stay dynamic (they yield 0,
                          // but keep the conservative path exercised)
            }
            // The memory cell holds the raw initializer; a load wraps it to
            // the load type, exactly like `Type::wrap`.
            let raw = g.init_at(index as usize);
            rewrites.push((iid, Value::ConstInt(load_ty, load_ty.wrap(raw))));
        }
    }
    if rewrites.is_empty() {
        return false;
    }
    let f = m.func_mut(fid);
    for (iid, v) in rewrites {
        f.replace_all_uses(Value::Inst(iid), v);
        if let Some(bb) = f.block_of(iid) {
            f.remove_inst(bb, iid);
        }
    }
    true
}

/// Loads folded in a module if every function were processed (query used
/// by tests).
pub fn foldable_loads(m: &Module) -> usize {
    let mut n = 0;
    for fid in m.func_ids() {
        let f = m.func(fid);
        for bb in f.block_ids() {
            for (_, inst) in f.insts_in(bb) {
                if let Opcode::Load { ptr } = inst.op {
                    let gid = match ptr {
                        Value::Global(g) => Some(g),
                        Value::Inst(p) => match f.inst(p).op {
                            Opcode::Gep {
                                ptr: Value::Global(g),
                                index: Value::ConstInt(..),
                            } => Some(g),
                            _ => None,
                        },
                        _ => None,
                    };
                    if let Some(g) = gid {
                        if m.global(g).is_const && inst.ty != Type::Ptr {
                            n += 1;
                        }
                    }
                }
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::module::Global;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::BinOp;

    #[test]
    fn const_table_load_folded() {
        let mut m = Module::new("t");
        let g = m.add_global(Global::constant("tbl", Type::I32, vec![10, 20, 30]));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.gep(Value::Global(g), Value::i32(1));
        let v = b.load(Type::I32, p);
        let w = b.binary(BinOp::Add, v, Value::i32(1));
        b.ret(Some(w));
        m.add_function(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(21));
        let f = m.func(m.main().unwrap());
        assert_eq!(f.num_insts(), 2); // add + ret (gep and load folded away)
    }

    #[test]
    fn direct_global_load_folded() {
        let mut m = Module::new("t");
        let g = m.add_global(Global::constant("one", Type::I32, vec![77]));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let v = b.load(Type::I32, Value::Global(g));
        b.ret(Some(v));
        m.add_function(b.finish());
        assert!(run(&mut m));
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(77));
    }

    #[test]
    fn mutable_global_untouched() {
        let mut m = Module::new("t");
        let g = m.add_global(Global::zeroed("buf", Type::I32, 4));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.gep(Value::Global(g), Value::i32(0));
        b.store(p, Value::i32(5));
        let v = b.load(Type::I32, p);
        b.ret(Some(v));
        m.add_function(b.finish());
        assert!(!run(&mut m));
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(5));
    }

    #[test]
    fn dynamic_index_untouched() {
        let mut m = Module::new("t");
        let g = m.add_global(Global::constant("tbl", Type::I32, vec![1, 2, 3, 4]));
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let p = b.gep(Value::Global(g), b.arg(0));
        let v = b.load(Type::I32, p);
        b.ret(Some(v));
        m.add_function(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn narrow_load_wraps_initializer() {
        let mut m = Module::new("t");
        let g = m.add_global(Global::constant("tbl", Type::I8, vec![300]));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let v = b.load(Type::I8, Value::Global(g));
        let w = b.cast(autophase_ir::CastOp::SExt, Type::I32, v);
        b.ret(Some(w));
        m.add_function(b.finish());
        let before = run_main(&m, 100).unwrap().return_value;
        assert!(run(&mut m));
        assert_eq!(run_main(&m, 100).unwrap().return_value, before);
        assert_eq!(before, Some(44)); // 300 wrapped to i8
    }
}
