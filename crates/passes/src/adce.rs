//! `-adce`: aggressive dead-code elimination.
//!
//! Mark-and-sweep over each function: roots are instructions with side
//! effects (stores, non-`readnone` calls, terminators); everything not
//! transitively required by a root is deleted. Unlike trivial DCE this
//! kills dead φ-cycles in one shot.

use crate::util;
use autophase_ir::{FuncId, InstId, Module, Value};
use std::collections::HashSet;

/// Run the pass. Returns true if anything was removed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, sweep_function)
}

fn sweep_function(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let mut live: HashSet<InstId> = HashSet::new();
    let mut work: Vec<InstId> = Vec::new();

    for bb in f.block_ids() {
        for &iid in &f.block(bb).insts {
            let inst = f.inst(iid);
            let rooted = inst.is_terminator() || !util::is_pure(m, inst);
            if rooted && live.insert(iid) {
                work.push(iid);
            }
        }
    }
    while let Some(iid) = work.pop() {
        f.inst(iid).for_each_operand(|v| {
            if let Value::Inst(dep) = v {
                if f.inst_exists(dep) && live.insert(dep) {
                    work.push(dep);
                }
            }
        });
    }

    let mut victims: Vec<(autophase_ir::BlockId, InstId)> = Vec::new();
    let mut dead: std::collections::HashSet<InstId> = std::collections::HashSet::new();
    for bb in f.block_ids() {
        for &iid in &f.block(bb).insts {
            if !live.contains(&iid) {
                victims.push((bb, iid));
                dead.insert(iid);
            }
        }
    }
    if victims.is_empty() {
        return false;
    }
    let f = m.func_mut(fid);
    // Break operand references among dead instructions first (φ-cycles) —
    // one sweep over the dead set, not one whole-function pass per victim.
    for &(_, iid) in &victims {
        let ty = f.inst(iid).ty;
        f.inst_mut(iid).for_each_operand_mut(|v| {
            if let Value::Inst(dep) = *v {
                if dead.contains(&dep) {
                    *v = Value::Undef(ty);
                }
            }
        });
    }
    for (bb, iid) in victims {
        f.remove_inst(bb, iid);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, Type};

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn removes_dead_phi_cycle() {
        // A loop-carried φ feeding only itself (plus an add) is dead.
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(5), |b, _i| {
            // dead chain: d = d_prev * 3 through a φ — emulate via alloca-free φ
            let x = b.binary(BinOp::Mul, Value::i32(3), Value::i32(3));
            let _dead = b.binary(BinOp::Add, x, Value::i32(1));
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        let n_before = m.num_insts();
        assert!(run(&mut m));
        assert_verified(&m);
        assert!(m.num_insts() < n_before);
    }

    #[test]
    fn keeps_stores_and_their_inputs() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 1);
        let v = b.binary(BinOp::Add, Value::i32(1), Value::i32(2));
        b.store(p, v);
        let r = b.load(Type::I32, p);
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m)); // everything is live
        assert_eq!(m.num_insts(), 5);
    }

    #[test]
    fn dead_call_to_readnone_removed() {
        let mut m = Module::new("t");
        let callee = {
            let mut b = FunctionBuilder::new("pure_fn", vec![], Type::I32);
            b.ret(Some(Value::i32(1)));
            m.add_function(b.finish())
        };
        m.func_mut(callee).attrs.readnone = true;
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let _unused = b.call(callee, Type::I32, vec![]);
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        assert!(run(&mut m));
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 1);
    }

    #[test]
    fn dead_call_without_attrs_kept() {
        let mut m = Module::new("t");
        let callee = {
            let mut b = FunctionBuilder::new("opaque_fn", vec![], Type::I32);
            b.ret(Some(Value::i32(1)));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let _unused = b.call(callee, Type::I32, vec![]);
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn semantics_preserved() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(2));
        b.counted_loop(Value::i32(4), |b, i| {
            let dead = b.binary(BinOp::Mul, i, i);
            let _dead2 = b.binary(BinOp::Add, dead, Value::i32(7));
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Mul, c, Value::i32(2));
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        let before = autophase_ir::interp::run_main(&m, 100_000)
            .unwrap()
            .observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(
            autophase_ir::interp::run_main(&m, 100_000)
                .unwrap()
                .observable(),
            before
        );
    }
}
