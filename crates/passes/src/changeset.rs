//! Function-granular change tracking for incremental evaluation.
//!
//! Every pass application can report a [`ChangeSet`]: which function slots
//! it actually rewrote, whether it added/removed functions or globals, and
//! whether any signature changed. Downstream consumers (per-function
//! feature caches, schedule caches, fingerprint memos, the dirty-only
//! verifier) use this to touch only what changed.
//!
//! Correctness never depends on pass honesty: the tracker derives the
//! change set from the module itself. [`ChangeTracker::before`] snapshots
//! the COW arenas as shared `Arc` handles — which forces every subsequent
//! `func_mut`/`global_mut` on the module to clone-on-write into a fresh
//! allocation — and [`ChangeTracker::diff`] then finds touched slots with
//! `Arc::ptr_eq` and refines pointer-moved-but-content-identical slots
//! (a pass that wrote and then reverted) by structural comparison, which
//! is equivalent to comparing per-function content fingerprints but skips
//! printing. The result is an exact dirty set at O(#slots) pointer
//! compares plus O(|touched|) content compares.

use crate::registry::{self, PassId};
use autophase_ir::module::{FuncId, Global, GlobalId};
use autophase_ir::{Function, Module};
use std::sync::Arc;

/// What one pass application changed, at function/global granularity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChangeSet {
    /// Live functions whose bodies (or signatures) differ from the
    /// pre-pass module. Sorted by slot index.
    pub dirty_funcs: Vec<FuncId>,
    /// A function slot was added or removed (`-inline` dropping a callee,
    /// `-partial-inliner` outlining a new function, `-globaldce`).
    pub structural_funcs: bool,
    /// Live globals whose contents differ from the pre-pass module.
    pub dirty_globals: Vec<GlobalId>,
    /// A global slot was added or removed.
    pub structural_globals: bool,
    /// Some dirty function's externally visible signature (name, params,
    /// return type) changed — callers of it may now be stale even though
    /// their own slots are clean (`-deadargelim`).
    pub sig_changed: bool,
}

impl ChangeSet {
    /// A change set that touches nothing.
    pub fn empty() -> ChangeSet {
        ChangeSet::default()
    }

    /// Conservative "everything changed" set for `m` — the correct answer
    /// when no tracker was active (e.g. replaying an untracked mutation).
    pub fn full(m: &Module) -> ChangeSet {
        ChangeSet {
            dirty_funcs: m.func_ids().collect(),
            structural_funcs: true,
            dirty_globals: m.global_ids().collect(),
            structural_globals: true,
            sig_changed: true,
        }
    }

    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.dirty_funcs.is_empty()
            && !self.structural_funcs
            && self.dirty_globals.is_empty()
            && !self.structural_globals
            && !self.sig_changed
    }

    /// True if per-function incrementality is unsound and consumers must
    /// fall back to whole-module work: slots appeared/disappeared or a
    /// signature changed, so *clean* functions may reference stale ids or
    /// types (a clean caller of a removed or re-signatured callee).
    pub fn needs_full_rebuild(&self) -> bool {
        self.structural_funcs || self.structural_globals || self.sig_changed
    }

    /// True if any global changed (contents or structure). Globals feed
    /// the interpreter's initial heap, so this invalidates whole-module
    /// cycle counts even when every function is clean.
    pub fn globals_changed(&self) -> bool {
        self.structural_globals || !self.dirty_globals.is_empty()
    }
}

/// Pre-pass arena snapshot used to derive a [`ChangeSet`] by pointer diff.
///
/// Holding this alive across the pass run is what guarantees the diff is
/// sound: while the snapshot shares every `Arc`, any mutation through the
/// module's COW accessors must re-allocate the touched slot.
pub struct ChangeTracker {
    funcs: Vec<Option<Arc<Function>>>,
    globals: Vec<Option<Arc<Global>>>,
}

impl ChangeTracker {
    /// Snapshot `m`'s arenas (O(#slots) refcount bumps).
    pub fn before(m: &Module) -> ChangeTracker {
        ChangeTracker {
            funcs: m.functions_snapshot(),
            globals: m.globals_snapshot(),
        }
    }

    /// Diff the snapshot against the module's current state.
    pub fn diff(&self, m: &Module) -> ChangeSet {
        let mut cs = ChangeSet::empty();
        let cap = m.func_capacity();
        if cap != self.funcs.len() {
            cs.structural_funcs = true;
        }
        for i in 0..cap {
            let id = FuncId::from_index(i);
            let now = m.func_arc(id);
            let was = self.funcs.get(i).and_then(|f| f.as_ref());
            match (was, now) {
                (None, None) => {}
                (Some(_), None) => cs.structural_funcs = true,
                (None, Some(_)) => {
                    cs.structural_funcs = true;
                    cs.dirty_funcs.push(id);
                }
                (Some(was), Some(now)) => {
                    if Arc::ptr_eq(was, now) {
                        continue;
                    }
                    if sig_of(was) != sig_of(now) {
                        cs.sig_changed = true;
                        cs.dirty_funcs.push(id);
                    } else if **was != **now {
                        cs.dirty_funcs.push(id);
                    }
                    // Pointer moved but content identical: the pass wrote
                    // and reverted — the slot is clean.
                }
            }
        }
        let gcap = m.global_capacity();
        if gcap != self.globals.len() {
            cs.structural_globals = true;
        }
        for i in 0..gcap {
            let id = GlobalId::from_index(i);
            let now = m.global_arc(id);
            let was = self.globals.get(i).and_then(|g| g.as_ref());
            match (was, now) {
                (None, None) => {}
                (Some(_), None) => cs.structural_globals = true,
                (None, Some(_)) => {
                    cs.structural_globals = true;
                    cs.dirty_globals.push(id);
                }
                (Some(was), Some(now)) => {
                    if !Arc::ptr_eq(was, now) && **was != **now {
                        cs.dirty_globals.push(id);
                    }
                }
            }
        }
        cs
    }

    /// Estimated bytes the COW snapshot did *not* deep-copy: the size of
    /// every live function whose allocation survived the pass untouched.
    /// This is what a pre-COW `Module::clone` would have copied for free
    /// slots — reported to the `snapshot_bytes_saved` telemetry counter.
    pub fn bytes_shared(&self, m: &Module) -> u64 {
        let mut saved = 0u64;
        for (i, was) in self.funcs.iter().enumerate() {
            let (Some(was), Some(now)) = (was.as_ref(), m.func_arc(FuncId::from_index(i))) else {
                continue;
            };
            if Arc::ptr_eq(was, now) {
                saved += approx_function_bytes(was);
            }
        }
        saved
    }
}

/// Externally visible signature of a function: what *callers* and the
/// `main` lookup depend on.
fn sig_of(f: &Function) -> (&str, &[autophase_ir::Type], autophase_ir::Type) {
    (&f.name, &f.params, f.ret_ty)
}

/// Rough per-function heap footprint (arena capacities × element sizes).
/// An estimate is fine: the counter quantifies savings, it is not a ledger.
fn approx_function_bytes(f: &Function) -> u64 {
    (f.inst_capacity() * std::mem::size_of::<autophase_ir::Inst>()
        + f.block_capacity() * 64
        + std::mem::size_of::<Function>()) as u64
}

/// Apply pass `id` like [`registry::apply`], additionally deriving the
/// exact [`ChangeSet`]. When the pass reports no change the set is empty
/// by the change-flag honesty contract (enforced by the PR 1 differential
/// suite: `changed == false` ⇒ printed IR is byte-identical).
pub fn apply_traced(m: &mut Module, id: PassId) -> (bool, ChangeSet) {
    let tracker = ChangeTracker::before(m);
    let changed = registry::apply(m, id);
    if !changed {
        return (false, ChangeSet::empty());
    }
    (true, tracker.diff(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::{BinOp, Type, Value};

    fn two_function_module() -> Module {
        let mut m = Module::new("t");
        let mut h = FunctionBuilder::new("helper", vec![Type::I32], Type::I32);
        let d = h.binary(BinOp::Mul, h.arg(0), Value::i32(2));
        h.ret(Some(d));
        let helper = m.add_function(h.finish());
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(10), |b, i| {
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, i);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        let r2 = b.call(helper, Type::I32, vec![r]);
        b.ret(Some(r2));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn untouched_module_diffs_empty() {
        let m = two_function_module();
        let t = ChangeTracker::before(&m);
        assert!(t.diff(&m).is_empty());
        assert!(t.bytes_shared(&m) > 0);
    }

    #[test]
    fn mem2reg_dirties_only_main() {
        let mut m = two_function_module();
        let main = m.main().unwrap();
        let (changed, cs) = apply_traced(&mut m, 38);
        assert!(changed);
        assert_eq!(cs.dirty_funcs, vec![main], "helper has no allocas");
        assert!(!cs.needs_full_rebuild());
        assert!(!cs.globals_changed());
    }

    #[test]
    fn noop_pass_reports_empty_changeset() {
        let mut m = two_function_module();
        // -loweratomic is a faithful no-op on atomic-free IR.
        let (changed, cs) = apply_traced(&mut m, 44);
        assert!(!changed);
        assert!(cs.is_empty());
    }

    #[test]
    fn write_then_revert_is_clean() {
        let mut m = two_function_module();
        let main = m.main().unwrap();
        let t = ChangeTracker::before(&m);
        let old = m.func(main).name.clone();
        m.func_mut(main).name = "other".to_string();
        m.func_mut(main).name = old;
        let cs = t.diff(&m);
        assert!(cs.is_empty(), "content-identical slot must not be dirty");
    }

    #[test]
    fn signature_change_is_flagged() {
        let mut m = two_function_module();
        let helper = m.func_by_name("helper").unwrap();
        let t = ChangeTracker::before(&m);
        m.func_mut(helper).name = "renamed".to_string();
        let cs = t.diff(&m);
        assert!(cs.sig_changed);
        assert_eq!(cs.dirty_funcs, vec![helper]);
        assert!(cs.needs_full_rebuild());
    }

    #[test]
    fn structural_changes_are_flagged() {
        let mut m = two_function_module();
        let helper = m.func_by_name("helper").unwrap();
        let t = ChangeTracker::before(&m);
        m.remove_function(helper);
        assert!(t.diff(&m).structural_funcs);

        let mut m = two_function_module();
        let t = ChangeTracker::before(&m);
        m.add_global(autophase_ir::module::Global::zeroed("g", Type::I8, 8));
        let cs = t.diff(&m);
        assert!(cs.structural_globals);
        assert!(cs.globals_changed());
    }

    #[test]
    fn full_changeset_covers_module() {
        let m = two_function_module();
        let cs = ChangeSet::full(&m);
        assert_eq!(cs.dirty_funcs.len(), 2);
        assert!(cs.needs_full_rebuild());
    }
}
