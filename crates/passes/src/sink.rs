//! `-sink`: move computations closer to their uses.
//!
//! A pure, memory-silent instruction whose uses all sit in a single other
//! block is moved to the head of that block when the move crosses a branch
//! (so paths not needing the value no longer compute it) and does not move
//! the instruction *into* a loop it was not already in.

use crate::util;
use crate::util::UserIndex;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::find_loops;
use autophase_ir::{BlockId, FuncId, InstId, Module};

/// Run the pass. Returns true if anything moved.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let mut changed = false;
        while sink_once(m, fid) {
            changed = true;
        }
        changed
    })
}

fn sink_once(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loops = find_loops(f, &cfg, &dt);
    let index = UserIndex::build(f);
    let loop_depth = |bb: BlockId| loops.iter().filter(|l| l.contains(bb)).count();

    for &bb in cfg.rpo() {
        // Only worthwhile when bb has multiple successors: sinking skips
        // work on the untaken path.
        if cfg.unique_succs(bb).len() < 2 {
            continue;
        }
        let insts: Vec<InstId> = f.block(bb).insts.clone();
        for &iid in insts.iter().rev() {
            let inst = f.inst(iid);
            if inst.is_terminator() || inst.is_phi() || !util::is_pure_no_read(m, inst) {
                continue;
            }
            if inst.ty.is_void() {
                continue;
            }
            let users = index.users(iid);
            if users.is_empty() {
                continue;
            }
            // All uses in one block ≠ bb, and none of them φ-nodes (a φ use
            // conceptually executes in the predecessor).
            let target = users[0].1;
            if target == bb
                || !users
                    .iter()
                    .all(|&(u, ub)| ub == target && !f.inst(u).is_phi())
            {
                continue;
            }
            // Target must be dominated by bb (value stays defined on all
            // paths to its uses) and not in a deeper loop.
            if !dt.strictly_dominates(bb, target) {
                continue;
            }
            if loop_depth(target) > loop_depth(bb) {
                continue;
            }
            // Move: remove from bb, insert after target's φs.
            let fm = m.func_mut(fid);
            fm.block_mut(bb).insts.retain(|&i| i != iid);
            let pos = fm
                .block(target)
                .insts
                .iter()
                .take_while(|&&i| fm.inst(i).is_phi())
                .count();
            fm.block_mut(target).insts.insert(pos, iid);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_function;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, CmpPred, Type, Value};

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn sinks_into_single_using_branch() {
        // entry computes x*3 but only the then-arm uses it.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let v = b.binary(BinOp::Mul, b.arg(0), Value::i32(3));
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let r = b.binary(BinOp::Add, v, Value::i32(1));
        b.ret(Some(r));
        b.switch_to(e);
        b.ret(Some(Value::i32(0)));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        let f = m.func(m.main().unwrap());
        // The mul now lives in the then-block.
        let mul_bb =
            f.block_ids()
                .find(|&bb| {
                    f.block(bb).insts.iter().any(|&i| {
                        matches!(f.inst(i).op, autophase_ir::Opcode::Binary(BinOp::Mul, ..))
                    })
                })
                .unwrap();
        assert_ne!(mul_bb, f.entry);
        assert_eq!(
            run_function(&m, m.main().unwrap(), &[-2], 100)
                .unwrap()
                .return_value,
            Some(-5)
        );
    }

    #[test]
    fn does_not_sink_into_loop() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let exit2 = b.new_block();
        let v = b.binary(BinOp::Mul, b.arg(0), Value::i32(3));
        let c = b.icmp(CmpPred::Sgt, b.arg(0), Value::i32(0));
        let loop_entry = b.new_block();
        b.cond_br(c, loop_entry, exit2);
        b.switch_to(loop_entry);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, _| {
            let cur = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, cur, v); // v used only in the loop
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        b.switch_to(exit2);
        b.ret(Some(Value::i32(0)));
        let mut m = module_with(b.finish());
        let fid = m.main().unwrap();
        let before = run_function(&m, fid, &[4], 10_000).unwrap().return_value;
        run(&mut m);
        assert_verified(&m);
        let after = run_function(&m, fid, &[4], 10_000).unwrap().return_value;
        assert_eq!(before, after);
        // The mul must not be inside the loop body (depth check).
        let f = m.func(fid);
        let (cfg, dt, loops) = {
            let cfg = autophase_ir::cfg::Cfg::new(f);
            let dt = autophase_ir::dom::DomTree::new(f, &cfg);
            let loops = autophase_ir::loops::find_loops(f, &cfg, &dt);
            (cfg, dt, loops)
        };
        let _ = (cfg, dt);
        let mul_bb =
            f.block_ids()
                .find(|&bb| {
                    f.block(bb).insts.iter().any(|&i| {
                        matches!(f.inst(i).op, autophase_ir::Opcode::Binary(BinOp::Mul, ..))
                    })
                })
                .unwrap();
        assert!(loops.iter().all(|l| !l.contains(mul_bb)));
    }

    #[test]
    fn multi_block_uses_not_sunk() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let v = b.binary(BinOp::Mul, b.arg(0), Value::i32(3));
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(Some(v));
        b.switch_to(e);
        b.ret(Some(v));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
    }
}
