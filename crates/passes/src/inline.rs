//! `-inline` and `-partial-inliner`: function integration.
//!
//! `-inline` splices small or single-call-site non-recursive callees into
//! their callers. `-partial-inliner` inlines only a callee's entry guard
//! (an entry block that conditionally returns early), leaving the heavy
//! path as a call — the shape LLVM's partial inliner targets.

use crate::util;
use autophase_ir::{BlockId, FuncId, Inst, InstId, Module, Opcode, Type, Value};
use std::collections::HashMap;

/// Instruction-count threshold under which `-inline` integrates a callee
/// unconditionally.
pub const INLINE_THRESHOLD: usize = 48;

/// Run `-inline`. Returns true if any call was integrated.
pub fn run(m: &mut Module) -> bool {
    let mut changed = false;
    // Repeat to let freshly exposed calls (from inlined bodies) inline too,
    // with a budget to avoid size explosion.
    for _ in 0..4 {
        let mut local = false;
        // Module-wide facts computed once per round (they only become
        // stale in the conservative direction while inlining: call-site
        // counts can grow, never shrink to 1).
        let recursive = recursive_set(m);
        let site_counts = call_site_counts(m);
        let fids: Vec<FuncId> = m.func_ids().collect();
        for fid in fids {
            if !m.func_exists(fid) {
                continue;
            }
            while let Some((bb, call)) = find_inlinable_site(m, fid, &recursive, &site_counts) {
                inline_call(m, fid, bb, call);
                local = true;
                if m.func(fid).num_insts() > 4000 {
                    break;
                }
            }
        }
        changed |= local;
        if !local {
            break;
        }
    }
    changed
}

/// Functions that (transitively directly) call themselves.
fn recursive_set(m: &Module) -> std::collections::HashSet<FuncId> {
    m.func_ids().filter(|&fid| is_recursive(m, fid)).collect()
}

/// Call-site count per callee, one module scan.
fn call_site_counts(m: &Module) -> std::collections::HashMap<FuncId, usize> {
    let mut counts = std::collections::HashMap::new();
    for fid in m.func_ids() {
        let f = m.func(fid);
        for bb in f.block_ids() {
            for (_, inst) in f.insts_in(bb) {
                if let Opcode::Call { callee, .. } = inst.op {
                    *counts.entry(callee).or_insert(0) += 1;
                }
            }
        }
    }
    counts
}

/// Run `-partial-inliner`. Returns true if any guard was peeled.
pub fn run_partial(m: &mut Module) -> bool {
    let fids: Vec<FuncId> = m.func_ids().collect();
    let mut changed = false;
    for fid in fids {
        if !m.func_exists(fid) {
            continue;
        }
        // Collect the sites up front: the rewrite introduces a new call on
        // the slow path which must not be peeled again.
        let f = m.func(fid);
        let mut sites: Vec<InstId> = Vec::new();
        for bb in f.block_ids() {
            for &iid in &f.block(bb).insts {
                if let Opcode::Call { callee, .. } = f.inst(iid).op {
                    // `outlined` marks callees whose guard was already
                    // peeled somewhere: the rewrite leaves a call to the
                    // same callee on the slow path, so without the marker
                    // every later run would peel that call again and the
                    // pass would never reach a fixed point.
                    if callee != fid
                        && m.func_exists(callee)
                        && !m.func(callee).attrs.outlined
                        && guard_shape(m.func(callee)).is_some()
                    {
                        sites.push(iid);
                    }
                }
            }
        }
        for call in sites {
            changed |= partial_inline_site(m, fid, call);
        }
    }
    changed
}

fn is_recursive(m: &Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    f.block_ids().any(|bb| {
        f.block(bb)
            .insts
            .iter()
            .any(|&i| matches!(f.inst(i).op, Opcode::Call { callee, .. } if callee == fid))
    })
}

fn find_inlinable_site(
    m: &Module,
    caller: FuncId,
    recursive: &std::collections::HashSet<FuncId>,
    site_counts: &std::collections::HashMap<FuncId, usize>,
) -> Option<(BlockId, InstId)> {
    let f = m.func(caller);
    for bb in f.block_ids() {
        for &iid in &f.block(bb).insts {
            let Opcode::Call { callee, .. } = f.inst(iid).op else {
                continue;
            };
            if callee == caller || !m.func_exists(callee) || recursive.contains(&callee) {
                continue;
            }
            let size = m.func(callee).num_insts();
            let worthwhile = size <= INLINE_THRESHOLD
                || m.func(callee).attrs.always_inline
                || site_counts.get(&callee).copied().unwrap_or(0) == 1;
            if worthwhile {
                return Some((bb, iid));
            }
        }
    }
    None
}

/// Splice `callee`'s body into `caller` at the call site.
pub(crate) fn inline_call(m: &mut Module, caller: FuncId, bb: BlockId, call: InstId) {
    let (callee, args) = match &m.func(caller).inst(call).op {
        Opcode::Call { callee, args } => (*callee, args.clone()),
        _ => unreachable!("inline_call on non-call"),
    };
    let callee_fn = m.func(callee).clone();
    let f = m.func_mut(caller);

    // Split the call block: everything after the call moves to `cont`.
    let pos = f
        .block(bb)
        .insts
        .iter()
        .position(|&i| i == call)
        .expect("call placed in bb");
    let cont = util::split_block(f, bb, pos);
    // bb now ends [call, br cont]; drop both — the branch gets replaced by
    // a jump into the inlined entry.
    let br = f.block_mut(bb).insts.pop().expect("br after split");
    f.erase_inst(br);
    let call_popped = f.block_mut(bb).insts.pop().expect("call present");
    debug_assert_eq!(call_popped, call);

    // Clone the callee region with args substituted for parameters.
    let mut vmap: HashMap<Value, Value> = HashMap::new();
    for (i, a) in args.iter().enumerate() {
        vmap.insert(Value::Arg(i as u32), *a);
    }
    let region: Vec<BlockId> = callee_fn.block_ids().collect();
    let bmap = util::clone_region(&callee_fn, &region, f, &mut vmap);

    // Jump from bb into the cloned entry.
    let jump = f.add_inst(Inst::new(
        Type::Void,
        Opcode::Br {
            target: bmap[&callee_fn.entry],
        },
    ));
    f.block_mut(bb).insts.push(jump);

    // Replace cloned `ret`s with branches to `cont`, collecting return
    // values for a φ.
    // Walk the region in callee block order, not bmap (HashMap) order: the
    // φ's incoming list below must come out the same on every run.
    let mut rets: Vec<(BlockId, Option<Value>)> = Vec::new();
    for old_bb in &region {
        let new_bb = bmap[old_bb];
        let Some(term) = f.terminator(new_bb) else {
            continue;
        };
        if let Opcode::Ret { value } = f.inst(term).op {
            rets.push((new_bb, value));
            f.inst_mut(term).op = Opcode::Br { target: cont };
        }
    }

    // The call's result becomes a φ over return values (or the single one).
    let ret_ty = callee_fn.ret_ty;
    if !ret_ty.is_void() {
        let result: Value = match rets.as_slice() {
            [] => Value::Undef(ret_ty),
            [(_, v)] => v.unwrap_or(Value::Undef(ret_ty)),
            many => {
                let incoming: Vec<(BlockId, Value)> = many
                    .iter()
                    .map(|(b, v)| (*b, v.unwrap_or(Value::Undef(ret_ty))))
                    .collect();
                let phi = f.insert_inst(cont, 0, Inst::new(ret_ty, Opcode::Phi { incoming }));
                Value::Inst(phi)
            }
        };
        f.replace_all_uses(Value::Inst(call), result);
    }
    f.erase_inst(call);
}

/// Peel a callee's entry guard into one call site:
/// `r = f(x)` where `f`'s entry is `[pure insts] condbr(c, early_ret, rest)`
/// and `early_ret` is `[pure insts] ret v` becomes an inline evaluation of
/// the guard with the call only on the slow path.
fn partial_inline_site(m: &mut Module, caller: FuncId, call: InstId) -> bool {
    let f = m.func(caller);
    if !f.inst_exists(call) {
        return false;
    }
    let Some(bb) = f.block_of(call) else {
        return false;
    };
    let Opcode::Call { callee, .. } = f.inst(call).op else {
        return false;
    };
    let callee_fn = m.func(callee).clone();
    let Some((guard_blocks, early_orig, _rest)) = guard_shape(&callee_fn) else {
        return false;
    };

    let args = match &m.func(caller).inst(call).op {
        Opcode::Call { args, .. } => args.clone(),
        _ => unreachable!(),
    };
    let f = m.func_mut(caller);

    // Split at the call; drop [call, br] like full inlining.
    let pos = f
        .block(bb)
        .insts
        .iter()
        .position(|&i| i == call)
        .expect("call placed");
    let cont = util::split_block(f, bb, pos);
    let br = f.block_mut(bb).insts.pop().expect("br");
    f.erase_inst(br);
    f.block_mut(bb).insts.pop();

    // Clone only entry + early-return block.
    let mut vmap: HashMap<Value, Value> = HashMap::new();
    for (i, a) in args.iter().enumerate() {
        vmap.insert(Value::Arg(i as u32), *a);
    }
    let bmap = util::clone_region(&callee_fn, &guard_blocks, f, &mut vmap);
    let jump = f.add_inst(Inst::new(
        Type::Void,
        Opcode::Br {
            target: bmap[&callee_fn.entry],
        },
    ));
    f.block_mut(bb).insts.push(jump);

    // In the cloned guard: the edge to `rest` becomes an edge to a new
    // "slow" block that performs the real call; the early ret becomes a
    // branch to cont.
    let slow = f.add_block();
    let slow_call = f.append_inst(
        slow,
        Inst::new(
            callee_fn.ret_ty,
            Opcode::Call {
                callee,
                args: args.clone(),
            },
        ),
    );
    f.append_inst(slow, Inst::new(Type::Void, Opcode::Br { target: cont }));

    let mut early_val: Option<Value> = None;
    let mut early_bb: Option<BlockId> = None;
    for &gb in &guard_blocks {
        let nb = bmap[&gb];
        let Some(term) = f.terminator(nb) else {
            continue;
        };
        let mut new_op: Option<Opcode> = None;
        match &f.inst(term).op {
            Opcode::Ret { value } => {
                early_val = Some(value.unwrap_or(Value::Undef(callee_fn.ret_ty)));
                early_bb = Some(nb);
                new_op = Some(Opcode::Br { target: cont });
            }
            Opcode::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                // The cloned entry's condbr targets the cloned early block
                // and the callee's (uncloned) rest block: the latter becomes
                // the slow path.
                let early_clone = bmap[&early_orig];
                let fix = |b: BlockId| if b == early_clone { b } else { slow };
                new_op = Some(Opcode::CondBr {
                    cond: *cond,
                    then_bb: fix(*then_bb),
                    else_bb: fix(*else_bb),
                });
            }
            _ => {}
        }
        if let Some(op) = new_op {
            f.inst_mut(term).op = op;
        }
    }

    // Join the two results at cont.
    if !callee_fn.ret_ty.is_void() {
        let mut incoming = vec![(slow, Value::Inst(slow_call))];
        if let (Some(v), Some(ebb)) = (early_val, early_bb) {
            incoming.push((ebb, v));
        }
        let phi = f.insert_inst(
            cont,
            0,
            Inst::new(callee_fn.ret_ty, Opcode::Phi { incoming }),
        );
        f.replace_all_uses(Value::Inst(call), Value::Inst(phi));
    }
    f.erase_inst(call);
    m.func_mut(callee).attrs.outlined = true;
    true
}

/// Recognize the guard shape: entry = pure insts + `condbr` where one arm
/// is a block that only computes pure values and returns, the other arm is
/// the "rest". Returns (guard region blocks, early block, rest block).
fn guard_shape(f: &autophase_ir::Function) -> Option<(Vec<BlockId>, BlockId, BlockId)> {
    let entry = f.entry;
    let term = f.terminator(entry)?;
    let Opcode::CondBr {
        then_bb, else_bb, ..
    } = f.inst(term).op
    else {
        return None;
    };
    // Entry must be pure (no loads even — args only) so cloning it cannot
    // change behaviour; same for the early block.
    let block_pure = |bb: BlockId| {
        f.block(bb).insts.iter().all(|&i| {
            let inst = f.inst(i);
            inst.is_terminator()
                || (!inst.reads_memory()
                    && !inst.writes_memory()
                    && !matches!(inst.op, Opcode::Alloca { .. } | Opcode::Phi { .. }))
        })
    };
    if !block_pure(entry) {
        return None;
    }
    let ret_only = |bb: BlockId| {
        matches!(
            f.terminator(bb).map(|t| &f.inst(t).op),
            Some(Opcode::Ret { .. })
        ) && block_pure(bb)
            && bb != entry
    };
    for (early, rest) in [(then_bb, else_bb), (else_bb, then_bb)] {
        if ret_only(early) && early != rest {
            // `rest` must not be φ-dependent on which pred it came from
            // (we do not clone it). If rest has φs, bail.
            let rest_has_phi = f.block(rest).insts.iter().any(|&i| f.inst(i).is_phi());
            // Early block must not be reachable from rest (single purpose).
            if !rest_has_phi {
                return Some((vec![entry, early], early, rest));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::{run_function, run_main};
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, CmpPred};

    fn square_module() -> Module {
        let mut m = Module::new("t");
        let sq = {
            let mut b = FunctionBuilder::new("square", vec![Type::I32], Type::I32);
            let r = b.binary(BinOp::Mul, b.arg(0), b.arg(0));
            b.ret(Some(r));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let a = b.call(sq, Type::I32, vec![Value::i32(6)]);
        let c = b.call(sq, Type::I32, vec![Value::i32(2)]);
        let s = b.binary(BinOp::Add, a, c);
        b.ret(Some(s));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn small_callee_inlined_everywhere() {
        let mut m = square_module();
        let before = run_main(&m, 1000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 1000).unwrap().observable(), before);
        assert_eq!(before, Some(40));
        let main = m.func(m.main().unwrap());
        let calls = main
            .block_ids()
            .flat_map(|bb| main.block(bb).insts.clone())
            .filter(|&i| matches!(main.inst(i).op, Opcode::Call { .. }))
            .count();
        assert_eq!(calls, 0);
    }

    #[test]
    fn branchy_callee_inlined_with_phi() {
        let mut m = Module::new("t");
        let absf = {
            let mut b = FunctionBuilder::new("abs_fn", vec![Type::I32], Type::I32);
            let t = b.new_block();
            let e = b.new_block();
            let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
            b.cond_br(c, t, e);
            b.switch_to(t);
            let n = b.binary(BinOp::Sub, Value::i32(0), b.arg(0));
            b.ret(Some(n));
            b.switch_to(e);
            b.ret(Some(b.arg(0)));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let r = b.call(absf, Type::I32, vec![b.arg(0)]);
        let s = b.binary(BinOp::Add, r, Value::i32(1));
        b.ret(Some(s));
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before: Vec<_> = [-7, 0, 7]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 1000).unwrap().return_value)
            .collect();
        assert!(run(&mut m));
        assert_verified(&m);
        let after: Vec<_> = [-7, 0, 7]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 1000).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn recursive_callee_not_inlined() {
        let mut m = Module::new("t");
        let fid = FuncId::from_index(0);
        let mut b = FunctionBuilder::new("rec", vec![Type::I32], Type::I32);
        let base = b.new_block();
        let r = b.new_block();
        let c = b.icmp(CmpPred::Sle, b.arg(0), Value::i32(0));
        b.cond_br(c, base, r);
        b.switch_to(base);
        b.ret(Some(Value::i32(0)));
        b.switch_to(r);
        let n1 = b.binary(BinOp::Sub, b.arg(0), Value::i32(1));
        let v = b.call(fid, Type::I32, vec![n1]);
        b.ret(Some(v));
        m.add_function(b.finish());
        let mut mb = FunctionBuilder::new("main", vec![], Type::I32);
        let r = mb.call(fid, Type::I32, vec![Value::i32(3)]);
        mb.ret(Some(r));
        m.add_function(mb.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn callee_with_memory_inlined_correctly() {
        let mut m = Module::new("t");
        let g = m.add_global(autophase_ir::Global::zeroed("counter", Type::I32, 1));
        let bump = {
            let mut b = FunctionBuilder::new("bump", vec![], Type::I32);
            let v = b.load(Type::I32, Value::Global(g));
            let n = b.binary(BinOp::Add, v, Value::i32(1));
            b.store(Value::Global(g), n);
            b.ret(Some(n));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let a = b.call(bump, Type::I32, vec![]);
        let c = b.call(bump, Type::I32, vec![]);
        let s = b.binary(BinOp::Mul, a, c);
        b.ret(Some(s));
        m.add_function(b.finish());
        let before = run_main(&m, 1000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 1000).unwrap().observable(), before);
        assert_eq!(before, Some(2)); // 1 * 2
    }

    #[test]
    fn partial_inliner_peels_guard() {
        // f(x) = x <= 0 ? 0 : <heavy loop>
        let mut m = Module::new("t");
        let heavy = {
            let mut b = FunctionBuilder::new("heavy", vec![Type::I32], Type::I32);
            let early = b.new_block();
            let rest = b.new_block();
            let c = b.icmp(CmpPred::Sle, b.arg(0), Value::i32(0));
            b.cond_br(c, early, rest);
            b.switch_to(early);
            b.ret(Some(Value::i32(0)));
            b.switch_to(rest);
            let acc = b.alloca(Type::I32, 1);
            b.store(acc, Value::i32(0));
            b.counted_loop(b.arg(0), |b, i| {
                let cur = b.load(Type::I32, acc);
                let n = b.binary(BinOp::Add, cur, i);
                b.store(acc, n);
            });
            let r = b.load(Type::I32, acc);
            b.ret(Some(r));
            m.add_function(b.finish())
        };
        // Make heavy big enough that -inline leaves it alone but the guard
        // is still peelable.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let r = b.call(heavy, Type::I32, vec![b.arg(0)]);
        b.ret(Some(r));
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before: Vec<_> = [-3, 0, 5]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100_000).unwrap().return_value)
            .collect();
        assert!(run_partial(&mut m));
        assert_verified(&m);
        let after: Vec<_> = [-3, 0, 5]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100_000).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
        assert_eq!(after[2], Some(10));
        // The guard now executes inline: calling main(-3) performs no call.
        let t = run_function(&m, fid, &[-3], 100_000).unwrap();
        assert_eq!(t.calls(heavy), 0);
    }

    #[test]
    fn partial_inliner_noop_without_guard() {
        let mut m = square_module();
        assert!(!run_partial(&mut m));
    }
}
