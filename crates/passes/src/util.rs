//! Shared machinery: purity queries, value substitution, region cloning.

use autophase_ir::{BinOp, Block, BlockId, Function, Inst, InstId, Module, Opcode, Value};
use std::collections::HashMap;

/// True if executing `inst` has no observable effect beyond producing its
/// result: no stores, and calls only to functions inferred `readnone`
/// (which `-functionattrs` sets).
pub fn is_pure(m: &Module, inst: &Inst) -> bool {
    match &inst.op {
        Opcode::Store { .. } => false,
        Opcode::Call { callee, .. } => m.func_exists(*callee) && m.func(*callee).attrs.readnone,
        _ => !inst.is_terminator(),
    }
}

/// True if `inst` is pure and also reads no memory, so it may be freely
/// reordered and deduplicated.
pub fn is_pure_no_read(m: &Module, inst: &Inst) -> bool {
    is_pure(m, inst) && !matches!(inst.op, Opcode::Load { .. })
}

/// True if the instruction is trivially dead: its result is unused and it
/// is pure.
pub fn is_trivially_dead(m: &Module, f: &Function, id: InstId) -> bool {
    let inst = f.inst(id);
    is_pure(m, inst) && f.count_uses(Value::Inst(id)) == 0
}

/// Delete trivially dead instructions until a fixpoint. Returns the number
/// removed. This is the cleanup step most transform passes finish with.
///
/// Implemented as a use-count worklist (one scan to build counts, then
/// O(1) per removal) so repeated cleanup on large functions stays linear.
pub fn delete_dead(m: &mut Module, fid: autophase_ir::FuncId) -> usize {
    // Build use counts and placements in one scan.
    let f = m.func(fid);
    let cap = f.inst_capacity();
    let mut use_count = vec![0u32; cap];
    let mut placement: Vec<Option<BlockId>> = vec![None; cap];
    for bb in f.block_ids() {
        for &iid in &f.block(bb).insts {
            placement[iid.index()] = Some(bb);
            f.inst(iid).for_each_operand(|v| {
                if let Value::Inst(dep) = v {
                    if dep.index() < cap {
                        use_count[dep.index()] += 1;
                    }
                }
            });
        }
    }
    // Purity snapshot (depends only on opcode + callee attrs, which this
    // function does not change while deleting).
    let dead_candidate = |m: &Module, iid: InstId| -> bool {
        let f = m.func(fid);
        f.inst_exists(iid) && is_pure(m, f.inst(iid))
    };
    let mut work: Vec<InstId> = (0..cap)
        .map(InstId::from_index)
        .filter(|&iid| {
            placement[iid.index()].is_some()
                && use_count[iid.index()] == 0
                && dead_candidate(m, iid)
        })
        .collect();
    let mut removed = 0;
    while let Some(iid) = work.pop() {
        let Some(bb) = placement[iid.index()] else {
            continue;
        };
        if !m.func(fid).inst_exists(iid) || use_count[iid.index()] != 0 {
            continue;
        }
        // Decrement operand counts before removal.
        let mut freed: Vec<InstId> = Vec::new();
        m.func(fid).inst(iid).for_each_operand(|v| {
            if let Value::Inst(dep) = v {
                if dep.index() < cap && use_count[dep.index()] > 0 {
                    use_count[dep.index()] -= 1;
                    if use_count[dep.index()] == 0 {
                        freed.push(dep);
                    }
                }
            }
        });
        m.func_mut(fid).remove_inst(bb, iid);
        removed += 1;
        for dep in freed {
            if placement[dep.index()].is_some() && dead_candidate(m, dep) {
                work.push(dep);
            }
        }
    }
    removed
}

/// A one-scan reverse-use index: for every instruction result, the list of
/// `(user instruction, user's block)` pairs, plus per-value use counts.
///
/// Build it once per analysis phase; it is a snapshot — rebuild after
/// mutating the function. Turns the per-candidate `Function::users` scans
/// (O(n) each, O(n²) per pass) into O(1) lookups.
pub struct UserIndex {
    users: Vec<Vec<(InstId, BlockId)>>,
}

impl UserIndex {
    /// Scan `f` once and build the index.
    pub fn build(f: &Function) -> UserIndex {
        let mut users: Vec<Vec<(InstId, BlockId)>> = vec![Vec::new(); f.inst_capacity()];
        for bb in f.block_ids() {
            for &iid in &f.block(bb).insts {
                f.inst(iid).for_each_operand(|v| {
                    if let Value::Inst(dep) = v {
                        if dep.index() < users.len() {
                            users[dep.index()].push((iid, bb));
                        }
                    }
                });
            }
        }
        UserIndex { users }
    }

    /// Users of instruction `id`'s result (an instruction using it twice
    /// appears twice).
    pub fn users(&self, id: InstId) -> &[(InstId, BlockId)] {
        self.users.get(id.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of uses of instruction `id`'s result.
    pub fn use_count(&self, id: InstId) -> usize {
        self.users(id).len()
    }
}

/// Remap every operand of `inst` through `map` (values absent from the map
/// are left alone).
pub fn remap_operands(inst: &mut Inst, map: &HashMap<Value, Value>) {
    inst.for_each_operand_mut(|v| {
        if let Some(nv) = map.get(v) {
            *v = *nv;
        }
    });
}

/// Clone the blocks of `region` (from function `src_f` of `m`) into
/// function `dst` with operand and block-target remapping.
///
/// `value_map` seeds value substitutions (e.g. params → arguments) and is
/// extended with `old inst result → new inst result` entries. Returns the
/// old-block → new-block mapping. Branch targets pointing outside the
/// region are left unchanged (the caller rewires them).
///
/// φ-node incoming block ids are remapped when the incoming block is in
/// the region, otherwise preserved.
pub fn clone_region(
    src_f: &Function,
    region: &[BlockId],
    dst: &mut Function,
    value_map: &mut HashMap<Value, Value>,
) -> HashMap<BlockId, BlockId> {
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for &bb in region {
        let nb = dst.add_block();
        block_map.insert(bb, nb);
    }
    // First pass: create all instructions so forward references (φ cycles)
    // can be remapped in a second pass.
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    for &bb in region {
        let nb = block_map[&bb];
        for &iid in &src_f.block(bb).insts {
            let inst = src_f.inst(iid).clone();
            let nid = dst.add_inst(inst);
            dst.block_mut(nb).insts.push(nid);
            inst_map.insert(iid, nid);
        }
    }
    for (&old, &new) in &inst_map {
        value_map.insert(Value::Inst(old), Value::Inst(new));
    }
    // Second pass: remap operands, successors, and φ incoming blocks.
    let new_ids: Vec<InstId> = inst_map.values().copied().collect();
    for nid in new_ids {
        let inst = dst.inst_mut(nid);
        inst.for_each_operand_mut(|v| {
            if let Some(nv) = value_map.get(v) {
                *v = *nv;
            }
        });
        inst.for_each_successor_mut(|b| {
            if let Some(nb) = block_map.get(b) {
                *b = *nb;
            }
        });
        if let Opcode::Phi { incoming } = &mut inst.op {
            for (pred, _) in incoming.iter_mut() {
                if let Some(np) = block_map.get(pred) {
                    *pred = *np;
                }
            }
        }
    }
    block_map
}

/// Split `bb` after position `pos` (0-based index of the last instruction
/// kept). The tail (including the old terminator) moves to a fresh block,
/// `bb` gets a `br` to it, and φ-nodes of old successors are retargeted.
/// Returns the new tail block.
pub fn split_block(f: &mut Function, bb: BlockId, pos: usize) -> BlockId {
    let tail_insts: Vec<InstId> = f.block_mut(bb).insts.split_off(pos + 1);
    let tail = f.add_block();
    f.block_mut(tail).insts = tail_insts;
    // Successor φs now flow from `tail`.
    let succs: Vec<BlockId> = f
        .terminator(tail)
        .map(|t| f.inst(t).successors())
        .unwrap_or_default();
    for s in succs {
        f.retarget_phis(s, bb, tail);
    }
    let br = f.add_inst(Inst::new(
        autophase_ir::Type::Void,
        Opcode::Br { target: tail },
    ));
    f.block_mut(bb).insts.push(br);
    tail
}

/// Type of a value in the context of function `f` (mirrors the builder's
/// inference, usable on finished functions).
pub fn type_of(f: &Function, v: Value) -> autophase_ir::Type {
    use autophase_ir::Type;
    match v {
        Value::Inst(id) => f.inst(id).ty,
        Value::ConstInt(ty, _) | Value::Undef(ty) => ty,
        Value::Arg(i) => f.params.get(i as usize).copied().unwrap_or(Type::I32),
        Value::Global(_) => Type::Ptr,
    }
}

/// Run `body` once per live function id.
pub fn for_each_function(
    m: &mut Module,
    mut body: impl FnMut(&mut Module, autophase_ir::FuncId) -> bool,
) -> bool {
    let ids: Vec<_> = m.func_ids().collect();
    let mut changed = false;
    for fid in ids {
        if m.func_exists(fid) {
            changed |= body(m, fid);
        }
    }
    changed
}

/// True if `v` is a power of two (> 0) and return its log2.
pub fn power_of_two(v: i64) -> Option<u32> {
    if v > 0 && (v & (v - 1)) == 0 {
        Some(v.trailing_zeros())
    } else {
        None
    }
}

/// Collect the root pointer of an address value: follows `Gep` chains to an
/// `Alloca` instruction or `Global`. Returns `None` for anything else
/// (arguments, loads, arithmetic), i.e. "unknown object".
pub fn pointer_root(f: &Function, mut v: Value) -> Option<Value> {
    loop {
        match v {
            Value::Global(_) => return Some(v),
            Value::Inst(id) => match &f.inst(id).op {
                Opcode::Alloca { .. } => return Some(v),
                Opcode::Gep { ptr, .. } => v = *ptr,
                Opcode::Cast(autophase_ir::CastOp::BitCast, inner) => v = *inner,
                _ => return None,
            },
            _ => return None,
        }
    }
}

/// Conservative may-alias: two addresses may alias unless they have
/// distinct known roots.
pub fn may_alias(f: &Function, a: Value, b: Value) -> bool {
    match (pointer_root(f, a), pointer_root(f, b)) {
        (Some(ra), Some(rb)) => ra == rb || alias_same_root(f, a, b, ra, rb),
        _ => true,
    }
}

fn alias_same_root(_f: &Function, _a: Value, _b: Value, ra: Value, rb: Value) -> bool {
    // Same root: may alias (we do not track index disjointness).
    ra == rb
}

/// Build a `Block` from instruction ids (helper for tests).
pub fn block_of(insts: Vec<InstId>) -> Block {
    Block { insts }
}

/// Negate a value by emitting `0 - v` (helper for transforms).
pub fn emit_neg(f: &mut Function, bb: BlockId, pos: usize, v: Value) -> Value {
    let ty = type_of(f, v);
    let id = f.insert_inst(
        bb,
        pos,
        Inst::new(ty, Opcode::Binary(BinOp::Sub, Value::const_int(ty, 0), v)),
    );
    Value::Inst(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::{verify, Type};

    #[test]
    fn purity_respects_function_attrs() {
        let mut m = Module::new("t");
        let callee = m.add_function(Function::new("f", vec![], Type::I32));
        {
            let f = m.func_mut(callee);
            let e = f.entry;
            f.append_inst(
                e,
                Inst::new(
                    Type::Void,
                    Opcode::Ret {
                        value: Some(Value::i32(1)),
                    },
                ),
            );
        }
        let call = Inst::new(
            Type::I32,
            Opcode::Call {
                callee,
                args: vec![],
            },
        );
        assert!(!is_pure(&m, &call));
        m.func_mut(callee).attrs.readnone = true;
        assert!(is_pure(&m, &call));
    }

    #[test]
    fn delete_dead_removes_chains() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let x = b.binary(BinOp::Add, Value::i32(1), Value::i32(2));
        let _y = b.binary(BinOp::Mul, x, Value::i32(3)); // dead, and makes x dead
        b.ret(Some(Value::i32(0)));
        let fid = m.add_function(b.finish());
        let removed = delete_dead(&mut m, fid);
        assert_eq!(removed, 2);
        assert_eq!(m.func(fid).num_insts(), 1);
    }

    #[test]
    fn split_block_keeps_verifying() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let x = b.binary(BinOp::Add, Value::i32(1), Value::i32(2));
        let y = b.binary(BinOp::Mul, x, Value::i32(3));
        b.ret(Some(y));
        let fid = m.add_function(b.finish());
        let f = m.func_mut(fid);
        let entry = f.entry;
        let tail = split_block(f, entry, 0);
        assert_eq!(f.block(entry).insts.len(), 2); // add + br
        assert_eq!(f.block(tail).insts.len(), 2); // mul + ret
        verify::assert_verified(&m);
        let t = autophase_ir::interp::run_main(&m, 1000).unwrap();
        assert_eq!(t.return_value, Some(9));
    }

    #[test]
    fn clone_region_remaps_internal_edges() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let body = b.new_block();
        let exit = b.new_block();
        b.br(body);
        b.switch_to(body);
        let x = b.binary(BinOp::Add, Value::i32(5), Value::i32(6));
        b.br(exit);
        b.switch_to(exit);
        b.ret(Some(x));
        let fid = m.add_function(b.finish());

        let f = m.func_mut(fid);
        let mut vmap = HashMap::new();
        let bmap = clone_region(&f.clone(), &[body], f, &mut vmap);
        let nb = bmap[&body];
        assert_ne!(nb, body);
        // the cloned add is a new instruction
        let cloned_add = f.block(nb).insts[0];
        assert!(matches!(
            f.inst(cloned_add).op,
            Opcode::Binary(BinOp::Add, ..)
        ));
        assert_eq!(vmap.get(&x), Some(&Value::Inst(cloned_add)));
    }

    #[test]
    fn pointer_roots() {
        let mut b = FunctionBuilder::new("main", vec![Type::Ptr], Type::Void);
        let a = b.alloca(Type::I32, 4);
        let g1 = b.gep(a, Value::i32(2));
        let g2 = b.gep(b.arg(0), Value::i32(2));
        b.ret(None);
        let f = b.finish();
        assert_eq!(pointer_root(&f, g1), Some(a));
        assert_eq!(pointer_root(&f, g2), None);
        assert!(may_alias(&f, g1, g1));
        assert!(may_alias(&f, g1, g2)); // unknown root: conservative
    }

    #[test]
    fn distinct_allocas_do_not_alias() {
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let a1 = b.alloca(Type::I32, 1);
        let a2 = b.alloca(Type::I32, 1);
        b.ret(None);
        let f = b.finish();
        assert!(!may_alias(&f, a1, a2));
    }

    #[test]
    fn power_of_two_detection() {
        assert_eq!(power_of_two(8), Some(3));
        assert_eq!(power_of_two(1), Some(0));
        assert_eq!(power_of_two(0), None);
        assert_eq!(power_of_two(-4), None);
        assert_eq!(power_of_two(6), None);
    }
}
