//! `-early-cse`: block-local common-subexpression elimination with
//! store-to-load forwarding.
//!
//! Within each basic block, pure computations with identical opcodes and
//! operands are deduplicated, loads repeated from the same unclobbered
//! address are reused, and a load immediately dominated (in the block) by a
//! store to the same address is replaced by the stored value.

use crate::util;
use autophase_ir::{FuncId, InstId, Module, Opcode, Value};
use std::collections::HashMap;

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let changed = cse_function(m, fid);
        if changed {
            util::delete_dead(m, fid);
        }
        changed
    })
}

/// Hashable key for a pure computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ExprKey {
    pub mnemonic: &'static str,
    pub detail: String,
    pub operands: Vec<Value>,
}

pub(crate) fn expr_key(inst: &autophase_ir::Inst) -> Option<ExprKey> {
    let detail = match &inst.op {
        Opcode::Binary(op, a, b) => {
            // Canonicalize commutative operand order for better hits.
            let (a, b) = if op.is_commutative() {
                let mut pair = [*a, *b];
                pair.sort_by_key(|v| format!("{v:?}"));
                (pair[0], pair[1])
            } else {
                (*a, *b)
            };
            return Some(ExprKey {
                mnemonic: "bin",
                detail: format!("{}:{}", op.name(), inst.ty),
                operands: vec![a, b],
            });
        }
        Opcode::ICmp(p, ..) => p.name().to_string(),
        Opcode::Select { .. } => String::new(),
        Opcode::Cast(c, _) => format!("{}:{}", c.name(), inst.ty),
        Opcode::Gep { .. } => String::new(),
        _ => return None,
    };
    Some(ExprKey {
        mnemonic: inst.mnemonic(),
        detail,
        operands: inst.operands(),
    })
}

fn cse_function(m: &mut Module, fid: FuncId) -> bool {
    let mut changed = false;
    let blocks: Vec<_> = m.func(fid).block_ids().collect();
    for bb in blocks {
        // available pure expressions → defining instruction
        let mut avail: HashMap<ExprKey, InstId> = HashMap::new();
        // address → last known stored/loaded value
        let mut mem: HashMap<Value, Value> = HashMap::new();
        let insts: Vec<InstId> = m.func(fid).block(bb).insts.clone();
        for iid in insts {
            if !m.func(fid).inst_exists(iid) {
                continue;
            }
            let inst = m.func(fid).inst(iid).clone();
            match &inst.op {
                Opcode::Load { ptr } => {
                    if let Some(&known) = mem.get(ptr) {
                        let f = m.func_mut(fid);
                        f.replace_all_uses(Value::Inst(iid), known);
                        f.remove_inst(bb, iid);
                        changed = true;
                    } else {
                        mem.insert(*ptr, Value::Inst(iid));
                    }
                }
                Opcode::Store { ptr, value } => {
                    // Invalidate may-alias entries, then record.
                    let f = m.func(fid);
                    let keys: Vec<Value> = mem.keys().copied().collect();
                    for k in keys {
                        if util::may_alias(f, k, *ptr) {
                            mem.remove(&k);
                        }
                    }
                    mem.insert(*ptr, *value);
                }
                Opcode::Call { .. } => {
                    if !util::is_pure(m, &inst) {
                        mem.clear();
                    }
                }
                _ => {
                    if util::is_pure_no_read(m, &inst) && !inst.ty.is_void() {
                        if let Some(key) = expr_key(&inst) {
                            if let Some(&prev) = avail.get(&key) {
                                let f = m.func_mut(fid);
                                f.replace_all_uses(Value::Inst(iid), Value::Inst(prev));
                                f.remove_inst(bb, iid);
                                changed = true;
                            } else {
                                avail.insert(key, iid);
                            }
                        }
                    }
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, CmpPred, Type};

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn duplicate_adds_merged() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let x = b.binary(BinOp::Add, b.arg(0), Value::i32(3));
        let y = b.binary(BinOp::Add, b.arg(0), Value::i32(3));
        let s = b.binary(BinOp::Mul, x, y);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 3);
    }

    #[test]
    fn commutative_operands_matched() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
        let x = b.binary(BinOp::Mul, b.arg(0), b.arg(1));
        let y = b.binary(BinOp::Mul, b.arg(1), b.arg(0));
        let s = b.binary(BinOp::Add, x, y);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 3);
    }

    #[test]
    fn store_to_load_forwarding() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 1);
        b.store(p, Value::i32(42));
        let v = b.load(Type::I32, p); // forwarded
        b.ret(Some(v));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(42));
        let f = m.func(m.main().unwrap());
        let loads = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter(|&i| matches!(f.inst(i).op, Opcode::Load { .. }))
            .count();
        assert_eq!(loads, 0);
    }

    #[test]
    fn repeated_load_reused() {
        let mut b = FunctionBuilder::new("main", vec![Type::Ptr], Type::I32);
        let v1 = b.load(Type::I32, b.arg(0));
        let v2 = b.load(Type::I32, b.arg(0));
        let s = b.binary(BinOp::Add, v1, v2);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        let f = m.func(m.main().unwrap());
        let loads = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter(|&i| matches!(f.inst(i).op, Opcode::Load { .. }))
            .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn aliasing_store_invalidates() {
        // Store to unknown pointer q between load(p)s: loads not merged.
        let mut b = FunctionBuilder::new("main", vec![Type::Ptr, Type::Ptr], Type::I32);
        let v1 = b.load(Type::I32, b.arg(0));
        b.store(b.arg(1), Value::i32(0));
        let v2 = b.load(Type::I32, b.arg(0));
        let s = b.binary(BinOp::Add, v1, v2);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        run(&mut m);
        let f = m.func(m.main().unwrap());
        let loads = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter(|&i| matches!(f.inst(i).op, Opcode::Load { .. }))
            .count();
        assert_eq!(loads, 2);
    }

    #[test]
    fn cross_block_not_merged_by_early_cse() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let next = b.new_block();
        let x = b.binary(BinOp::Add, b.arg(0), Value::i32(3));
        b.br(next);
        b.switch_to(next);
        let y = b.binary(BinOp::Add, b.arg(0), Value::i32(3));
        let s = b.binary(BinOp::Mul, x, y);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m)); // early-cse is block-local; gvn handles this
    }

    #[test]
    fn different_cmp_predicates_not_merged() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let c1 = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(5));
        let c2 = b.icmp(CmpPred::Sgt, b.arg(0), Value::i32(5));
        let z1 = b.cast(autophase_ir::CastOp::ZExt, Type::I32, c1);
        let z2 = b.cast(autophase_ir::CastOp::ZExt, Type::I32, c2);
        let s = b.binary(BinOp::Add, z1, z2);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
    }
}
