//! `-licm`: loop-invariant code motion.
//!
//! Pure computations whose operands are loop-invariant are hoisted to the
//! loop preheader. Loads are hoisted when the loop contains no stores or
//! opaque calls. Calls to `readnone` functions hoist like any pure
//! instruction (the paper's Figure 1/2 motivating example: after `-inline`
//! + `-functionattrs` a `mag()`-style call hoists out of the loop).
//!
//! LICM requires a preheader — run `-loop-simplify` first, exactly as in
//! LLVM; this is one of the pass-ordering interactions the RL agent must
//! learn.

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::{find_loops, Loop};
use autophase_ir::{BlockId, FuncId, InstId, Module, Opcode, Value};

/// Run the pass. Returns true if anything was hoisted.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let mut changed = false;
        // Each round hoists every instruction that is invariant given what
        // previous rounds already hoisted; dependent chains settle in a few
        // rounds rather than one full CFG/dominator/loop reanalysis per
        // instruction.
        while hoist_round(m, fid) > 0 {
            changed = true;
        }
        changed
    })
}

/// Hoist every currently-hoistable instruction; returns how many moved.
fn hoist_round(m: &mut Module, fid: FuncId) -> usize {
    let (cfg, dt, loops) = {
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let loops = find_loops(f, &cfg, &dt);
        (cfg, dt, loops)
    };

    // Innermost-first (more blocks processed in inner loops first keeps the
    // hoisting cascading outward on repeated calls).
    let mut order: Vec<&Loop> = loops.iter().collect();
    order.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
    order.reverse();

    let mut hoisted = 0usize;
    for l in &order {
        // Values hoisted to *this loop's* preheader count as invariant for
        // later candidates of the same loop (dependent chains hoist in one
        // round). They must NOT count for other loops: an inner preheader
        // is still inside the outer loop, and does not dominate it.
        let mut hoisted_set: std::collections::HashSet<InstId> = std::collections::HashSet::new();
        let Some(preheader) = l.preheader(&cfg) else {
            continue; // needs -loop-simplify
        };
        let loop_writes = {
            let f = m.func(fid);
            l.blocks.iter().any(|&bb| {
                f.block(bb).insts.iter().any(|&i| {
                    let inst = f.inst(i);
                    matches!(inst.op, Opcode::Store { .. })
                        || (matches!(inst.op, Opcode::Call { .. }) && !util::is_pure(m, inst))
                })
            })
        };
        for &bb in &l.blocks {
            // Hoisting from conditionally-executed blocks can only move
            // *pure no-read* code (safe to over-execute); loads additionally
            // require the block to dominate all latches (it runs every
            // iteration) to keep the "would have executed anyway" claim...
            // For simplicity and safety both categories hoist only from
            // blocks dominating every latch.
            let dominates_latches = l.latches.iter().all(|&lt| dt.dominates(bb, lt));
            if !dominates_latches {
                continue;
            }
            let inst_ids: Vec<InstId> = m.func(fid).block(bb).insts.clone();
            for iid in inst_ids {
                let hoistable = {
                    let f = m.func(fid);
                    let inst = f.inst(iid).clone();
                    if inst.is_terminator()
                        || inst.is_phi()
                        || matches!(inst.op, Opcode::Alloca { .. })
                        || !util::is_pure(m, &inst)
                        || (matches!(inst.op, Opcode::Load { .. }) && loop_writes)
                    {
                        false
                    } else {
                        // All operands invariant (or hoisted this round)?
                        let f = m.func(fid);
                        let mut invariant = true;
                        inst.for_each_operand(|v| {
                            if let Value::Inst(dep) = v {
                                if hoisted_set.contains(&dep) {
                                    return;
                                }
                                if let Some(dep_bb) = f.block_of(dep) {
                                    if l.contains(dep_bb) {
                                        invariant = false;
                                    }
                                } else {
                                    invariant = false;
                                }
                            }
                        });
                        invariant
                    }
                };
                if !hoistable {
                    continue;
                }
                hoist(m.func_mut(fid), bb, iid, preheader);
                hoisted_set.insert(iid);
                hoisted += 1;
            }
        }
    }
    hoisted
}

fn hoist(f: &mut autophase_ir::Function, from: BlockId, iid: InstId, preheader: BlockId) {
    f.block_mut(from).insts.retain(|&i| i != iid);
    // Insert before the preheader's terminator.
    let pos = f.block(preheader).insts.len().saturating_sub(1);
    f.block_mut(preheader).insts.insert(pos, iid);
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_function;
    use autophase_ir::loops::analyze_loops;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, Type};

    fn in_any_loop(m: &Module, fid: FuncId, pred: impl Fn(&autophase_ir::Inst) -> bool) -> bool {
        let f = m.func(fid);
        let (_, _, loops) = analyze_loops(f);
        loops.iter().any(|l| {
            l.blocks
                .iter()
                .any(|&bb| f.block(bb).insts.iter().any(|&i| pred(f.inst(i))))
        })
    }

    #[test]
    fn invariant_mul_hoisted() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, _i| {
            let inv = b.binary(BinOp::Mul, b.arg(1), Value::i32(7)); // invariant
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, inv);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before = run_function(&m, fid, &[5, 3], 100_000).unwrap();
        assert!(run(&mut m));
        assert_verified(&m);
        let after = run_function(&m, fid, &[5, 3], 100_000).unwrap();
        assert_eq!(before.return_value, after.return_value);
        assert_eq!(after.return_value, Some(105));
        // The mul no longer executes once per iteration.
        assert!(!in_any_loop(&m, fid, |i| {
            matches!(i.op, Opcode::Binary(BinOp::Mul, ..))
        }));
        assert!(after.insts_executed < before.insts_executed);
    }

    #[test]
    fn load_hoisted_only_without_stores() {
        // Loop with stores: load of an unrelated pointer must stay.
        let mut b = FunctionBuilder::new("main", vec![Type::Ptr, Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(1), |b, _| {
            let v = b.load(Type::I32, b.arg(0)); // may alias a store? stores exist
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, v);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        run(&mut m);
        assert_verified(&m);
        assert!(in_any_loop(&m, fid, |i| matches!(
            i.op,
            Opcode::Load { .. }
        )));
    }

    #[test]
    fn load_from_readonly_loop_hoisted() {
        // No stores in the loop: the load hoists.
        let mut m = Module::new("t");
        let g = m.add_global(autophase_ir::Global::constant("k", Type::I32, vec![9]));
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let mut iv = Value::i32(0);
        b.counted_loop(b.arg(0), |b, i| {
            let v = b.load(Type::I32, Value::Global(g));
            let s = b.binary(BinOp::Add, i, v);
            let _ = s;
            iv = i;
        });
        b.ret(Some(iv));
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        assert!(run(&mut m));
        assert_verified(&m);
        assert!(!in_any_loop(&m, fid, |i| matches!(
            i.op,
            Opcode::Load { .. }
        )));
    }

    #[test]
    fn readnone_call_hoisted() {
        let mut m = Module::new("t");
        let mag = {
            let mut b = FunctionBuilder::new("mag", vec![Type::I32], Type::I32);
            let r = b.binary(BinOp::Mul, b.arg(0), b.arg(0));
            b.ret(Some(r));
            m.add_function(b.finish())
        };
        m.func_mut(mag).attrs.readnone = true;
        let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, _| {
            let v = b.call(mag, Type::I32, vec![b.arg(1)]); // invariant call
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, v);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before = run_function(&m, fid, &[10, 3], 100_000).unwrap();
        assert!(run(&mut m));
        assert_verified(&m);
        let after = run_function(&m, fid, &[10, 3], 100_000).unwrap();
        assert_eq!(before.return_value, after.return_value);
        // The call now executes once, not ten times.
        assert_eq!(after.calls(mag), 1);
        assert_eq!(before.calls(mag), 10);
    }

    #[test]
    fn opaque_call_not_hoisted() {
        let mut m = Module::new("t");
        let g = m.add_global(autophase_ir::Global::zeroed("state", Type::I32, 1));
        let tick = {
            let mut b = FunctionBuilder::new("tick", vec![], Type::I32);
            let v = b.load(Type::I32, Value::Global(g));
            let n = b.binary(BinOp::Add, v, Value::i32(1));
            b.store(Value::Global(g), n);
            b.ret(Some(n));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, _| {
            let v = b.call(tick, Type::I32, vec![]);
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, v);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before = run_function(&m, fid, &[4], 100_000).unwrap();
        run(&mut m);
        assert_verified(&m);
        let after = run_function(&m, fid, &[4], 100_000).unwrap();
        assert_eq!(before.return_value, after.return_value);
        assert_eq!(after.calls(tick), 4);
    }

    #[test]
    fn dependent_chain_hoists_over_iterations() {
        // inv2 depends on inv1; both hoist (via repeated fixpoint).
        let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, _| {
            let inv1 = b.binary(BinOp::Mul, b.arg(1), Value::i32(3));
            let inv2 = b.binary(BinOp::Add, inv1, Value::i32(5));
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, inv2);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        assert!(run(&mut m));
        assert_verified(&m);
        assert!(!in_any_loop(&m, fid, |i| {
            matches!(i.op, Opcode::Binary(BinOp::Mul, ..))
        }));
        let after = run_function(&m, fid, &[2, 1], 100_000).unwrap();
        assert_eq!(after.return_value, Some(16));
    }
}
