//! `-loop-unswitch`: hoist loop-invariant conditions out of loops.
//!
//! A conditional branch inside a loop whose condition is loop-invariant is
//! moved outside by cloning the loop: the preheader tests the condition
//! once and enters either the true-specialized or the false-specialized
//! copy. Each copy's branch is folded to one arm, so per-iteration
//! branching disappears.

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::{find_loops, Loop};
use autophase_ir::{BlockId, FuncId, InstId, Module, Opcode, Value};
use std::collections::HashMap;

/// Upper bound on loop size (blocks) cloned by unswitching.
pub const UNSWITCH_BLOCK_LIMIT: usize = 12;

/// Run the pass. Returns true if any loop was unswitched.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        // One unswitch per function per run (each doubles a loop; applying
        // the pass again picks up remaining candidates) — mirrors LLVM's
        // cost-capped behaviour.
        unswitch_once(m, fid)
    })
}

fn unswitch_once(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loops = find_loops(f, &cfg, &dt);
    let index = crate::util::UserIndex::build(f);
    for l in &loops {
        if l.blocks.len() > UNSWITCH_BLOCK_LIMIT {
            continue;
        }
        let Some(preheader) = l.preheader(&cfg) else {
            continue;
        };
        // Loop values must not be used outside the loop except through
        // dedicated-exit φs (so the clone can feed the same φs).
        if !exits_dedicated(f, &cfg, &index, l) {
            continue;
        }
        // Find an invariant condbr inside the loop (not the exit test).
        for &bb in &l.blocks {
            let Some(term) = f.terminator(bb) else {
                continue;
            };
            let Opcode::CondBr {
                cond,
                then_bb,
                else_bb,
            } = f.inst(term).op
            else {
                continue;
            };
            // Both targets in-loop (exit tests stay put).
            if !l.contains(then_bb) || !l.contains(else_bb) || then_bb == else_bb {
                continue;
            }
            if !is_invariant(f, l, cond) {
                continue;
            }
            do_unswitch(m.func_mut(fid), l, preheader, bb, term, cond);
            crate::simplifycfg::run_on_function(m, fid);
            return true;
        }
    }
    false
}

fn exits_dedicated(
    f: &autophase_ir::Function,
    cfg: &Cfg,
    index: &crate::util::UserIndex,
    l: &Loop,
) -> bool {
    // every exit's preds are all in-loop, and every outside use of a loop
    // value is a φ in an exit block
    for &e in &l.exits {
        if cfg.unique_preds(e).iter().any(|p| !l.contains(*p)) {
            return false;
        }
    }
    for &bb in &l.blocks {
        for &iid in &f.block(bb).insts {
            if f.inst(iid).ty.is_void() {
                continue;
            }
            for &(user, ubb) in index.users(iid) {
                if !l.contains(ubb) {
                    let is_exit_phi = l.exits.contains(&ubb) && f.inst(user).is_phi();
                    if !is_exit_phi {
                        return false;
                    }
                }
            }
        }
    }
    true
}

fn is_invariant(f: &autophase_ir::Function, l: &Loop, v: Value) -> bool {
    match v {
        Value::Inst(id) => match f.block_of(id) {
            Some(bb) => !l.contains(bb),
            None => false,
        },
        _ => true,
    }
}

fn do_unswitch(
    f: &mut autophase_ir::Function,
    l: &Loop,
    preheader: BlockId,
    branch_bb: BlockId,
    branch_term: InstId,
    cond: Value,
) {
    // Clone the loop: the clone is the "false" version.
    let mut vmap: HashMap<Value, Value> = HashMap::new();
    let region: Vec<BlockId> = l.blocks.clone();
    let snapshot = f.clone();
    let bmap = util::clone_region(&snapshot, &region, f, &mut vmap);

    // Original copy: branch folds to the true arm. Clone: false arm.
    let (then_bb, else_bb) = match f.inst(branch_term).op {
        Opcode::CondBr {
            then_bb, else_bb, ..
        } => (then_bb, else_bb),
        _ => unreachable!("checked condbr"),
    };
    f.inst_mut(branch_term).op = Opcode::Br { target: then_bb };
    let clone_branch_bb = bmap[&branch_bb];
    let clone_term = f
        .terminator(clone_branch_bb)
        .expect("cloned block keeps terminator");
    f.inst_mut(clone_term).op = Opcode::Br {
        target: bmap[&else_bb],
    };

    // Preheader: test once, pick a copy. The preheader previously ended in
    // `br header`.
    let pre_term = f.terminator(preheader).expect("preheader has terminator");
    f.inst_mut(pre_term).op = Opcode::CondBr {
        cond,
        then_bb: l.header,
        else_bb: bmap[&l.header],
    };

    // Cloned header φs: their preheader entry must now come from the
    // preheader (clone_region kept the out-of-region pred id, which is
    // already the preheader) — nothing to do. Exit φs gain entries from the
    // cloned exiting blocks with the cloned values.
    for &e in &l.exits {
        let phis: Vec<InstId> = f
            .block(e)
            .insts
            .iter()
            .copied()
            .filter(|&i| f.inst(i).is_phi())
            .collect();
        for phi in phis {
            let Opcode::Phi { incoming } = &f.inst(phi).op else {
                unreachable!()
            };
            let additions: Vec<(BlockId, Value)> = incoming
                .iter()
                .filter(|(p, _)| bmap.contains_key(p))
                .map(|(p, v)| (bmap[p], *vmap.get(v).unwrap_or(v)))
                .collect();
            if let Opcode::Phi { incoming } = &mut f.inst_mut(phi).op {
                for a in additions {
                    if !incoming.contains(&a) {
                        incoming.push(a);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_function;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::Type;
    use autophase_ir::{BinOp, CmpPred};

    fn unswitchable() -> Module {
        // for i in 0..n { if (flag) acc += i else acc -= i }
        let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        let flag = b.icmp(CmpPred::Ne, b.arg(1), Value::i32(0));
        b.counted_loop(b.arg(0), |b, i| {
            let t = b.new_block();
            let e = b.new_block();
            let j = b.new_block();
            b.cond_br(flag, t, e);
            b.switch_to(t);
            let c1 = b.load(Type::I32, acc);
            let n1 = b.binary(BinOp::Add, c1, i);
            b.store(acc, n1);
            b.br(j);
            b.switch_to(e);
            let c2 = b.load(Type::I32, acc);
            let n2 = b.binary(BinOp::Sub, c2, i);
            b.store(acc, n2);
            b.br(j);
            b.switch_to(j);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        m
    }

    #[test]
    fn invariant_branch_hoisted() {
        let mut m = unswitchable();
        let fid = m.main().unwrap();
        let cases: [(i64, i64); 4] = [(5, 0), (5, 1), (0, 1), (3, 0)];
        let before: Vec<_> = cases
            .iter()
            .map(|&(n, fl)| {
                run_function(&m, fid, &[n, fl], 100_000)
                    .unwrap()
                    .return_value
            })
            .collect();
        assert!(run(&mut m));
        assert_verified(&m);
        let after: Vec<_> = cases
            .iter()
            .map(|&(n, fl)| {
                run_function(&m, fid, &[n, fl], 100_000)
                    .unwrap()
                    .return_value
            })
            .collect();
        assert_eq!(before, after);
        // Per-iteration branching on the flag is gone: with flag=1 the
        // executed loop contains no Sub, with flag=0 no Add path runs.
        let t = run_function(&m, fid, &[4, 1], 100_000).unwrap();
        let f = m.func(fid);
        let mut sub_executed = false;
        for ((_, bb), count) in t.block_counts.iter().map(|((fi, bb), c)| ((*fi, *bb), *c)) {
            if count > 0 && f.block_exists(bb) {
                for &i in &f.block(bb).insts {
                    if matches!(f.inst(i).op, Opcode::Binary(BinOp::Sub, ..)) {
                        sub_executed = true;
                    }
                }
            }
        }
        assert!(!sub_executed, "flag=1 run must never touch the Sub arm");
    }

    #[test]
    fn variant_branch_untouched() {
        // Branch on i (variant): must not unswitch.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, i| {
            let t = b.new_block();
            let j = b.new_block();
            let odd = b.binary(BinOp::And, i, Value::i32(1));
            let c = b.icmp(CmpPred::Ne, odd, Value::i32(0));
            b.cond_br(c, t, j);
            b.switch_to(t);
            let c1 = b.load(Type::I32, acc);
            let n1 = b.binary(BinOp::Add, c1, i);
            b.store(acc, n1);
            b.br(j);
            b.switch_to(j);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn big_loop_not_cloned() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        let flag = b.icmp(CmpPred::Ne, b.arg(1), Value::i32(0));
        b.counted_loop(b.arg(0), |b, i| {
            // Inflate the loop body with > UNSWITCH_BLOCK_LIMIT blocks.
            for _ in 0..14 {
                let nb = b.new_block();
                b.br(nb);
                b.switch_to(nb);
            }
            let t = b.new_block();
            let j = b.new_block();
            b.cond_br(flag, t, j);
            b.switch_to(t);
            let c1 = b.load(Type::I32, acc);
            let n1 = b.binary(BinOp::Add, c1, i);
            b.store(acc, n1);
            b.br(j);
            b.switch_to(j);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        assert!(!run(&mut m));
    }
}
