//! `-reassociate`: reorder associative expression trees.
//!
//! Commutative-associative chains (`add`, `mul`, `and`, `or`, `xor`) are
//! flattened, constant leaves folded together, and the tree rebuilt with
//! the folded constant as the outermost right operand — exposing folds to
//! `-instcombine` and reducing the critical path for the HLS scheduler by
//! rebuilding as a balanced tree.

use crate::util;
use autophase_ir::{BinOp, FuncId, Inst, InstId, Module, Opcode, Value};

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let changed = reassociate_function(m, fid);
        if changed {
            util::delete_dead(m, fid);
        }
        changed
    })
}

fn reassociate_function(m: &mut Module, fid: FuncId) -> bool {
    let mut changed = false;
    let blocks: Vec<_> = m.func(fid).block_ids().collect();
    let mut index = crate::util::UserIndex::build(m.func(fid));
    for bb in blocks {
        // Roots: chain heads not themselves feeding the same-op chain.
        let insts: Vec<InstId> = m.func(fid).block(bb).insts.clone();
        for iid in insts {
            let f = m.func(fid);
            if !f.inst_exists(iid) {
                continue;
            }
            let Opcode::Binary(op, ..) = f.inst(iid).op else {
                continue;
            };
            if !op.is_associative() {
                continue;
            }
            // Skip if this inst feeds a same-op parent in the same block
            // with single use (the parent is the root).
            let uses = index.users(iid);
            if let [(parent, pbb)] = uses {
                if *pbb == bb && f.inst_exists(*parent) {
                    if let Opcode::Binary(pop, ..) = f.inst(*parent).op {
                        if pop == op {
                            continue;
                        }
                    }
                }
            }
            if rebuild_chain(m, fid, bb, iid, op, &index) {
                changed = true;
                // The chain rewrite invalidated the snapshot.
                index = crate::util::UserIndex::build(m.func(fid));
            }
        }
    }
    changed
}

/// Flatten the single-use same-block chain rooted at `root`, fold its
/// constant leaves, and rebuild as a balanced tree ending with the constant.
fn rebuild_chain(
    m: &mut Module,
    fid: FuncId,
    bb: autophase_ir::BlockId,
    root: InstId,
    op: BinOp,
    index: &crate::util::UserIndex,
) -> bool {
    let f = m.func(fid);
    let ty = f.inst(root).ty;
    // Collect leaves.
    let mut leaves: Vec<Value> = Vec::new();
    let mut members: Vec<InstId> = Vec::new();
    let mut chain_depth = 0usize;
    let mut stack = vec![(root, 1usize)];
    while let Some((iid, depth)) = stack.pop() {
        let Opcode::Binary(iop, a, b) = f.inst(iid).op else {
            unreachable!("chain member is binary")
        };
        debug_assert_eq!(iop, op);
        members.push(iid);
        chain_depth = chain_depth.max(depth);
        for v in [a, b] {
            let mut is_member = false;
            if let Value::Inst(child) = v {
                if f.inst_exists(child) && f.block_of(child) == Some(bb) {
                    if let Opcode::Binary(cop, ..) = f.inst(child).op {
                        if cop == op && index.use_count(child) == 1 {
                            stack.push((child, depth + 1));
                            is_member = true;
                        }
                    }
                }
            }
            if !is_member {
                leaves.push(v);
            }
        }
    }
    if members.len() < 2 {
        return false;
    }
    // Fold constants.
    let identity: i64 = match op {
        BinOp::Add | BinOp::Or | BinOp::Xor => 0,
        BinOp::Mul => 1,
        BinOp::And => ty.wrap(-1),
        _ => unreachable!("non-associative op"),
    };
    let mut konst = identity;
    let mut n_consts = 0;
    let mut vars: Vec<Value> = Vec::new();
    for leaf in leaves {
        if let Value::ConstInt(_, c) = leaf {
            konst = autophase_ir::fold::eval_binop(op, ty, konst, c);
            n_consts += 1;
        } else {
            vars.push(leaf);
        }
    }
    // Only rewrite when it helps: several constants fold together, an
    // identity is absorbed, or the existing *chain* is deeper than a
    // balanced rebuild would be. The depth comparison must stay within
    // the chain — measuring through leaf subexpressions (as `expr_depth`
    // does) would keep reporting "too deep" for any chain fed by a deep
    // leaf and rebuild it forever, so the pass would never reach a fixed
    // point.
    let n_leaves = vars.len().max(1);
    let balanced_depth =
        (usize::BITS - (n_leaves - 1).leading_zeros()) as usize + usize::from(konst != identity);
    let helps =
        n_consts > 1 || vars.len() + n_consts < members.len() + 1 || chain_depth > balanced_depth;
    if !helps {
        return false;
    }

    // Position of the root in the block (new instructions go right before).
    let root_pos = f
        .block(bb)
        .insts
        .iter()
        .position(|&i| i == root)
        .expect("root placed in bb");

    // Build a balanced tree of the variable leaves, then apply the constant.
    let fm = m.func_mut(fid);
    let mut layer: Vec<Value> = vars;
    if layer.is_empty() {
        layer.push(Value::ConstInt(ty, konst));
        konst = identity;
    }
    let mut insert_at = root_pos;
    while layer.len() > 1 {
        let mut next: Vec<Value> = Vec::new();
        let mut it = layer.chunks(2);
        for pair in &mut it {
            match pair {
                [a, b] => {
                    let id =
                        fm.insert_inst(bb, insert_at, Inst::new(ty, Opcode::Binary(op, *a, *b)));
                    insert_at += 1;
                    next.push(Value::Inst(id));
                }
                [a] => next.push(*a),
                _ => unreachable!(),
            }
        }
        layer = next;
    }
    let mut result = layer[0];
    if konst != identity {
        let id = fm.insert_inst(
            bb,
            insert_at,
            Inst::new(ty, Opcode::Binary(op, result, Value::ConstInt(ty, konst))),
        );
        result = Value::Inst(id);
    }
    fm.replace_all_uses(Value::Inst(root), result);
    // The old chain is now dead; delete_dead (run by caller) removes it,
    // but remove the root eagerly so it is not misidentified as a chain.
    fm.remove_inst(bb, root);
    true
}

/// Helper shared with tests: depth of the expression tree rooted at `v`.
pub fn expr_depth(f: &autophase_ir::Function, v: Value) -> usize {
    match v {
        Value::Inst(id) if f.inst_exists(id) => match f.inst(id).op {
            Opcode::Binary(_, a, b) => 1 + expr_depth(f, a).max(expr_depth(f, b)),
            _ => 1,
        },
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_function;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::Type;

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn constants_grouped_and_folded() {
        // ((x + 1) + y) + 2  →  (x + y) + 3
        let mut b = FunctionBuilder::new("main", vec![Type::I32, Type::I32], Type::I32);
        let a = b.binary(BinOp::Add, b.arg(0), Value::i32(1));
        let c = b.binary(BinOp::Add, a, b.arg(1));
        let d = b.binary(BinOp::Add, c, Value::i32(2));
        b.ret(Some(d));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        let f = m.func(m.main().unwrap());
        let consts: Vec<i64> = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter_map(|i| match f.inst(i).op {
                Opcode::Binary(BinOp::Add, _, Value::ConstInt(_, c)) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(consts, vec![3]);
        let r = run_function(&m, m.main().unwrap(), &[10, 20], 100).unwrap();
        assert_eq!(r.return_value, Some(33));
    }

    #[test]
    fn long_chain_balanced() {
        // a+b+c+d+e+f+g+h: linear depth 8 → balanced depth ~3 (+1 per level).
        let mut b = FunctionBuilder::new("main", vec![Type::I32; 8], Type::I32);
        let mut acc = b.arg(0);
        for i in 1..8 {
            acc = b.binary(BinOp::Add, acc, b.arg(i));
        }
        b.ret(Some(acc));
        let mut m = module_with(b.finish());
        let fid = m.main().unwrap();
        let args: Vec<i64> = (1..=8).collect();
        let before = run_function(&m, fid, &args, 100).unwrap().return_value;
        assert!(run(&mut m));
        assert_verified(&m);
        let after = run_function(&m, fid, &args, 100).unwrap().return_value;
        assert_eq!(before, after);
        // Find the ret operand and measure depth.
        let f = m.func(fid);
        let term = f.terminator(f.entry).unwrap();
        let root = match f.inst(term).op {
            Opcode::Ret { value: Some(v) } => v,
            _ => panic!(),
        };
        assert!(expr_depth(f, root) <= 4, "depth {}", expr_depth(f, root));
    }

    #[test]
    fn mul_identity_absorbed() {
        // (x * 4) * 1 → constants folded, single mul by 4 remains.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let a = b.binary(BinOp::Mul, b.arg(0), Value::i32(4));
        let c = b.binary(BinOp::Mul, a, Value::i32(1));
        b.ret(Some(c));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        let f = m.func(m.main().unwrap());
        assert_eq!(f.num_insts(), 2);
    }

    #[test]
    fn non_associative_untouched() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let a = b.binary(BinOp::Sub, b.arg(0), Value::i32(1));
        let c = b.binary(BinOp::Sub, a, Value::i32(2));
        b.ret(Some(c));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn multi_use_member_is_chain_boundary() {
        // a = x + 1 used twice: must not be folded into the chain.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let a = b.binary(BinOp::Add, b.arg(0), Value::i32(1));
        let c = b.binary(BinOp::Add, a, Value::i32(2));
        let d = b.binary(BinOp::Mul, a, c);
        b.ret(Some(d));
        let mut m = module_with(b.finish());
        let before = run_function(&m, m.main().unwrap(), &[5], 100)
            .unwrap()
            .return_value;
        run(&mut m);
        assert_verified(&m);
        let after = run_function(&m, m.main().unwrap(), &[5], 100)
            .unwrap()
            .return_value;
        assert_eq!(before, after);
        assert_eq!(after, Some(48)); // 6 * 8
    }

    #[test]
    fn xor_chain_with_constants() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let a = b.binary(BinOp::Xor, b.arg(0), Value::i32(0xF0));
        let c = b.binary(BinOp::Xor, a, Value::i32(0x0F));
        b.ret(Some(c));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        let r = run_function(&m, m.main().unwrap(), &[0], 100).unwrap();
        assert_eq!(r.return_value, Some(0xFF));
    }
}
