//! `-tailcallelim`: turn self-recursive tail calls into loops.
//!
//! A call to the enclosing function immediately followed by `ret` of the
//! call's result (or a bare `ret` for void) is replaced by a jump back to a
//! loop header inserted after the entry block, with φ-nodes carrying the
//! updated "arguments". The paper's Table 2 discussion calls this out as a
//! branch-count-correlated pass.

use autophase_ir::{BlockId, FuncId, Inst, InstId, Module, Opcode, Type, Value};

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    let fids: Vec<FuncId> = m.func_ids().collect();
    let mut changed = false;
    for fid in fids {
        changed |= eliminate(m, fid);
    }
    changed
}

fn eliminate(m: &mut Module, fid: FuncId) -> bool {
    // Find tail sites: blocks ending [call self(args...), ret <callres|void>].
    let f = m.func(fid);
    let mut sites: Vec<(BlockId, InstId, Vec<Value>)> = Vec::new();
    for bb in f.block_ids() {
        let insts = &f.block(bb).insts;
        if insts.len() < 2 {
            continue;
        }
        let term = insts[insts.len() - 1];
        let call = insts[insts.len() - 2];
        let Opcode::Call { callee, args } = &f.inst(call).op else {
            continue;
        };
        if *callee != fid {
            continue;
        }
        let ok = match &f.inst(term).op {
            Opcode::Ret { value: Some(v) } => *v == Value::Inst(call),
            Opcode::Ret { value: None } => f.ret_ty.is_void(),
            _ => false,
        };
        if ok {
            sites.push((bb, call, args.clone()));
        }
    }
    if sites.is_empty() {
        return false;
    }

    let f = m.func_mut(fid);
    let entry_before_split = f.entry;
    let n_params = f.params.len();
    let param_tys = f.params.clone();

    // Split the entry block after position -1: everything in the old entry
    // moves to a new "header" block that we can branch back to. The new
    // entry only jumps to the header.
    let old_entry = f.entry;
    let header = f.add_block();
    let moved: Vec<InstId> = std::mem::take(&mut f.block_mut(old_entry).insts);
    f.block_mut(header).insts = moved;
    // Retarget successors' φs (they flowed from old_entry, now from header).
    let succs: Vec<BlockId> = f
        .terminator(header)
        .map(|t| f.inst(t).successors())
        .unwrap_or_default();
    for s in succs {
        f.retarget_phis(s, old_entry, header);
    }
    // `old_entry` stays the function entry and now only forwards to the
    // header (φs cannot live in the entry block).
    let br = f.add_inst(Inst::new(Type::Void, Opcode::Br { target: header }));
    f.block_mut(old_entry).insts.push(br);

    // One φ per parameter, living in the header (preds: entry + each site).
    let mut param_phis: Vec<InstId> = Vec::new();
    for (i, ty) in param_tys.iter().enumerate() {
        let phi = f.insert_inst(
            header,
            i,
            Inst::new(
                *ty,
                Opcode::Phi {
                    incoming: vec![(old_entry, Value::Arg(i as u32))],
                },
            ),
        );
        param_phis.push(phi);
    }
    // Rewrite every argument use to the φs (including the tail-call
    // argument lists: the next iteration's values are computed from the
    // current φs). Only the φs' own incoming-from-entry entries keep the
    // raw arguments.
    for bb in f.block_ids().collect::<Vec<_>>() {
        let ids: Vec<InstId> = f.block(bb).insts.clone();
        for iid in ids {
            if param_phis.contains(&iid) {
                continue;
            }
            let inst = f.inst_mut(iid);
            inst.for_each_operand_mut(|v| {
                if let Value::Arg(i) = *v {
                    if (i as usize) < n_params {
                        *v = Value::Inst(param_phis[i as usize]);
                    }
                }
            });
        }
    }

    // A tail site in the old entry block moved into the header with the
    // rest of the entry's instructions.
    let sites: Vec<(BlockId, InstId, Vec<Value>)> = sites
        .into_iter()
        .map(|(bb, call, args)| {
            if bb == entry_before_split {
                (header, call, args)
            } else {
                (bb, call, args)
            }
        })
        .collect();

    // Rewrite each tail site: drop call+ret, branch to header, feed φs with
    // the (already rewritten, φ-based) argument values.
    for (bb, call, _) in &sites {
        let args = match &f.inst(*call).op {
            Opcode::Call { args, .. } => args.clone(),
            _ => unreachable!("site is a call"),
        };
        let insts = &mut f.block_mut(*bb).insts;
        let term = insts.pop().expect("site has ret");
        let call_id = insts.pop().expect("site has call");
        debug_assert_eq!(call_id, *call);
        f.erase_inst(term);
        f.erase_inst(call_id);
        let br = f.add_inst(Inst::new(Type::Void, Opcode::Br { target: header }));
        f.block_mut(*bb).insts.push(br);
        for (i, phi) in param_phis.iter().enumerate() {
            if let Opcode::Phi { incoming } = &mut f.inst_mut(*phi).op {
                incoming.push((*bb, args.get(i).copied().unwrap_or(Value::Undef(Type::I32))));
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::{run_function, run_main};
    use autophase_ir::loops::analyze_loops;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, CmpPred};

    /// sum(n, acc) = n == 0 ? acc : sum(n - 1, acc + n)
    fn tail_sum() -> Module {
        let mut m = Module::new("t");
        let fid = autophase_ir::FuncId::from_index(0);
        let mut b = FunctionBuilder::new("sum", vec![Type::I32, Type::I32], Type::I32);
        let base = b.new_block();
        let rec = b.new_block();
        let c = b.icmp(CmpPred::Eq, b.arg(0), Value::i32(0));
        b.cond_br(c, base, rec);
        b.switch_to(base);
        b.ret(Some(b.arg(1)));
        b.switch_to(rec);
        let n1 = b.binary(BinOp::Sub, b.arg(0), Value::i32(1));
        let a1 = b.binary(BinOp::Add, b.arg(1), b.arg(0));
        let r = b.call(fid, Type::I32, vec![n1, a1]);
        b.ret(Some(r));
        assert_eq!(m.add_function(b.finish()), fid);

        let mut mb = FunctionBuilder::new("main", vec![], Type::I32);
        let r = mb.call(fid, Type::I32, vec![Value::i32(10), Value::i32(0)]);
        mb.ret(Some(r));
        m.add_function(mb.finish());
        m
    }

    #[test]
    fn tail_recursion_becomes_loop() {
        let mut m = tail_sum();
        let before = run_main(&m, 100_000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
        assert_eq!(before, Some(55));
        // sum no longer calls itself…
        let sum = m.func_by_name("sum").unwrap();
        let f = m.func(sum);
        let has_self_call = f.block_ids().any(|bb| {
            f.block(bb)
                .insts
                .iter()
                .any(|&i| matches!(f.inst(i).op, Opcode::Call { callee, .. } if callee == sum))
        });
        assert!(!has_self_call);
        // …and now contains a loop.
        let (_, _, loops) = analyze_loops(f);
        assert_eq!(loops.len(), 1);
        // Deep recursion no longer overflows: 100k iterations run fine.
        let t = run_function(&m, sum, &[100_000, 0], 10_000_000).unwrap();
        assert_eq!(t.return_value, Some(705_082_704)); // sum 1..=100000 wrapped to i32
    }

    #[test]
    fn non_tail_recursion_untouched() {
        // fib has calls not in tail position.
        let mut m = Module::new("t");
        let fid = autophase_ir::FuncId::from_index(0);
        let mut b = FunctionBuilder::new("fib", vec![Type::I32], Type::I32);
        let base = b.new_block();
        let rec = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(2));
        b.cond_br(c, base, rec);
        b.switch_to(base);
        b.ret(Some(b.arg(0)));
        b.switch_to(rec);
        let n1 = b.binary(BinOp::Sub, b.arg(0), Value::i32(1));
        let f1 = b.call(fid, Type::I32, vec![n1]);
        let n2 = b.binary(BinOp::Sub, b.arg(0), Value::i32(2));
        let f2 = b.call(fid, Type::I32, vec![n2]);
        let s = b.binary(BinOp::Add, f1, f2);
        b.ret(Some(s));
        m.add_function(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn void_tail_call_eliminated() {
        let mut m = Module::new("t");
        let g = m.add_global(autophase_ir::Global::zeroed("out", Type::I32, 1));
        let fid = autophase_ir::FuncId::from_index(0);
        let mut b = FunctionBuilder::new("count_down", vec![Type::I32], Type::Void);
        let base = b.new_block();
        let rec = b.new_block();
        let c = b.icmp(CmpPred::Sle, b.arg(0), Value::i32(0));
        b.cond_br(c, base, rec);
        b.switch_to(base);
        b.ret(None);
        b.switch_to(rec);
        let cur = b.load(Type::I32, Value::Global(g));
        let nxt = b.binary(BinOp::Add, cur, Value::i32(1));
        b.store(Value::Global(g), nxt);
        let n1 = b.binary(BinOp::Sub, b.arg(0), Value::i32(1));
        b.call(fid, Type::Void, vec![n1]);
        b.ret(None);
        assert_eq!(m.add_function(b.finish()), fid);
        let mut mb = FunctionBuilder::new("main", vec![], Type::I32);
        mb.call(fid, Type::Void, vec![Value::i32(5)]);
        let v = mb.load(Type::I32, Value::Global(g));
        mb.ret(Some(v));
        m.add_function(mb.finish());

        let before = run_main(&m, 100_000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
        assert_eq!(before, Some(5));
    }
}
