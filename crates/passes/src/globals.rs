//! Module-level passes: `-globalopt`, `-globaldce`, `-constmerge`.

use crate::memcpyopt;
use autophase_ir::{GlobalId, Module, Opcode, Value};
use std::collections::HashSet;

/// `-globalopt`: mark never-written globals constant, fold loads from
/// constants, and delete stores to globals that are never read.
/// Returns true on change.
pub fn run_globalopt(m: &mut Module) -> bool {
    let mut changed = false;

    // 1. A global with no stores anywhere becomes constant.
    let stored: HashSet<GlobalId> = collect_accessed(m, true);
    for gid in m.global_ids().collect::<Vec<_>>() {
        if !stored.contains(&gid) && !m.global(gid).is_const {
            m.global_mut(gid).is_const = true;
            changed = true;
        }
    }

    // 2. Fold loads from constants (shared helper with -memcpyopt).
    for fid in m.func_ids().collect::<Vec<_>>() {
        changed |= memcpyopt::fold_const_loads(m, fid);
    }

    // 3. Stores to globals never loaded (and never escaping through
    //    non-constant geps we can't root) are dead.
    let loaded: HashSet<GlobalId> = collect_accessed(m, false);
    let escaped = collect_escaping(m);
    let mut any_removed = false;
    for fid in m.func_ids().collect::<Vec<_>>() {
        let f = m.func(fid);
        let mut victims = Vec::new();
        for bb in f.block_ids() {
            for &iid in &f.block(bb).insts {
                if let Opcode::Store { ptr, .. } = f.inst(iid).op {
                    if let Some(gid) = global_root(f, ptr) {
                        if !loaded.contains(&gid) && !escaped.contains(&gid) {
                            victims.push((bb, iid));
                        }
                    }
                }
            }
        }
        if !victims.is_empty() {
            let f = m.func_mut(fid);
            for (bb, iid) in victims {
                f.remove_inst(bb, iid);
            }
            any_removed = true;
        }
    }
    if any_removed {
        for fid in m.func_ids().collect::<Vec<_>>() {
            crate::util::delete_dead(m, fid);
        }
        changed = true;
    }
    changed
}

/// `-globaldce`: remove functions and globals with no remaining references
/// (reachability from `main`). Returns true on change.
pub fn run_globaldce(m: &mut Module) -> bool {
    let Some(main) = m.main() else { return false };
    // Reachable functions.
    let mut live_funcs = HashSet::from([main]);
    let mut work = vec![main];
    let mut live_globals: HashSet<GlobalId> = HashSet::new();
    while let Some(fid) = work.pop() {
        let f = m.func(fid);
        for bb in f.block_ids() {
            for (_, inst) in f.insts_in(bb) {
                if let Opcode::Call { callee, .. } = inst.op {
                    if m.func_exists(callee) && live_funcs.insert(callee) {
                        work.push(callee);
                    }
                }
                inst.for_each_operand(|v| {
                    if let Value::Global(g) = v {
                        live_globals.insert(g);
                    }
                });
            }
        }
    }
    let mut changed = false;
    for fid in m.func_ids().collect::<Vec<_>>() {
        if !live_funcs.contains(&fid) {
            m.remove_function(fid);
            changed = true;
        }
    }
    for gid in m.global_ids().collect::<Vec<_>>() {
        if !live_globals.contains(&gid) {
            m.remove_global(gid);
            changed = true;
        }
    }
    changed
}

/// `-constmerge`: deduplicate identical constant globals, rewriting all
/// references to the surviving one. Returns true on change.
pub fn run_constmerge(m: &mut Module) -> bool {
    let gids: Vec<GlobalId> = m.global_ids().collect();
    let mut changed = false;
    for (i, &a) in gids.iter().enumerate() {
        if !m.global_exists(a) || !m.global(a).is_const {
            continue;
        }
        for &b in &gids[i + 1..] {
            if !m.global_exists(b) || !m.global(b).is_const {
                continue;
            }
            let (ga, gb) = (m.global(a), m.global(b));
            let same = ga.elem_ty == gb.elem_ty
                && ga.count == gb.count
                && (0..ga.count as usize).all(|k| ga.init_at(k) == gb.init_at(k));
            if !same {
                continue;
            }
            // Rewrite references to b → a, then remove b.
            for fid in m.func_ids().collect::<Vec<_>>() {
                m.func_mut(fid)
                    .replace_all_uses(Value::Global(b), Value::Global(a));
            }
            m.remove_global(b);
            changed = true;
        }
    }
    changed
}

fn collect_accessed(m: &Module, stores: bool) -> HashSet<GlobalId> {
    let mut out = HashSet::new();
    for fid in m.func_ids() {
        let f = m.func(fid);
        for bb in f.block_ids() {
            for (_, inst) in f.insts_in(bb) {
                match &inst.op {
                    Opcode::Store { ptr, value } if stores => {
                        if let Some(g) = global_root(f, *ptr) {
                            out.insert(g);
                        }
                        // A global address stored *as data* counts as a
                        // potential write target.
                        if let Some(g) = global_root(f, *value) {
                            out.insert(g);
                        }
                    }
                    Opcode::Load { ptr } if !stores => {
                        if let Some(g) = global_root(f, *ptr) {
                            out.insert(g);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// Globals whose address flows somewhere we cannot track (call arguments,
/// stored as data, pointer arithmetic beyond geps).
fn collect_escaping(m: &Module) -> HashSet<GlobalId> {
    let mut out = HashSet::new();
    for fid in m.func_ids() {
        let f = m.func(fid);
        for bb in f.block_ids() {
            for (_, inst) in f.insts_in(bb) {
                match &inst.op {
                    Opcode::Load { .. } => {}
                    Opcode::Store { ptr: _, value } => {
                        if let Some(g) = global_root(f, *value) {
                            out.insert(g);
                        }
                    }
                    Opcode::Gep { .. } => {}
                    _ => {
                        inst.for_each_operand(|v| {
                            if let Some(g) = global_root(f, v) {
                                out.insert(g);
                            }
                        });
                    }
                }
            }
        }
    }
    out
}

fn global_root(f: &autophase_ir::Function, v: Value) -> Option<GlobalId> {
    match crate::util::pointer_root(f, v) {
        Some(Value::Global(g)) => Some(g),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::module::Global;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::Type;

    #[test]
    fn globalopt_promotes_unwritten_global_to_const() {
        let mut m = Module::new("t");
        let g = m.add_global(Global {
            name: "tbl".into(),
            elem_ty: Type::I32,
            count: 2,
            init: vec![5, 6],
            is_const: false,
        });
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let v = b.load(Type::I32, Value::Global(g));
        b.ret(Some(v));
        m.add_function(b.finish());
        assert!(run_globalopt(&mut m));
        assert_verified(&m);
        assert!(m.global(g).is_const);
        // And the load was folded.
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(5));
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 1);
    }

    #[test]
    fn globalopt_removes_write_only_global_stores() {
        let mut m = Module::new("t");
        let g = m.add_global(Global::zeroed("sinkhole", Type::I32, 4));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.gep(Value::Global(g), Value::i32(1));
        b.store(p, Value::i32(9));
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        assert!(run_globalopt(&mut m));
        assert_verified(&m);
        let f = m.func(m.main().unwrap());
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn globaldce_removes_unreferenced() {
        let mut m = Module::new("t");
        let dead_g = m.add_global(Global::zeroed("unused", Type::I32, 8));
        let dead_f = {
            let mut b = FunctionBuilder::new("never_called", vec![], Type::Void);
            b.ret(None);
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        assert!(run_globaldce(&mut m));
        assert!(!m.func_exists(dead_f));
        assert!(!m.global_exists(dead_g));
        assert_verified(&m);
    }

    #[test]
    fn globaldce_keeps_transitively_called() {
        let mut m = Module::new("t");
        let leaf = {
            let mut b = FunctionBuilder::new("leaf", vec![], Type::I32);
            b.ret(Some(Value::i32(3)));
            m.add_function(b.finish())
        };
        let mid = {
            let mut b = FunctionBuilder::new("mid", vec![], Type::I32);
            let r = b.call(leaf, Type::I32, vec![]);
            b.ret(Some(r));
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let r = b.call(mid, Type::I32, vec![]);
        b.ret(Some(r));
        m.add_function(b.finish());
        assert!(!run_globaldce(&mut m));
        assert!(m.func_exists(leaf) && m.func_exists(mid));
    }

    #[test]
    fn constmerge_merges_identical_tables() {
        let mut m = Module::new("t");
        let g1 = m.add_global(Global::constant("a", Type::I32, vec![1, 2, 3]));
        let g2 = m.add_global(Global::constant("b", Type::I32, vec![1, 2, 3]));
        let g3 = m.add_global(Global::constant("c", Type::I32, vec![1, 2, 4]));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p1 = b.gep(Value::Global(g1), Value::i32(0));
        let p2 = b.gep(Value::Global(g2), Value::i32(1));
        let p3 = b.gep(Value::Global(g3), Value::i32(2));
        let v1 = b.load(Type::I32, p1);
        let v2 = b.load(Type::I32, p2);
        let v3 = b.load(Type::I32, p3);
        let s1 = b.binary(autophase_ir::BinOp::Add, v1, v2);
        let s2 = b.binary(autophase_ir::BinOp::Add, s1, v3);
        b.ret(Some(s2));
        m.add_function(b.finish());
        let before = run_main(&m, 100).unwrap().return_value;
        assert!(run_constmerge(&mut m));
        assert_verified(&m);
        assert!(!m.global_exists(g2));
        assert!(m.global_exists(g3));
        assert_eq!(run_main(&m, 100).unwrap().return_value, before);
    }
}
