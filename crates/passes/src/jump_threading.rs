//! `-jump-threading`: thread control flow through blocks whose branch
//! outcome is known per-predecessor.
//!
//! The classic pattern: a block branches on a φ of constants. Each
//! predecessor contributing a constant already determines the branch, so
//! it can jump straight to the resolved target, bypassing the block.

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::{BlockId, FuncId, Module, Opcode, Value};

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let mut changed = false;
        // One threading opportunity per iteration (CFG edits invalidate
        // the analysis), to a fixpoint.
        while thread_once(m, fid) {
            changed = true;
        }
        if changed {
            crate::simplifycfg::run_on_function(m, fid);
        }
        changed
    })
}

fn thread_once(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    for &bb in cfg.rpo() {
        let Some(term) = f.terminator(bb) else {
            continue;
        };
        let Opcode::CondBr {
            cond: Value::Inst(phi_id),
            then_bb,
            else_bb,
        } = f.inst(term).op
        else {
            continue;
        };
        if !f.inst_exists(phi_id) || f.block_of(phi_id) != Some(bb) {
            continue;
        }
        let Opcode::Phi { incoming } = &f.inst(phi_id).op else {
            continue;
        };
        // The block must be "threadable": only the φ and the terminator
        // (any other instruction would be skipped for the threaded preds,
        // which is safe only when it is pure and unused — keep it simple).
        let extra_work = f
            .block(bb)
            .insts
            .iter()
            .any(|&i| i != phi_id && i != term && !f.inst(i).is_phi());
        if extra_work {
            continue;
        }
        // φ-heavy blocks: threading would need to materialize other φs for
        // the bypassed path; skip if any other φ exists.
        let other_phis = f
            .block(bb)
            .insts
            .iter()
            .any(|&i| i != phi_id && f.inst(i).is_phi());
        if other_phis {
            continue;
        }

        // Find a predecessor with a constant incoming value.
        let mut choice: Option<(BlockId, BlockId)> = None;
        for (pred, v) in incoming {
            if let Value::ConstInt(_, c) = v {
                // Threading is only simple when the pred reaches bb by a
                // unique edge (not both arms of its own condbr).
                let edges = cfg.preds(bb).iter().filter(|&&p| p == *pred).count();
                if edges != 1 {
                    continue;
                }
                let target = if *c != 0 { then_bb } else { else_bb };
                if target == bb {
                    continue;
                }
                // The target must tolerate a new predecessor: it must not
                // already have φs fed by `pred` (duplicate pred entries).
                let target_preds = cfg.unique_preds(target);
                if target_preds.contains(pred) {
                    continue;
                }
                choice = Some((*pred, target));
                break;
            }
        }
        let Some((pred, target)) = choice else {
            continue;
        };

        // Rewire: pred's edge bb → target.
        let fm = m.func_mut(fid);
        if let Some(pterm) = fm.terminator(pred) {
            fm.inst_mut(pterm).for_each_successor_mut(|s| {
                if *s == bb {
                    *s = target;
                }
            });
        }
        // bb's φ loses the pred entry.
        fm.remove_phi_edge(bb, pred);
        // target's φs gain an entry from pred with the value they had from bb.
        let phi_ids: Vec<_> = fm
            .block(target)
            .insts
            .iter()
            .copied()
            .filter(|&i| fm.inst(i).is_phi())
            .collect();
        for pid in phi_ids {
            if let Opcode::Phi { incoming } = &mut fm.inst_mut(pid).op {
                if let Some((_, v)) = incoming.iter().find(|(p, _)| *p == bb).copied() {
                    incoming.push((pred, v));
                }
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_function;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{CmpPred, Type};

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    /// The canonical threading example:
    /// ```text
    /// entry: br (x<0), a, b
    /// a: br merge          // contributes φ=true
    /// b: br merge          // contributes φ=cond2
    /// merge: φ; br φ, t, f
    /// ```
    /// After threading, `a` jumps straight to `t`.
    #[test]
    fn threads_constant_phi_edge() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let a_bb = b.new_block();
        let b_bb = b.new_block();
        let merge = b.new_block();
        let t = b.new_block();
        let e = b.new_block();
        let c1 = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c1, a_bb, b_bb);
        b.switch_to(a_bb);
        b.br(merge);
        b.switch_to(b_bb);
        let c2 = b.icmp(CmpPred::Sgt, b.arg(0), Value::i32(100));
        b.br(merge);
        b.switch_to(merge);
        let p = b.phi(Type::I1, vec![(a_bb, Value::TRUE), (b_bb, c2)]);
        b.cond_br(p, t, e);
        b.switch_to(t);
        b.ret(Some(Value::i32(1)));
        b.switch_to(e);
        b.ret(Some(Value::i32(2)));
        let mut m = module_with(b.finish());
        let fid = m.main().unwrap();
        let before: Vec<_> = [-5, 0, 50, 200]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100).unwrap().return_value)
            .collect();
        assert!(run(&mut m));
        assert_verified(&m);
        let after: Vec<_> = [-5, 0, 50, 200]
            .iter()
            .map(|&x| run_function(&m, fid, &[x], 100).unwrap().return_value)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn no_thread_without_constant_phi() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(Some(Value::i32(1)));
        b.switch_to(e);
        b.ret(Some(Value::i32(2)));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn threaded_block_with_work_skipped() {
        // merge block computes something: not threadable.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let a_bb = b.new_block();
        let b_bb = b.new_block();
        let merge = b.new_block();
        let t = b.new_block();
        let e = b.new_block();
        let c1 = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c1, a_bb, b_bb);
        b.switch_to(a_bb);
        b.br(merge);
        b.switch_to(b_bb);
        b.br(merge);
        b.switch_to(merge);
        let p = b.phi(Type::I1, vec![(a_bb, Value::TRUE), (b_bb, Value::FALSE)]);
        let work = b.binary(autophase_ir::BinOp::Add, b.arg(0), Value::i32(1));
        b.cond_br(p, t, e);
        b.switch_to(t);
        b.ret(Some(work));
        b.switch_to(e);
        b.ret(Some(Value::i32(2)));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
    }
}
