//! `-mem2reg`: promote memory to SSA registers.
//!
//! Single-element allocas whose address never escapes (used only by direct
//! loads and stores of the element type) are rewritten into SSA form with
//! φ-nodes placed on iterated dominance frontiers, then renamed along the
//! dominator tree — the classic Cytron et al. construction.

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::{BlockId, FuncId, Inst, InstId, Module, Opcode, Value};
use std::collections::{HashMap, HashSet};

/// Run the pass. Returns true if any alloca was promoted.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, promote_function)
}

/// Find promotable allocas in one function and promote them all.
fn promote_function(m: &mut Module, fid: FuncId) -> bool {
    let candidates = promotable_allocas(m.func(fid));
    if candidates.is_empty() {
        return false;
    }
    for alloca in candidates {
        promote_one(m.func_mut(fid), alloca);
    }
    util::delete_dead(m, fid);
    true
}

/// Allocas that can be promoted: one element, and every use is a direct
/// `load`/`store` of a matching integer type with the alloca as the
/// *address* (never as the stored value, a `gep` base, a cast input, or a
/// call argument).
pub fn promotable_allocas(f: &autophase_ir::Function) -> Vec<InstId> {
    let mut out = Vec::new();
    for bb in f.block_ids() {
        'cand: for &iid in &f.block(bb).insts {
            let Opcode::Alloca { elem_ty, count } = f.inst(iid).op else {
                continue;
            };
            if count != 1 || !elem_ty.is_int() {
                continue;
            }
            let addr = Value::Inst(iid);
            for (user, _) in f.users(addr) {
                match &f.inst(user).op {
                    Opcode::Load { ptr } if *ptr == addr => {
                        if f.inst(user).ty != elem_ty {
                            continue 'cand;
                        }
                    }
                    Opcode::Store { ptr, value } if *ptr == addr && *value != addr => {
                        if util::type_of(f, *value) != elem_ty {
                            continue 'cand;
                        }
                    }
                    _ => continue 'cand,
                }
            }
            out.push(iid);
        }
    }
    out
}

/// Promote one alloca to SSA.
fn promote_one(f: &mut autophase_ir::Function, alloca: InstId) {
    let elem_ty = match f.inst(alloca).op {
        Opcode::Alloca { elem_ty, .. } => elem_ty,
        _ => unreachable!("promote_one on non-alloca"),
    };
    let addr = Value::Inst(alloca);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);

    // Blocks containing a store (definitions).
    let mut def_blocks: Vec<BlockId> = Vec::new();
    for bb in f.block_ids() {
        let defines = f
            .block(bb)
            .insts
            .iter()
            .any(|&i| matches!(&f.inst(i).op, Opcode::Store { ptr, .. } if *ptr == addr));
        if defines && !def_blocks.contains(&bb) {
            def_blocks.push(bb);
        }
    }

    // Place φ-nodes on the iterated dominance frontier of the defs.
    let df = dt.dominance_frontiers(&cfg);
    let mut phi_blocks: HashSet<BlockId> = HashSet::new();
    let mut work = def_blocks.clone();
    while let Some(bb) = work.pop() {
        for &fr in df.get(&bb).map(Vec::as_slice).unwrap_or(&[]) {
            if phi_blocks.insert(fr) {
                work.push(fr);
            }
        }
    }
    let mut phi_of_block: HashMap<BlockId, InstId> = HashMap::new();
    // Place φs in function block order, not HashSet order: φ InstIds must
    // be assigned deterministically or repeated runs of the pass print
    // differently, which breaks fingerprint-keyed caching.
    let ordered: Vec<BlockId> = f.block_ids().filter(|bb| phi_blocks.contains(bb)).collect();
    for bb in ordered {
        if !cfg.is_reachable(bb) {
            continue;
        }
        let phi = f.insert_inst(bb, 0, Inst::new(elem_ty, Opcode::Phi { incoming: vec![] }));
        phi_of_block.insert(bb, phi);
    }

    // Rename along the dominator tree.
    let mut stack: Vec<(BlockId, Value)> = vec![(f.entry, Value::Undef(elem_ty))];
    let mut visited: HashSet<BlockId> = HashSet::new();
    while let Some((bb, mut cur)) = stack.pop() {
        if !visited.insert(bb) {
            continue;
        }
        if let Some(&phi) = phi_of_block.get(&bb) {
            cur = Value::Inst(phi);
        }
        let insts: Vec<InstId> = f.block(bb).insts.clone();
        for iid in insts {
            match f.inst(iid).op.clone() {
                Opcode::Load { ptr } if ptr == addr => {
                    f.replace_all_uses(Value::Inst(iid), cur);
                    f.remove_inst(bb, iid);
                }
                Opcode::Store { ptr, value } if ptr == addr => {
                    cur = value;
                    f.remove_inst(bb, iid);
                }
                _ => {}
            }
        }
        // Feed successors' φ-nodes.
        for succ in f.successors(bb) {
            if let Some(&phi) = phi_of_block.get(&succ) {
                if let Opcode::Phi { incoming } = &mut f.inst_mut(phi).op {
                    if !incoming.iter().any(|(p, _)| *p == bb) {
                        incoming.push((bb, cur));
                    }
                }
            }
        }
        // Recurse into dominator-tree children with the current value.
        for child in dt.children(bb) {
            stack.push((child, cur));
        }
    }

    // Some placed φs may sit in blocks with predecessors never visited
    // (unreachable); those entries simply stay absent, matching the
    // verifier's reachable-only φ rule. Remove φs that ended up with no
    // incoming entries (in unreachable code).
    let mut placed: Vec<(BlockId, InstId)> = phi_of_block.iter().map(|(&b, &p)| (b, p)).collect();
    placed.sort_unstable();
    for (bb, phi) in placed {
        let empty = matches!(&f.inst(phi).op, Opcode::Phi { incoming } if incoming.is_empty());
        if empty {
            f.replace_all_uses(Value::Inst(phi), Value::Undef(elem_ty));
            f.remove_inst(bb, phi);
        }
    }

    // The alloca itself is now unused.
    if f.count_uses(addr) == 0 {
        if let Some(bb) = f.block_of(alloca) {
            f.remove_inst(bb, alloca);
        }
    }
}

/// Number of promotable allocas in a module (used by tests and features).
pub fn count_promotable(m: &Module) -> usize {
    m.func_ids()
        .map(|fid| promotable_allocas(m.func(fid)).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::Type;
    use autophase_ir::{BinOp, CmpPred};

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn straightline_promotion() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 1);
        b.store(p, Value::i32(10));
        let v = b.load(Type::I32, p);
        let w = b.binary(BinOp::Add, v, Value::i32(5));
        b.store(p, w);
        let r = b.load(Type::I32, p);
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        let f = m.func(m.main().unwrap());
        // alloca, both stores, both loads gone: add + ret remain
        assert_eq!(f.num_insts(), 2);
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(15));
    }

    #[test]
    fn diamond_gets_phi() {
        // x = 0; if (arg) x = 1; return x;
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let j = b.new_block();
        let p = b.alloca(Type::I32, 1);
        b.store(p, Value::i32(0));
        let c = b.icmp(CmpPred::Ne, b.arg(0), Value::i32(0));
        b.cond_br(c, t, j);
        b.switch_to(t);
        b.store(p, Value::i32(1));
        b.br(j);
        b.switch_to(j);
        let v = b.load(Type::I32, p);
        b.ret(Some(v));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        let f = m.func(m.main().unwrap());
        let has_phi = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .any(|i| f.inst(i).is_phi());
        assert!(has_phi, "expected a phi after promotion");
        assert!(!f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .any(|i| matches!(f.inst(i).op, Opcode::Alloca { .. })));
    }

    #[test]
    fn loop_accumulator_promoted_and_preserved() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(10), |b, i| {
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, i);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        let before = run_main(&m, 100_000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
        // No memory traffic remains.
        let f = m.func(m.main().unwrap());
        for bb in f.block_ids() {
            for (_, inst) in f.insts_in(bb) {
                assert!(!inst.reads_memory() && !inst.writes_memory());
            }
        }
    }

    #[test]
    fn escaping_alloca_not_promoted() {
        let mut m = Module::new("t");
        let callee = {
            let mut b = FunctionBuilder::new("sink_fn", vec![Type::Ptr], Type::Void);
            b.ret(None);
            m.add_function(b.finish())
        };
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 1);
        b.store(p, Value::i32(1));
        b.call(callee, Type::Void, vec![p]);
        let v = b.load(Type::I32, p);
        b.ret(Some(v));
        m.add_function(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn array_alloca_not_promoted() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 4);
        let q = b.gep(p, Value::i32(2));
        b.store(q, Value::i32(9));
        let v = b.load(Type::I32, q);
        b.ret(Some(v));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn mismatched_width_not_promoted() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 1);
        b.store(p, Value::i32(300));
        let v = b.load(Type::I8, p); // narrowing load
        let w = b.cast(autophase_ir::CastOp::SExt, Type::I32, v);
        b.ret(Some(w));
        let mut m = module_with(b.finish());
        let before = run_main(&m, 100).unwrap().observable();
        run(&mut m);
        assert_verified(&m);
        assert_eq!(run_main(&m, 100).unwrap().observable(), before);
    }

    #[test]
    fn load_before_store_yields_undef_zero() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 1);
        let v = b.load(Type::I32, p); // uninitialized: reads 0
        b.ret(Some(v));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(0));
    }

    #[test]
    fn two_allocas_both_promoted() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let p = b.alloca(Type::I32, 1);
        let q = b.alloca(Type::I32, 1);
        b.store(p, Value::i32(3));
        b.store(q, Value::i32(4));
        let x = b.load(Type::I32, p);
        let y = b.load(Type::I32, q);
        let s = b.binary(BinOp::Mul, x, y);
        b.ret(Some(s));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(12));
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 2);
    }
}
