//! `-lcssa`: loop-closed SSA form.
//!
//! Every value defined inside a loop and used outside it is routed through
//! a φ-node in the loop's exit block(s). Downstream loop transforms
//! (unrolling, deletion) then only need to update exit φs rather than
//! chase arbitrary external uses.

use crate::util::UserIndex;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::find_loops;
use autophase_ir::{BlockId, FuncId, Inst, InstId, Module, Opcode, Value};

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    crate::util::for_each_function(m, form_lcssa)
}

fn form_lcssa(m: &mut Module, fid: FuncId) -> bool {
    let mut changed = false;
    loop {
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let loops = find_loops(f, &cfg, &dt);
        let index = UserIndex::build(f);
        // (live-out inst, its block, outside users, exit block to close in)
        type Todo = (InstId, BlockId, Vec<(InstId, BlockId)>, BlockId);
        let mut todo: Option<Todo> = None;
        'search: for l in &loops {
            for &bb in &l.blocks {
                for &iid in &f.block(bb).insts {
                    if f.inst(iid).ty.is_void() {
                        continue;
                    }
                    let outside: Vec<(InstId, BlockId)> = index
                        .users(iid)
                        .iter()
                        .copied()
                        .filter(|(user, ubb)| {
                            if l.contains(*ubb) {
                                // A φ use in an exit block attributes to the
                                // in-loop pred; φ uses inside stay inside.
                                false
                            } else if let Opcode::Phi { incoming } = &f.inst(*user).op {
                                // Already-closed uses (φ in exit with in-loop
                                // incoming edge) don't count.
                                !(l.exits.contains(ubb)
                                    && incoming
                                        .iter()
                                        .all(|(p, v)| *v != Value::Inst(iid) || l.contains(*p)))
                            } else {
                                true
                            }
                        })
                        .collect();
                    if outside.is_empty() {
                        continue;
                    }
                    // Route through the (dedicated) exit the uses are
                    // dominated by; with multiple exits pick the first exit
                    // dominating all uses, else skip (rare, needs
                    // loop-simplify first).
                    let exit = l.exits.iter().copied().find(|&e| {
                        cfg.unique_preds(e).iter().all(|p| l.contains(*p))
                            && outside.iter().all(|(_, ubb)| dt.dominates(e, *ubb))
                            && dt.is_reachable(e)
                            && f.block_of(iid)
                                .map(|db| cfg.unique_preds(e).iter().all(|p| dt.dominates(db, *p)))
                                == Some(true)
                    });
                    if let Some(e) = exit {
                        todo = Some((iid, bb, outside, e));
                        break 'search;
                    }
                }
            }
        }
        let Some((iid, _bb, uses, exit)) = todo else {
            return changed;
        };
        let f = m.func_mut(fid);
        let ty = f.inst(iid).ty;
        let preds: Vec<BlockId> = {
            let cfg = Cfg::new(f);
            cfg.unique_preds(exit)
        };
        let phi = f.insert_inst(
            exit,
            0,
            Inst::new(
                ty,
                Opcode::Phi {
                    incoming: preds.into_iter().map(|p| (p, Value::Inst(iid))).collect(),
                },
            ),
        );
        for (user, _) in uses {
            if user == phi {
                continue;
            }
            f.inst_mut(user)
                .replace_uses(Value::Inst(iid), Value::Inst(phi));
        }
        changed = true;
    }
}

/// True if every loop-defined value used outside its loop flows through an
/// exit φ (query for tests).
pub fn is_lcssa(m: &Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loops = find_loops(f, &cfg, &dt);
    let index = UserIndex::build(f);
    for l in &loops {
        for &bb in &l.blocks {
            for &iid in &f.block(bb).insts {
                for &(user, ubb) in index.users(iid) {
                    if l.contains(ubb) {
                        continue;
                    }
                    let ok = match &f.inst(user).op {
                        Opcode::Phi { incoming } => {
                            l.exits.contains(&ubb)
                                && incoming
                                    .iter()
                                    .all(|(p, v)| *v != Value::Inst(iid) || l.contains(*p))
                        }
                        _ => false,
                    };
                    if !ok {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_function;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, Type};

    #[test]
    fn external_use_gets_exit_phi() {
        // Value computed in the loop header, used after the loop.
        use autophase_ir::CmpPred;
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let entry = b.entry_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I32, vec![(entry, Value::i32(0))]);
        let v = b.binary(BinOp::Mul, i, Value::i32(3)); // defined in header
        let c = b.icmp(CmpPred::Slt, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let next = b.binary(BinOp::Add, i, Value::i32(1));
        b.br(header);
        if let Value::Inst(phi_id) = i {
            if let Opcode::Phi { incoming } = &mut b.func_mut().inst_mut(phi_id).op {
                incoming.push((body, next));
            }
        }
        b.switch_to(exit);
        let r = b.binary(BinOp::Add, v, Value::i32(100)); // external use of v
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        assert!(!is_lcssa(&m, fid));
        let before = run_function(&m, fid, &[4], 100_000).unwrap().return_value;
        assert!(run(&mut m));
        assert_verified(&m);
        assert!(is_lcssa(&m, fid));
        let after = run_function(&m, fid, &[4], 100_000).unwrap().return_value;
        assert_eq!(before, after);
        assert_eq!(after, Some(112)); // v = 4*3 at exit, + 100
    }

    #[test]
    fn loop_without_external_uses_untouched() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(b.arg(0), |b, i| {
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, i);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        assert!(is_lcssa(&m, fid));
        assert!(!run(&mut m));
    }

    #[test]
    fn induction_phi_use_outside_closed() {
        // The loop's own induction φ returned after the loop.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let mut iv = Value::i32(0);
        b.counted_loop(b.arg(0), |_b, i| {
            iv = i;
        });
        b.ret(Some(iv));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let fid = m.main().unwrap();
        let before = run_function(&m, fid, &[5], 100_000).unwrap().return_value;
        run(&mut m);
        assert_verified(&m);
        assert!(is_lcssa(&m, fid));
        let after = run_function(&m, fid, &[5], 100_000).unwrap().return_value;
        assert_eq!(before, after);
    }
}
