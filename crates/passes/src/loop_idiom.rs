//! `-loop-idiom`: recognize memory-initialization idioms.
//!
//! Our IR has no `memset` intrinsic, so the recognized idiom — a counted
//! loop whose body is a single store of a loop-invariant value through the
//! induction variable — is lowered to straight-line stores (the form the
//! HLS backend turns into back-to-back single-state writes, its equivalent
//! of a burst fill). Structurally this reuses the unroller with an
//! idiom-specific filter and a higher trip budget.

use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::find_loops;
use autophase_ir::{Module, Opcode};

/// Maximum fill size expanded.
pub const IDIOM_TRIP_LIMIT: i64 = 64;

/// Run the pass. Returns true if any fill loop was expanded.
pub fn run(m: &mut Module) -> bool {
    crate::util::for_each_function(m, |m, fid| {
        // Identify candidate single-block store loops first; then let the
        // unroller (with idiom limits) expand exactly those.
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let loops = find_loops(f, &cfg, &dt);
        let has_candidate = loops.iter().any(|l| {
            if l.blocks.len() != 1 {
                return false;
            }
            let bb = l.header;
            let mut stores = 0usize;
            let mut other_mem = 0usize;
            for (_, inst) in f.insts_in(bb) {
                match inst.op {
                    Opcode::Store { .. } => stores += 1,
                    Opcode::Load { .. } | Opcode::Call { .. } => other_mem += 1,
                    _ => {}
                }
            }
            stores == 1 && other_mem == 0
        });
        if !has_candidate {
            return false;
        }
        // Expand store-only loops; the generic unroll guard rails
        // (recognized counted loop, size) still apply.
        crate::loop_unroll::run_with_limits_filtered(m, fid, IDIOM_TRIP_LIMIT, 16, |f, bb| {
            let mut stores = 0usize;
            let mut other_mem = 0usize;
            for (_, inst) in f.insts_in(bb) {
                match inst.op {
                    Opcode::Store { .. } => stores += 1,
                    Opcode::Load { .. } | Opcode::Call { .. } => other_mem += 1,
                    _ => {}
                }
            }
            stores == 1 && other_mem == 0
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::loops::analyze_loops;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, Type, Value};

    #[test]
    fn fill_loop_expanded() {
        let mut m = Module::new("t");
        let g = m.add_global(autophase_ir::Global::zeroed("buf", Type::I32, 16));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.counted_loop(Value::i32(16), |b, i| {
            let p = b.gep(Value::Global(g), i);
            b.store(p, Value::i32(0x5A));
        });
        // read back one slot to keep the fill observable
        let p = b.gep(Value::Global(g), Value::i32(9));
        let v = b.load(Type::I32, p);
        b.ret(Some(v));
        m.add_function(b.finish());
        crate::loop_rotate::run(&mut m);
        let before = run_main(&m, 100_000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 100_000).unwrap().observable(), before);
        assert_eq!(before, Some(0x5A));
        let f = m.func(m.main().unwrap());
        let (_, _, loops) = analyze_loops(f);
        assert!(loops.is_empty());
    }

    #[test]
    fn compute_loop_not_touched_by_idiom() {
        let mut m = Module::new("t");
        let g = m.add_global(autophase_ir::Global::zeroed("buf", Type::I32, 64));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.counted_loop(Value::i32(64), |b, i| {
            let p = b.gep(Value::Global(g), i);
            let old = b.load(Type::I32, p); // load makes it not a fill
            let n = b.binary(BinOp::Add, old, i);
            b.store(p, n);
        });
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        crate::loop_rotate::run(&mut m);
        assert!(!run(&mut m));
    }

    #[test]
    fn huge_fill_not_expanded() {
        let mut m = Module::new("t");
        let g = m.add_global(autophase_ir::Global::zeroed("buf", Type::I32, 4096));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.counted_loop(Value::i32(4096), |b, i| {
            let p = b.gep(Value::Global(g), i);
            b.store(p, Value::i32(1));
        });
        b.ret(Some(Value::i32(0)));
        m.add_function(b.finish());
        crate::loop_rotate::run(&mut m);
        assert!(!run(&mut m));
    }
}
