//! `-simplifycfg`: CFG cleanup.
//!
//! * removes blocks unreachable from entry,
//! * folds conditional branches with constant or equal-target conditions,
//! * folds switches on constants,
//! * merges a block into its unique predecessor when it is that
//!   predecessor's unique successor,
//! * removes empty forwarding blocks (a lone `br`) when φ-nodes permit,
//! * replaces single-incoming φ-nodes with their value.

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::{BlockId, FuncId, Module, Opcode, Value};

/// Run the pass. Returns true if anything changed.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, run_on_function)
}

/// Run the simplifications on one function (shared with `-sccp`, which
/// folds branches through this after substituting constants).
pub fn run_on_function(m: &mut Module, fid: FuncId) -> bool {
    let mut changed = false;
    // Iterate until no local rule fires (each rule is cheap).
    loop {
        let mut local = false;
        local |= fold_constant_branches(m, fid);
        local |= remove_unreachable(m, fid);
        local |= simplify_single_incoming_phis(m, fid);
        local |= merge_straightline(m, fid);
        local |= remove_forwarding_blocks(m, fid);
        if !local {
            break;
        }
        changed = true;
    }
    changed |= util::delete_dead(m, fid) > 0;
    changed
}

/// `br true, a, b` → `br a`; `br c, a, a` → `br a`; constant switches.
fn fold_constant_branches(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func_mut(fid);
    let mut changed = false;
    for bb in f.block_ids().collect::<Vec<_>>() {
        let Some(term) = f.terminator(bb) else {
            continue;
        };
        let new_op = match &f.inst(term).op {
            Opcode::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                if let Value::ConstInt(_, c) = cond {
                    let (keep, drop) = if *c != 0 {
                        (*then_bb, *else_bb)
                    } else {
                        (*else_bb, *then_bb)
                    };
                    Some((keep, vec![(drop, bb)]))
                } else if then_bb == else_bb {
                    Some((*then_bb, vec![]))
                } else {
                    None
                }
            }
            Opcode::Switch {
                value,
                default,
                cases,
            } => {
                if let Value::ConstInt(_, c) = value {
                    let target = cases
                        .iter()
                        .find(|(k, _)| k == c)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                    let dropped: Vec<(BlockId, BlockId)> = cases
                        .iter()
                        .map(|(_, b)| *b)
                        .chain(std::iter::once(*default))
                        .filter(|b| *b != target)
                        .map(|b| (b, bb))
                        .collect();
                    Some((target, dropped))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some((target, dropped_edges)) = new_op {
            f.inst_mut(term).op = Opcode::Br { target };
            let mut dropped = dropped_edges;
            dropped.sort();
            dropped.dedup();
            for (dst, pred) in dropped {
                if dst != target {
                    f.remove_phi_edge(dst, pred);
                }
            }
            changed = true;
        }
    }
    changed
}

/// Delete blocks unreachable from the entry, fixing φ-nodes.
pub(crate) fn remove_unreachable(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func_mut(fid);
    let dead = autophase_ir::cfg::unreachable_blocks(f);
    if dead.is_empty() {
        return false;
    }
    // Remove φ entries flowing from dead blocks into live ones.
    for &d in &dead {
        let succs = f.successors(d);
        for s in succs {
            if !dead.contains(&s) {
                f.remove_phi_edge(s, d);
            }
        }
    }
    // Replace any remaining uses of results defined in dead blocks with
    // undef (they can only occur in other dead blocks or be verifier-dead).
    let mut dead_results = Vec::new();
    for &d in &dead {
        for &iid in &f.block(d).insts {
            if !f.inst(iid).ty.is_void() {
                dead_results.push((iid, f.inst(iid).ty));
            }
        }
    }
    for &d in &dead {
        f.remove_block(d);
    }
    for (iid, ty) in dead_results {
        f.replace_all_uses(Value::Inst(iid), Value::Undef(ty));
    }
    true
}

/// `phi [(p, v)]` → `v` (single predecessor after CFG cleanup).
fn simplify_single_incoming_phis(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func_mut(fid);
    let mut changed = false;
    for bb in f.block_ids().collect::<Vec<_>>() {
        let phis: Vec<_> = f
            .block(bb)
            .insts
            .iter()
            .copied()
            .filter(|&i| f.inst(i).is_phi())
            .collect();
        for p in phis {
            let replacement = match &f.inst(p).op {
                Opcode::Phi { incoming } if incoming.len() == 1 => Some(incoming[0].1),
                Opcode::Phi { incoming }
                    if !incoming.is_empty()
                        && incoming.iter().all(|(_, v)| *v == incoming[0].1)
                        && incoming.iter().all(|(_, v)| *v != Value::Inst(p)) =>
                {
                    Some(incoming[0].1)
                }
                _ => None,
            };
            if let Some(v) = replacement {
                if v == Value::Inst(p) {
                    continue;
                }
                f.replace_all_uses(Value::Inst(p), v);
                f.remove_inst(bb, p);
                changed = true;
            }
        }
    }
    changed
}

/// Merge `b` into `a` when `a`'s only successor is `b` and `b`'s only
/// predecessor is `a` (and `b` has no φ-nodes left).
fn merge_straightline(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func_mut(fid);
    let mut changed = false;
    loop {
        let cfg = Cfg::new(f);
        let mut merged = false;
        for a in f.block_ids().collect::<Vec<_>>() {
            if !f.block_exists(a) {
                continue;
            }
            let succs = cfg.unique_succs(a);
            if succs.len() != 1 {
                continue;
            }
            let b = succs[0];
            if b == a || b == f.entry {
                continue;
            }
            if cfg.preds(b).len() != 1 {
                continue;
            }
            if f.block(b).insts.iter().any(|&i| f.inst(i).is_phi()) {
                // Single-pred φs are handled by simplify_single_incoming_phis
                // on the next outer iteration.
                continue;
            }
            // Drop a's terminator, splice b's instructions, fix φs of b's
            // successors, delete b.
            let term = f
                .terminator(a)
                .expect("block with successor has terminator");
            f.remove_inst(a, term);
            let b_insts = f.block(b).insts.clone();
            f.block_mut(a).insts.extend(b_insts);
            f.block_mut(b).insts.clear();
            let new_succs = f.successors(a);
            for s in new_succs {
                f.retarget_phis(s, b, a);
            }
            f.remove_block(b);
            merged = true;
            changed = true;
            break; // CFG changed; recompute
        }
        if !merged {
            return changed;
        }
    }
}

/// Remove blocks containing only `br target`, making predecessors jump
/// straight to the target, when the target's φ-nodes stay consistent.
fn remove_forwarding_blocks(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func_mut(fid);
    let mut changed = false;
    let cfg = Cfg::new(f);
    for bb in f.block_ids().collect::<Vec<_>>() {
        if bb == f.entry || !f.block_exists(bb) {
            continue;
        }
        let insts = &f.block(bb).insts;
        if insts.len() != 1 {
            continue;
        }
        let target = match f.inst(insts[0]).op {
            Opcode::Br { target } => target,
            _ => continue,
        };
        if target == bb {
            continue;
        }
        let preds = cfg.unique_preds(bb);
        if preds.is_empty() {
            continue;
        }
        // φ-safety: if the target has φ-nodes, every pred must not already
        // be a predecessor of target (no duplicate incoming with possibly
        // different values), and the value flowing through bb must work for
        // each pred (it does: the φ entry for bb applies to all).
        let target_has_phis = f.block(target).insts.iter().any(|&i| f.inst(i).is_phi());
        if target_has_phis {
            let target_preds = cfg.unique_preds(target);
            if preds.iter().any(|p| target_preds.contains(p)) {
                continue;
            }
            // A predecessor branching to bb on several edges is fine; φ
            // entries are per-block.
        }
        // Retarget each predecessor's terminator from bb to target.
        for &p in &preds {
            if let Some(t) = f.terminator(p) {
                f.inst_mut(t).for_each_successor_mut(|s| {
                    if *s == bb {
                        *s = target;
                    }
                });
            }
        }
        // Update target φs: duplicate bb's entry for each pred.
        let phi_ids: Vec<_> = f
            .block(target)
            .insts
            .iter()
            .copied()
            .filter(|&i| f.inst(i).is_phi())
            .collect();
        for phi in phi_ids {
            if let Opcode::Phi { incoming } = &mut f.inst_mut(phi).op {
                if let Some(pos) = incoming.iter().position(|(p, _)| *p == bb) {
                    let (_, v) = incoming.remove(pos);
                    for &p in &preds {
                        incoming.push((p, v));
                    }
                }
            }
        }
        f.remove_block(bb);
        changed = true;
        // The CFG snapshot is stale after an edit; let the caller re-run.
        break;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::{BinOp, CmpPred, Type};

    fn module_with(f: autophase_ir::Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn folds_constant_branch_and_removes_dead_arm() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(Value::TRUE, t, e);
        b.switch_to(t);
        b.ret(Some(Value::i32(1)));
        b.switch_to(e);
        b.ret(Some(Value::i32(2)));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        let f = m.func(m.main().unwrap());
        assert_eq!(f.num_blocks(), 1); // entry merged with taken arm
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(1));
    }

    #[test]
    fn merges_straightline_blocks() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let mid = b.new_block();
        let end = b.new_block();
        let x = b.binary(BinOp::Add, Value::i32(1), Value::i32(2));
        b.br(mid);
        b.switch_to(mid);
        let y = b.binary(BinOp::Mul, x, Value::i32(3));
        b.br(end);
        b.switch_to(end);
        b.ret(Some(y));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(m.func(m.main().unwrap()).num_blocks(), 1);
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(9));
    }

    #[test]
    fn equal_target_condbr_becomes_br() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let c = b.icmp(CmpPred::Eq, b.arg(0), Value::i32(0));
        b.cond_br(c, t, t);
        b.switch_to(t);
        b.ret(Some(Value::i32(5)));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        // icmp is now dead and removed; blocks merged.
        assert_eq!(m.func(m.main().unwrap()).num_insts(), 1);
    }

    #[test]
    fn constant_switch_folds() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let c1 = b.new_block();
        let c2 = b.new_block();
        let d = b.new_block();
        b.switch(Value::i32(7), d, vec![(1, c1), (7, c2)]);
        b.switch_to(c1);
        b.ret(Some(Value::i32(1)));
        b.switch_to(c2);
        b.ret(Some(Value::i32(2)));
        b.switch_to(d);
        b.ret(Some(Value::i32(3)));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(m.func(m.main().unwrap()).num_blocks(), 1);
        assert_eq!(run_main(&m, 100).unwrap().return_value, Some(2));
    }

    #[test]
    fn forwarding_block_removed_with_phi_fixup() {
        // entry -> {fwd, e}; fwd -> join; e -> join; join phi picks 1 or 2.
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let fwd = b.new_block();
        let e = b.new_block();
        let join = b.new_block();
        let c = b.icmp(CmpPred::Eq, b.arg(0), Value::i32(0));
        b.cond_br(c, fwd, e);
        b.switch_to(fwd);
        b.br(join);
        b.switch_to(e);
        b.br(join);
        b.switch_to(join);
        let p = b.phi(Type::I32, vec![(fwd, Value::i32(1)), (e, Value::i32(2))]);
        b.ret(Some(p));
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        let f = m.func(m.main().unwrap());
        // The forwarding block is gone; the diamond collapses to
        // entry / else-arm / join (the φ still needs two predecessors).
        assert!(f.num_blocks() <= 3, "blocks: {}", f.num_blocks());
        let phi = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .find(|&i| f.inst(i).is_phi())
            .expect("join phi survives");
        if let Opcode::Phi { incoming } = &f.inst(phi).op {
            assert!(incoming.iter().any(|(p, _)| *p == f.entry));
        }
    }

    #[test]
    fn unreachable_loop_removed() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let dead1 = b.new_block();
        let dead2 = b.new_block();
        b.ret(Some(Value::i32(0)));
        b.switch_to(dead1);
        b.br(dead2);
        b.switch_to(dead2);
        b.br(dead1);
        let mut m = module_with(b.finish());
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(m.func(m.main().unwrap()).num_blocks(), 1);
    }

    #[test]
    fn preserves_semantics_on_loop() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let acc = b.alloca(Type::I32, 1);
        b.store(acc, Value::i32(0));
        b.counted_loop(Value::i32(7), |b, i| {
            let c = b.load(Type::I32, acc);
            let n = b.binary(BinOp::Add, c, i);
            b.store(acc, n);
        });
        let r = b.load(Type::I32, acc);
        b.ret(Some(r));
        let mut m = module_with(b.finish());
        let before = run_main(&m, 100_000).unwrap().observable();
        run(&mut m);
        assert_verified(&m);
        let after = run_main(&m, 100_000).unwrap().observable();
        assert_eq!(before, after);
    }

    #[test]
    fn noop_on_clean_cfg() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let c = b.icmp(CmpPred::Slt, b.arg(0), Value::i32(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(Some(Value::i32(1)));
        b.switch_to(e);
        b.ret(Some(Value::i32(2)));
        let mut m = module_with(b.finish());
        assert!(!run(&mut m));
    }
}
