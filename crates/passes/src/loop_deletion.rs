//! `-loop-deletion`: remove loops with no observable effect.
//!
//! A loop is deleted when it writes no memory, makes no opaque calls, none
//! of its values are used outside, and it provably terminates (recognized
//! counted loops). The preheader then branches straight to the exit.

use crate::util;
use autophase_ir::cfg::Cfg;
use autophase_ir::dom::DomTree;
use autophase_ir::loops::{find_loops, Loop};
use autophase_ir::{BinOp, CmpPred, FuncId, Module, Opcode, Value};

/// Run the pass. Returns true if any loop was deleted.
pub fn run(m: &mut Module) -> bool {
    util::for_each_function(m, |m, fid| {
        let mut changed = false;
        while delete_once(m, fid) {
            changed = true;
        }
        if changed {
            crate::simplifycfg::run_on_function(m, fid);
        }
        changed
    })
}

fn delete_once(m: &mut Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loops = find_loops(f, &cfg, &dt);
    let index = crate::util::UserIndex::build(f);
    'next_loop: for l in &loops {
        let Some(preheader) = l.entering_block(&cfg) else {
            continue;
        };
        // Single dedicated exit.
        let [exit] = l.exits.as_slice() else { continue };
        let exit = *exit;
        if cfg.unique_preds(exit).iter().any(|p| !l.contains(*p)) {
            continue;
        }
        // No side effects, no values escaping.
        for &bb in &l.blocks {
            for &iid in &f.block(bb).insts {
                let inst = f.inst(iid);
                if inst.writes_memory() && !util::is_pure(m, inst) {
                    continue 'next_loop;
                }
                if matches!(inst.op, Opcode::Call { .. }) && !util::is_pure(m, inst) {
                    continue 'next_loop;
                }
                if !inst.ty.is_void() && index.users(iid).iter().any(|(_, ubb)| !l.contains(*ubb)) {
                    continue 'next_loop;
                }
            }
        }
        // Termination: recognize a counted loop (conservative).
        if !provably_terminates(f, &cfg, l) {
            continue;
        }
        // φ-nodes in the exit have entries from in-loop preds; since the
        // loop produced no escaping values those φs can only reference
        // constants/outside values — retarget them to the preheader edge.
        let exiting: Vec<_> = l.exiting_blocks(&cfg);
        let f = m.func_mut(fid);
        for ex in exiting {
            f.remove_phi_edge(exit, ex);
        }
        // The preheader branches straight to the exit.
        let pt = f.terminator(preheader).expect("preheader terminator");
        f.inst_mut(pt).for_each_successor_mut(|s| {
            if *s == l.header {
                *s = exit;
            }
        });
        // Add the preheader edge to exit φs? Exit φs lost all entries (all
        // were in-loop) — but escaping-value check means no φ can have had
        // a loop value... any remaining φ with zero incoming gets its
        // single (preheader, undef)-style repair via simplifycfg; to stay
        // verifiable now, give them an undef entry from the preheader.
        let phi_ids: Vec<_> = f
            .block(exit)
            .insts
            .iter()
            .copied()
            .filter(|&i| f.inst(i).is_phi())
            .collect();
        for phi in phi_ids {
            let ty = f.inst(phi).ty;
            if let Opcode::Phi { incoming } = &mut f.inst_mut(phi).op {
                if !incoming.iter().any(|(p, _)| *p == preheader) {
                    incoming.push((preheader, Value::Undef(ty)));
                }
            }
        }
        // The loop blocks are now unreachable; sweep them.
        crate::simplifycfg::remove_unreachable(m, fid);
        return true;
    }
    false
}

/// Conservative termination proof: the loop has a counted exit condition
/// `icmp` on an induction variable `φ(init, φ+step)` with constant init,
/// step, and bound, stepping toward the bound.
fn provably_terminates(f: &autophase_ir::Function, cfg: &Cfg, l: &Loop) -> bool {
    // Find an exiting condbr whose condition is an icmp involving an
    // induction φ with constant step, constant bound, constant init.
    for &bb in &l.blocks {
        let Some(term) = f.terminator(bb) else {
            continue;
        };
        let Opcode::CondBr {
            cond: Value::Inst(cmp),
            ..
        } = f.inst(term).op
        else {
            continue;
        };
        if !f.successors(bb).iter().any(|s| !l.contains(*s)) {
            continue;
        }
        let Opcode::ICmp(pred, a, Value::ConstInt(_, _bound)) = f.inst(cmp).op else {
            continue;
        };
        // a is the φ or φ+step.
        let phi_id = match a {
            Value::Inst(x) => match f.inst(x).op {
                Opcode::Phi { .. } => Some(x),
                Opcode::Binary(BinOp::Add, Value::Inst(p), Value::ConstInt(..)) => Some(p),
                _ => None,
            },
            _ => None,
        };
        let Some(phi_id) = phi_id else { continue };
        let Opcode::Phi { incoming } = &f.inst(phi_id).op else {
            continue;
        };
        let Some(preheader) = l.entering_block(cfg) else {
            continue;
        };
        let mut init_const = false;
        let mut step: Option<i64> = None;
        for (p, v) in incoming {
            if *p == preheader {
                init_const = matches!(v, Value::ConstInt(..));
            } else if let Value::Inst(nid) = v {
                if let Opcode::Binary(BinOp::Add, base, Value::ConstInt(_, s)) = f.inst(*nid).op {
                    if base == Value::Inst(phi_id) {
                        step = Some(s);
                    }
                }
            }
        }
        let Some(step) = step else { continue };
        if !init_const || step == 0 {
            continue;
        }
        // Monotone toward the bound for the common predicates.
        let ok = matches!(
            (pred, step > 0),
            (CmpPred::Slt, true)
                | (CmpPred::Sle, true)
                | (CmpPred::Ult, true)
                | (CmpPred::Ule, true)
                | (CmpPred::Sgt, false)
                | (CmpPred::Sge, false)
                | (CmpPred::Ne, true)
                | (CmpPred::Ne, false)
        );
        if ok {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_ir::builder::FunctionBuilder;
    use autophase_ir::interp::run_main;
    use autophase_ir::loops::analyze_loops;
    use autophase_ir::verify::assert_verified;
    use autophase_ir::Type;

    #[test]
    fn effect_free_loop_deleted() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.counted_loop(Value::i32(100), |b, i| {
            let x = b.binary(BinOp::Mul, i, i);
            let _ = b.binary(BinOp::Add, x, Value::i32(3)); // all dead
        });
        b.ret(Some(Value::i32(7)));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let before = run_main(&m, 100_000).unwrap();
        assert!(run(&mut m));
        assert_verified(&m);
        let after = run_main(&m, 100_000).unwrap();
        assert_eq!(before.observable(), after.observable());
        assert!(after.insts_executed < before.insts_executed / 10);
        let f = m.func(m.main().unwrap());
        let (_, _, loops) = analyze_loops(f);
        assert!(loops.is_empty());
    }

    #[test]
    fn storing_loop_kept() {
        let mut m = Module::new("t");
        let g = m.add_global(autophase_ir::Global::zeroed("out", Type::I32, 16));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.counted_loop(Value::i32(16), |b, i| {
            let p = b.gep(Value::Global(g), i);
            b.store(p, i);
        });
        let v = b.load(Type::I32, Value::Global(g));
        b.ret(Some(v));
        m.add_function(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn loop_with_escaping_value_kept() {
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        let mut last = Value::i32(0);
        b.counted_loop(Value::i32(10), |_b, i| {
            last = i;
        });
        b.ret(Some(last));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        // `last` is the induction φ used outside: kept.
        assert!(!run(&mut m));
    }

    #[test]
    fn unknown_bound_loop_kept() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        b.counted_loop(b.arg(0), |b, i| {
            let _ = b.binary(BinOp::Mul, i, i);
        });
        b.ret(Some(Value::i32(1)));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        // Trip count depends on arg0: init is 0 (const), bound is arg —
        // not a constant bound, so the conservative proof fails.
        assert!(!run(&mut m));
    }

    #[test]
    fn nested_dead_inner_loop_deleted() {
        let mut m = Module::new("t");
        let g = m.add_global(autophase_ir::Global::zeroed("out", Type::I32, 1));
        let mut b = FunctionBuilder::new("main", vec![], Type::I32);
        b.counted_loop(Value::i32(5), |b, i| {
            b.counted_loop(Value::i32(7), |b2, j| {
                let _ = b2.binary(BinOp::Mul, j, j); // dead inner work
            });
            let c = b.load(Type::I32, Value::Global(g));
            let n = b.binary(BinOp::Add, c, i);
            b.store(Value::Global(g), n);
        });
        let r = b.load(Type::I32, Value::Global(g));
        b.ret(Some(r));
        m.add_function(b.finish());
        let before = run_main(&m, 1_000_000).unwrap().observable();
        assert!(run(&mut m));
        assert_verified(&m);
        assert_eq!(run_main(&m, 1_000_000).unwrap().observable(), before);
        let f = m.func(m.main().unwrap());
        let (_, _, loops) = analyze_loops(f);
        assert_eq!(loops.len(), 1); // only the outer storing loop remains
    }
}
