//! The AutoPhase transform-pass library (the paper's Table 1).
//!
//! Every pass operates on [`autophase_ir::Module`] and reports whether it
//! changed anything, mirroring LLVM's legacy pass interface. Passes that
//! lower constructs our IR does not have (invokes, atomics, debug info) are
//! faithful no-ops — exactly as the corresponding LLVM passes are on inputs
//! without those constructs.
//!
//! The [`registry`] module maps the paper's action indices 0–45 to passes,
//! and [`o3`] provides the `-O0`/`-O3` reference pipelines used as the
//! baseline in every experiment.
//!
//! # Example
//!
//! ```
//! use autophase_ir::{builder::FunctionBuilder, Module, Type, BinOp};
//! use autophase_passes::registry;
//!
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("main", vec![], Type::I32);
//! let p = b.alloca(Type::I32, 1);
//! b.store(p, b.const_i32(21));
//! let v = b.load(Type::I32, p);
//! let d = b.binary(BinOp::Add, v, v);
//! b.ret(Some(d));
//! m.add_function(b.finish());
//!
//! // Apply -mem2reg (index 38 in Table 1), then -instcombine (30).
//! registry::apply(&mut m, 38);
//! registry::apply(&mut m, 30);
//! autophase_ir::verify::verify_module(&m)?;
//! # Ok::<(), autophase_ir::verify::VerifyError>(())
//! ```
#![warn(missing_docs)]

pub mod adce;
pub mod changeset;
pub mod checked;
pub mod correlated;
pub mod dse;
pub mod early_cse;
#[cfg(any(test, feature = "fault-injection"))]
pub mod fault;
pub mod globals;
pub mod gvn;
pub mod indvars;
pub mod inline;
pub mod instcombine;
pub mod ipo;
pub mod jump_threading;
pub mod lcssa;
pub mod licm;
pub mod loop_deletion;
pub mod loop_idiom;
pub mod loop_reduce;
pub mod loop_rotate;
pub mod loop_simplify;
pub mod loop_unroll;
pub mod loop_unswitch;
pub mod lowering;
pub mod mem2reg;
pub mod memcpyopt;
pub mod o3;
pub mod reassociate;
pub mod registry;
pub mod sccp;
pub mod simplifycfg;
pub mod sink;
pub mod sroa;
pub mod tailcall;
pub mod util;

pub use checked::{apply_checked, FuelBudget, PassFault};
pub use registry::{apply, pass_count, pass_name, PassId, PASS_NAMES};
