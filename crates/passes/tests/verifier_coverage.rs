//! Verifier coverage: every registered pass must leave every module it
//! touches verifiable.
//!
//! This pins the invariant `apply_checked` relies on — after a healthy
//! (non-faulted) pass application, `verify_module` succeeds — so a pass
//! regression shows up here as a named (pass, program) pair rather than
//! as a mysterious rollback storm in the RL loop.

use autophase_ir::verify::verify_module;
use autophase_ir::Module;
use autophase_passes::checked::{apply_checked, FuelBudget};
use autophase_passes::registry;

fn corpus() -> Vec<(String, Module)> {
    let mut programs: Vec<(String, Module)> = autophase_benchmarks::suite()
        .into_iter()
        .map(|b| (b.name.to_string(), b.module))
        .collect();
    let cfg = autophase_progen::GenConfig::default();
    for seed in 0..12u64 {
        programs.push((
            format!("progen-{seed}"),
            autophase_progen::generate_valid(&cfg, seed),
        ));
    }
    programs
}

#[test]
fn every_pass_preserves_verifiability_on_corpus() {
    let corpus = corpus();
    for id in 0..registry::pass_count() {
        for (name, base) in &corpus {
            let mut m = base.clone();
            registry::apply(&mut m, id);
            if let Err(e) = verify_module(&m) {
                panic!(
                    "pass {} ({}) broke verification on {name}: {e}",
                    registry::pass_name(id),
                    id,
                );
            }
        }
    }
}

#[test]
fn apply_checked_is_fault_free_on_corpus() {
    // With no injected faults and a generous budget, the transactional
    // wrapper must agree with the raw registry on every (pass, program)
    // pair: same change-report, same resulting module.
    let corpus = corpus();
    let budget = FuelBudget::default();
    for id in 0..registry::pass_count() {
        for (name, base) in &corpus {
            let mut checked = base.clone();
            let mut raw = base.clone();
            let got = apply_checked(&mut checked, id, &budget).unwrap_or_else(|f| {
                panic!(
                    "pass {} faulted on healthy program {name}: {f}",
                    registry::pass_name(id)
                )
            });
            let want = registry::apply(&mut raw, id);
            assert_eq!(got, want, "change-report mismatch: pass {id} on {name}");
            assert_eq!(
                autophase_ir::printer::print_module(&checked),
                autophase_ir::printer::print_module(&raw),
                "module mismatch: pass {id} on {name}"
            );
        }
    }
}
