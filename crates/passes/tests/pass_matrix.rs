//! The pass × benchmark matrix: every Table-1 pass, alone and in common
//! pairs, on every CHStone-style kernel — verified and behaviour-checked.

use autophase_benchmarks::suite;
use autophase_ir::interp::run_main;
use autophase_ir::verify::verify_module;
use autophase_passes::registry;

const FUEL: u64 = 30_000_000;

#[test]
fn every_pass_safe_on_every_benchmark() {
    for b in suite() {
        let expect = run_main(&b.module, FUEL).unwrap().observable();
        for pass in 0..registry::pass_count() {
            let mut m = b.module.clone();
            registry::apply(&mut m, pass);
            verify_module(&m).unwrap_or_else(|e| {
                panic!("{} on {}: verifier: {e}", registry::pass_name(pass), b.name)
            });
            let got = run_main(&m, FUEL)
                .unwrap_or_else(|e| {
                    panic!("{} on {}: exec: {e}", registry::pass_name(pass), b.name)
                })
                .observable();
            assert_eq!(
                got,
                expect,
                "{} changed {}'s behaviour",
                registry::pass_name(pass),
                b.name
            );
        }
    }
}

#[test]
fn canonical_pipelines_safe_on_every_benchmark() {
    // The orderings the paper's analysis keeps coming back to.
    let pipelines: &[&[usize]] = &[
        &[38, 29, 23, 36, 33],         // mem2reg → simplify → rotate → licm → unroll
        &[43, 38, 30, 31, 7, 28, 32],  // sroa → mem2reg → combine → cfg → gvn → adce → dse
        &[25, 19, 29, 36, 30, 31],     // inline → attrs → simplify → licm → cleanup
        &[21, 13, 16, 23, 33, 31],     // lowerswitch → critedges → lcssa → rotate → unroll
        &[11, 12, 27, 23, 33, 26, 15], // scalarrepl-ssa → lsr → indvars → rotate → unroll → cse
    ];
    for b in suite() {
        let expect = run_main(&b.module, FUEL).unwrap().observable();
        for (k, seq) in pipelines.iter().enumerate() {
            let mut m = b.module.clone();
            registry::apply_sequence(&mut m, seq);
            verify_module(&m).unwrap_or_else(|e| panic!("pipeline {k} on {}: {e}", b.name));
            let got = run_main(&m, FUEL)
                .unwrap_or_else(|e| panic!("pipeline {k} on {}: exec: {e}", b.name))
                .observable();
            assert_eq!(got, expect, "pipeline {k} changed {}'s behaviour", b.name);
        }
    }
}

#[test]
fn mem2reg_then_rotate_reduces_cycles_on_most_benchmarks() {
    use autophase_hls::{profile::cycle_count, HlsConfig};
    let hls = HlsConfig::default();
    let mut improved = 0;
    let mut total = 0;
    for b in suite() {
        let before = cycle_count(&b.module, &hls).unwrap();
        let mut m = b.module.clone();
        registry::apply_sequence(&mut m, &[38, 29, 23]);
        let after = cycle_count(&m, &hls).unwrap();
        total += 1;
        if after < before {
            improved += 1;
        }
        assert!(after <= before, "{}: pipeline made it slower", b.name);
    }
    assert!(
        improved * 10 >= total * 8,
        "only {improved}/{total} improved"
    );
}
