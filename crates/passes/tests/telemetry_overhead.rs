//! Overhead guard: instrumented `apply_sequence` with telemetry enabled
//! must stay within a generous constant factor of the disabled path.
//!
//! The disabled path pays one relaxed atomic load per `apply`; the
//! enabled path adds two clock reads and a handful of relaxed RMWs per
//! pass — small against the microseconds a real pass costs. The bound
//! here is deliberately loose (3x plus an absolute slack) so the test
//! never flakes on a noisy CI machine while still catching a regression
//! that puts a lock or an allocation on the hot path.
//!
//! One `#[test]`: the telemetry enable flag is process-global, and the
//! two timed phases must not interleave with other tests toggling it.

use autophase_passes::registry::{apply_sequence, pass_count};
use autophase_progen::{program_batch, GenConfig};
use autophase_telemetry as telemetry;
use std::time::{Duration, Instant};

/// A sequence that exercises every registry entry twice, in a fixed
/// interleaved order (the second visit hits the "nothing left to do"
/// paths, the cheap regime where relative overhead is largest).
fn workload_sequence() -> Vec<usize> {
    let n = pass_count();
    let mut seq: Vec<usize> = (0..n).collect();
    seq.extend((0..n).rev());
    seq
}

/// Minimum duration over `reps` runs of the workload (min, not mean:
/// the minimum is the run least disturbed by scheduler noise).
fn best_of(reps: usize, modules: &[autophase_ir::Module], seq: &[usize]) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let mut clones: Vec<_> = modules.to_vec();
        let t = Instant::now();
        for m in &mut clones {
            apply_sequence(m, seq);
        }
        best = best.min(t.elapsed());
    }
    best
}

#[test]
fn enabled_overhead_stays_within_generous_bound() {
    let modules = program_batch(&GenConfig::default(), 99, 4);
    let seq = workload_sequence();
    let reps = 5;

    // Warm up both paths once (page in code, register instruments).
    telemetry::disable();
    best_of(1, &modules, &seq);
    telemetry::enable();
    best_of(1, &modules, &seq);

    telemetry::disable();
    let off = best_of(reps, &modules, &seq);
    telemetry::enable();
    let on = best_of(reps, &modules, &seq);
    telemetry::disable();
    telemetry::reset();

    let bound = off * 3 + Duration::from_millis(20);
    assert!(
        on <= bound,
        "telemetry-enabled apply_sequence too slow: enabled {on:?} vs disabled {off:?} \
         (bound {bound:?}) — did something put a lock or allocation on the hot path?"
    );
}
