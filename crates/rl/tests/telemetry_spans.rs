//! Span nesting across the rollout worker pool.
//!
//! The rollout engine opens a `rollout.batch` span on the collecting
//! thread, a `rollout.worker` span on every worker thread, and a
//! `rollout.episode` span per episode. This test pins down the nesting
//! contract: paths reflect each thread's own stack (episodes run by
//! workers nest under `rollout.worker`, serial episodes under
//! `rollout.batch`), depths are consistent, and every child interval lies
//! within its parent's interval on the same thread.
//!
//! One `#[test]` on purpose: the span log and enable flag are global to
//! the process, and this file being its own integration-test binary is
//! what isolates it from the rest of the suite.

use autophase_rl::env::{ChainEnv, Environment};
use autophase_rl::rollout;
use autophase_telemetry as telemetry;
use autophase_telemetry::SpanEvent;

fn make_envs(n: usize) -> Vec<Box<dyn Environment + Send>> {
    (0..n)
        .map(|_| Box::new(ChainEnv::new(vec![0, 1], 2)) as Box<dyn Environment + Send>)
        .collect()
}

fn policy_pair() -> (autophase_nn::Mlp, autophase_nn::Mlp) {
    (
        autophase_nn::Mlp::new(&[3, 8, 2], autophase_nn::Activation::Tanh, 1),
        autophase_nn::Mlp::new(&[3, 8, 1], autophase_nn::Activation::Tanh, 2),
    )
}

fn assert_contained(child: &SpanEvent, parent: &SpanEvent) {
    assert_eq!(
        child.thread, parent.thread,
        "nesting is per-thread: {child:?} vs {parent:?}"
    );
    assert!(
        child.start_ns >= parent.start_ns
            && child.start_ns + child.dur_ns <= parent.start_ns + parent.dur_ns,
        "child interval must lie within the parent's: {child:?} vs {parent:?}"
    );
}

#[test]
fn spans_nest_across_the_worker_pool() {
    let (policy, value) = policy_pair();
    let n_episodes = 9;
    let workers = 3;

    // Disabled: the engine must record nothing at all.
    telemetry::disable();
    telemetry::reset();
    rollout::collect_episodes_parallel(
        &mut make_envs(workers),
        &policy,
        &value,
        n_episodes,
        0,
        50,
        7,
    );
    assert!(
        telemetry::span_events().is_empty(),
        "disabled telemetry must record no span events"
    );

    // Parallel collection: episodes nest under their worker's span.
    telemetry::enable();
    telemetry::reset();
    rollout::collect_episodes_parallel(
        &mut make_envs(workers),
        &policy,
        &value,
        n_episodes,
        0,
        50,
        7,
    );
    let events = telemetry::span_events();

    let batches: Vec<&SpanEvent> = events
        .iter()
        .filter(|e| e.path == "rollout.batch")
        .collect();
    assert_eq!(batches.len(), 1, "one batch span: {events:#?}");
    assert_eq!(batches[0].depth, 1);

    let worker_spans: Vec<&SpanEvent> = events
        .iter()
        .filter(|e| e.path == "rollout.worker")
        .collect();
    assert_eq!(worker_spans.len(), workers, "one span per worker");
    for w in &worker_spans {
        assert_eq!(w.depth, 1, "worker threads start a fresh stack");
        assert_ne!(
            w.thread, batches[0].thread,
            "workers run off the collecting thread"
        );
    }

    let episodes: Vec<&SpanEvent> = events
        .iter()
        .filter(|e| e.path == "rollout.worker/rollout.episode")
        .collect();
    assert_eq!(episodes.len(), n_episodes, "one span per episode");
    for ep in &episodes {
        assert_eq!(ep.name, "rollout.episode");
        assert_eq!(ep.depth, 2, "episodes nest under the worker span");
        let parent = worker_spans
            .iter()
            .find(|w| w.thread == ep.thread)
            .unwrap_or_else(|| panic!("episode on a thread with no worker span: {ep:?}"));
        assert_contained(ep, parent);
    }
    // Workers pull from a shared queue, so the per-worker split is
    // scheduling-dependent — only the total is pinned (and it already is,
    // above). Every episode span must still belong to some worker thread.
    let on_workers = episodes
        .iter()
        .filter(|e| worker_spans.iter().any(|w| w.thread == e.thread))
        .count();
    assert_eq!(on_workers, n_episodes, "every episode ran on a worker");

    // Serial collection: episodes nest under the batch span instead.
    telemetry::reset();
    let mut env = ChainEnv::new(vec![0, 1], 2);
    rollout::collect_episodes(&mut env, &policy, &value, n_episodes, 0, 50, 7);
    let events = telemetry::span_events();
    let batch = events
        .iter()
        .find(|e| e.path == "rollout.batch")
        .expect("serial batch span");
    let episodes: Vec<&SpanEvent> = events
        .iter()
        .filter(|e| e.path == "rollout.batch/rollout.episode")
        .collect();
    assert_eq!(episodes.len(), n_episodes);
    for ep in &episodes {
        assert_eq!(ep.depth, 2);
        assert_contained(ep, batch);
    }

    telemetry::disable();
    telemetry::reset();
}
