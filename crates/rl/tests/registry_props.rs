//! Property tests for the model-registry manifest.
//!
//! The manifest is the online-learning subsystem's root of trust: a
//! daemon restart trusts whatever it says about which checkpoint is
//! active. Its durability story mirrors the serve store's, and so do
//! the properties pinned here:
//!
//! * **round-trip** — any encodable registry state decodes back to
//!   exactly itself (versions, metadata, active pointer);
//! * **torn writes fail closed** — a manifest cut at *any* byte
//!   boundary never parses (the trailing checksum line means a torn
//!   prefix is detectable, so tmp+rename plus this property make a
//!   half-written manifest impossible to trust);
//! * **recovery** — a corrupt manifest on disk quarantines aside and
//!   the registry rebuilds itself from the checkpoint files that still
//!   decode, never refusing to open.

use autophase_rl::checkpoint::PolicyCheckpoint;
use autophase_rl::ppo::{PpoAgent, PpoConfig};
use autophase_rl::registry::{encode_manifest, parse_manifest, ModelRegistry, VersionInfo};
use proptest::prelude::*;
use std::path::PathBuf;

/// Arbitrary-but-valid registry state from raw generated parts:
/// strictly increasing versions, plausible file names, an optional
/// active pointer into the set (`active_sel == 12` means none).
fn build_state(steps: Vec<(u64, u64, u64)>, active_sel: usize) -> (Vec<VersionInfo>, Option<u64>) {
    let mut versions = Vec::new();
    let mut v = 0u64;
    for (delta, samples, updates) in steps {
        v += delta;
        versions.push(VersionInfo {
            version: v,
            file: format!("v{v}.ckpt"),
            samples,
            updates,
        });
    }
    let active = if active_sel == 12 || versions.is_empty() {
        None
    } else {
        Some(versions[active_sel % versions.len()].version)
    };
    (versions, active)
}

proptest! {
    /// encode → parse is the identity on every valid registry state.
    #[test]
    fn manifest_roundtrips(
        steps in collection::vec((1u64..5, 0u64..10_000, 0u64..500), 0..12),
        active_sel in 0usize..13,
    ) {
        let (versions, active) = build_state(steps, active_sel);
        let bytes = encode_manifest(&versions, active);
        let (back_v, back_a) = parse_manifest(&bytes).expect("valid manifest must parse");
        prop_assert_eq!(back_v, versions);
        prop_assert_eq!(back_a, active);
    }

    /// Cutting the encoded manifest at any byte yields something that
    /// fails to parse — a torn write can never masquerade as a shorter
    /// valid registry.
    #[test]
    fn torn_prefixes_never_parse(
        steps in collection::vec((1u64..5, 0u64..10_000, 0u64..500), 0..12),
        active_sel in 0usize..13,
    ) {
        let (versions, active) = build_state(steps, active_sel);
        let bytes = encode_manifest(&versions, active);
        for cut in 0..bytes.len() {
            prop_assert!(
                parse_manifest(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes parsed",
                bytes.len()
            );
        }
    }

    /// Flipping any single byte of the manifest fails parsing (checksum
    /// armor) — except inside the checksum line itself, where a flip
    /// may instead break the hex field; either way the result is an
    /// error, never silently different registry state.
    #[test]
    fn bitflips_are_detected(
        steps in collection::vec((1u64..5, 0u64..10_000, 0u64..500), 0..12),
        active_sel in 0usize..13,
        flip in 0usize..4096,
        bit in 0u8..8,
    ) {
        let (versions, active) = build_state(steps, active_sel);
        let bytes = encode_manifest(&versions, active);
        let i = flip % bytes.len();
        let mut mangled = bytes.clone();
        mangled[i] ^= 1 << bit;
        if mangled != bytes {
            prop_assert!(parse_manifest(&mangled).is_err(), "flip at byte {i} parsed");
        }
    }
}

fn tiny_ckpt(seed: u64) -> PolicyCheckpoint {
    let cfg = PpoConfig {
        hidden: vec![3],
        ..PpoConfig::default()
    };
    PolicyCheckpoint::from_ppo(&PpoAgent::new(2, 3, &cfg, seed))
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apreg_props_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic companion: build a real on-disk registry, then tear
/// its manifest at every byte offset. Every reopen must (a) succeed,
/// (b) flag the recovery, (c) rediscover every checkpoint that still
/// decodes on disk — the active pointer degrades to the latest version
/// but no published model is ever lost to a torn manifest.
#[test]
fn torn_manifest_on_disk_recovers_every_cut() {
    let dir = tmp("torn");
    {
        let mut reg = ModelRegistry::open(&dir).unwrap();
        for s in 1..=3u64 {
            reg.publish(&tiny_ckpt(s), s * 100, s).unwrap();
        }
        reg.set_active(2).unwrap();
    }
    let manifest_path = dir.join("MANIFEST");
    let intact = std::fs::read(&manifest_path).unwrap();

    for cut in 0..intact.len() {
        std::fs::write(&manifest_path, &intact[..cut]).unwrap();
        // Remove the previous round's quarantined copy so the rename
        // target is free.
        let _ = std::fs::remove_file(dir.join("MANIFEST.corrupt"));
        let reg = ModelRegistry::open(&dir).unwrap_or_else(|e| {
            panic!("cut at {cut}/{} must reopen: {e}", intact.len());
        });
        assert!(
            reg.recovered_from_corrupt_manifest(),
            "cut at {cut}: recovery not flagged"
        );
        let versions: Vec<u64> = reg.versions().iter().map(|v| v.version).collect();
        assert_eq!(versions, vec![1, 2, 3], "cut at {cut}: checkpoints lost");
        assert_eq!(reg.active(), Some(3), "cut at {cut}: active not rebuilt");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The rebuilt manifest is durable: after one recovery, the next open
/// is clean (no repeated quarantine) and preserves the rebuilt state.
#[test]
fn recovery_rewrites_a_valid_manifest() {
    let dir = tmp("rewrite");
    {
        let mut reg = ModelRegistry::open(&dir).unwrap();
        reg.publish(&tiny_ckpt(7), 700, 7).unwrap();
        reg.publish(&tiny_ckpt(8), 800, 8).unwrap();
    }
    std::fs::write(dir.join("MANIFEST"), b"APREGISTRY1\ngarbage\n").unwrap();
    {
        let reg = ModelRegistry::open(&dir).unwrap();
        assert!(reg.recovered_from_corrupt_manifest());
        assert!(dir.join("MANIFEST.corrupt").exists(), "forensics preserved");
    }
    let reg = ModelRegistry::open(&dir).unwrap();
    assert!(
        !reg.recovered_from_corrupt_manifest(),
        "second open must be clean"
    );
    assert_eq!(reg.versions().len(), 2);
    assert_eq!(reg.active(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
