//! The serving observation layout, shared by the inference engine and
//! the online learner.
//!
//! The serve daemon and the background learner must agree *exactly* on
//! how an observation is laid out — filtered feature vector first, then
//! the action histogram — and on the network shapes that layout implies.
//! Before this module each side re-derived those widths from its own
//! constants; a future feature-set change could desync them silently
//! (the engine composing a 74-wide observation while the learner trains
//! on 56-wide ones, say). [`ObsLayout`] is the single source of truth:
//! the serve crate builds one from its feature/pass tables and both the
//! engine's rollout and the learner's trainer go through
//! [`ObsLayout::compose`] and the shape checks here.
//!
//! The layout is dimension-parameterized rather than importing the
//! feature tables directly because the rl crate sits *below* the crates
//! that own them (`autophase-core`, `autophase-features`) in the
//! dependency graph.

use crate::checkpoint::PolicyCheckpoint;
use autophase_nn::mlp::Mlp;
use std::fmt;

/// A layout violation: a network or observation that does not match the
/// serving configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutError(pub String);

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serving layout error: {}", self.0)
    }
}

impl std::error::Error for LayoutError {}

/// The serving observation layout: `feature_dim` static features
/// followed by a `num_actions`-wide action histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsLayout {
    feature_dim: usize,
    num_actions: usize,
    episode_len: usize,
}

impl ObsLayout {
    /// Build a layout from the serving configuration's widths.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero — a zero-width layout cannot
    /// describe a servable policy and would only hide a broken caller.
    pub fn new(feature_dim: usize, num_actions: usize, episode_len: usize) -> ObsLayout {
        assert!(
            feature_dim > 0 && num_actions > 0 && episode_len > 0,
            "degenerate serving layout {feature_dim}x{num_actions}x{episode_len}"
        );
        ObsLayout {
            feature_dim,
            num_actions,
            episode_len,
        }
    }

    /// Width of the static feature slice.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Size of the action space (and of the histogram slice).
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Steps per serving rollout / training episode.
    pub fn episode_len(&self) -> usize {
        self.episode_len
    }

    /// Full observation width: features plus the action histogram.
    pub fn obs_dim(&self) -> usize {
        self.feature_dim + self.num_actions
    }

    /// Compose one observation from its two slices, in the canonical
    /// order. Both the engine rollout and the learner's replay go
    /// through here, so the concatenation order can never diverge.
    ///
    /// # Panics
    ///
    /// Panics if either slice has the wrong width — that is a caller
    /// bug (mismatched feature tables), not a runtime condition.
    pub fn compose(&self, feats: &[f64], histogram: &[f64]) -> Vec<f64> {
        assert_eq!(
            feats.len(),
            self.feature_dim,
            "feature slice does not match the serving layout"
        );
        assert_eq!(
            histogram.len(),
            self.num_actions,
            "histogram slice does not match the serving layout"
        );
        let mut obs = Vec::with_capacity(self.obs_dim());
        obs.extend_from_slice(feats);
        obs.extend_from_slice(histogram);
        obs
    }

    /// Check that `net` can serve as the policy under this layout.
    ///
    /// # Errors
    ///
    /// [`LayoutError`] naming both shapes when they disagree.
    pub fn check_policy(&self, net: &Mlp) -> Result<(), LayoutError> {
        if net.input_dim() != self.obs_dim() || net.output_dim() != self.num_actions {
            return Err(LayoutError(format!(
                "policy is {}x{}, serving layout needs {}x{}",
                net.input_dim(),
                net.output_dim(),
                self.obs_dim(),
                self.num_actions
            )));
        }
        Ok(())
    }

    /// Check that `net` can serve as the value network under this
    /// layout (same observation width, scalar output).
    ///
    /// # Errors
    ///
    /// [`LayoutError`] naming both shapes when they disagree.
    pub fn check_value(&self, net: &Mlp) -> Result<(), LayoutError> {
        if net.input_dim() != self.obs_dim() || net.output_dim() != 1 {
            return Err(LayoutError(format!(
                "value net is {}x{}, serving layout needs {}x1",
                net.input_dim(),
                net.output_dim(),
                self.obs_dim()
            )));
        }
        Ok(())
    }

    /// Full promotion armor for a candidate checkpoint: both networks
    /// must match this layout *and* every parameter must be finite. A
    /// NaN-poisoned policy would decode cleanly (the checkpoint checksum
    /// only proves the bytes survived disk) yet emit NaN logits on every
    /// request, so finiteness is part of the promotion gate, not just
    /// the shape.
    ///
    /// # Errors
    ///
    /// [`LayoutError`] describing the first violation found.
    pub fn validate_checkpoint(&self, ckpt: &PolicyCheckpoint) -> Result<(), LayoutError> {
        self.check_policy(&ckpt.policy)?;
        self.check_value(&ckpt.value)?;
        if !all_finite(&ckpt.policy) {
            return Err(LayoutError("policy has non-finite parameters".into()));
        }
        if !all_finite(&ckpt.value) {
            return Err(LayoutError("value net has non-finite parameters".into()));
        }
        Ok(())
    }
}

/// Whether every parameter of `net` is finite (no NaN/Inf poisoning).
pub fn all_finite(net: &Mlp) -> bool {
    net.parameters().iter().all(|p| p.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppo::{PpoAgent, PpoConfig};
    use autophase_nn::mlp::Activation;

    fn layout() -> ObsLayout {
        ObsLayout::new(5, 3, 4)
    }

    #[test]
    fn obs_dim_and_compose_agree() {
        let l = layout();
        assert_eq!(l.obs_dim(), 8);
        let obs = l.compose(&[1.0, 2.0, 3.0, 4.0, 5.0], &[0.0, 1.0, 0.0]);
        assert_eq!(obs, vec![1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "feature slice")]
    fn compose_rejects_wrong_feature_width() {
        layout().compose(&[1.0], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn shape_checks_accept_matching_networks() {
        let l = layout();
        let policy = Mlp::new(&[8, 4, 3], Activation::Tanh, 1);
        let value = Mlp::new(&[8, 4, 1], Activation::Tanh, 2);
        assert!(l.check_policy(&policy).is_ok());
        assert!(l.check_value(&value).is_ok());
        assert!(l.check_policy(&value).is_err());
        assert!(l.check_value(&policy).is_err());
    }

    #[test]
    fn validate_checkpoint_rejects_nan_poisoning() {
        let l = layout();
        let cfg = PpoConfig {
            hidden: vec![4],
            ..PpoConfig::default()
        };
        let agent = PpoAgent::new(l.obs_dim(), l.num_actions(), &cfg, 7);
        let mut ckpt = crate::checkpoint::PolicyCheckpoint::from_ppo(&agent);
        assert!(l.validate_checkpoint(&ckpt).is_ok());
        let mut params = ckpt.policy.parameters();
        params[3] = f64::NAN;
        ckpt.policy.set_parameters(&params);
        let err = l.validate_checkpoint(&ckpt).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn validate_checkpoint_rejects_wrong_shape() {
        let l = layout();
        let cfg = PpoConfig {
            hidden: vec![4],
            ..PpoConfig::default()
        };
        let agent = PpoAgent::new(l.obs_dim() + 1, l.num_actions(), &cfg, 7);
        let ckpt = crate::checkpoint::PolicyCheckpoint::from_ppo(&agent);
        assert!(l.validate_checkpoint(&ckpt).is_err());
    }
}
