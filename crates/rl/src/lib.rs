//! Deep reinforcement-learning algorithms for phase ordering.
//!
//! Implements the three algorithm families the paper evaluates (§2.2, §6):
//!
//! * [`ppo`] — Proximal Policy Optimization with the clipped surrogate
//!   objective and generalized advantage estimation (RL-PPO1/2/3);
//! * [`a2c`] — synchronous advantage actor-critic, the deterministic
//!   stand-in for the paper's A3C (identical objective, no async workers);
//! * [`es`] — OpenAI-style evolution strategies over policy weights
//!   (RL-ES).
//!
//! All agents operate over the gym-like [`env::Environment`] trait; the
//! AutoPhase phase-ordering environment in `autophase-core` implements it.
//!
//! # Example
//!
//! ```
//! use autophase_rl::env::{Environment, StepResult};
//! use autophase_rl::ppo::{PpoAgent, PpoConfig};
//!
//! // A two-armed bandit: action 1 pays off.
//! struct Bandit;
//! impl Environment for Bandit {
//!     fn observation_dim(&self) -> usize { 1 }
//!     fn num_actions(&self) -> usize { 2 }
//!     fn reset(&mut self) -> Vec<f64> { vec![0.0] }
//!     fn step(&mut self, a: usize) -> StepResult {
//!         StepResult { observation: vec![0.0], reward: a as f64, done: true }
//!     }
//! }
//! let mut agent = PpoAgent::new(1, 2, &PpoConfig { hidden: vec![16], ..Default::default() }, 7);
//! agent.train(&mut Bandit, 40);
//! let probs = agent.action_probabilities(&[0.0]);
//! assert!(probs[1] > 0.8);
//! ```
#![warn(missing_docs)]

pub mod a2c;
pub mod checkpoint;
pub mod env;
pub mod es;
pub mod online;
pub mod ppo;
pub mod registry;
pub mod rollout;
pub mod serving;

pub use env::{Environment, StepResult};
