//! Incremental PPO over streamed serving experience.
//!
//! The serve daemon's cold path is, step for step, the paper's training
//! loop run live: a greedy rollout produces an ordering, the HLS model
//! profiles it, and the (observations, actions, final cycle count)
//! triple is exactly one training episode. [`OnlineTrainer`] turns that
//! stream back into policy improvement: episodes arrive as
//! [`Experience`] records, accumulate into a PPO batch, and each
//! [`OnlineTrainer::try_update`] runs one incremental
//! [`PpoAgent::update`] over the SoA batched backward — the same
//! optimizer path offline training uses.
//!
//! Updates are armored the way serving demands: the agent is
//! snapshotted before each update, the update runs under
//! `catch_unwind`, and a panic *or* any non-finite parameter afterwards
//! rolls the agent back to the snapshot. A single pathological episode
//! (absurd reward magnitude, say) can therefore never poison the
//! weights that the learner will later publish for promotion.

use crate::checkpoint::PolicyCheckpoint;
use crate::ppo::{PpoAgent, PpoConfig};
use crate::rollout::{Batch, Transition};
use crate::serving::{all_finite, LayoutError, ObsLayout};
use autophase_telemetry as telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One step of a serving rollout: what the policy saw and did, plus the
/// behavior log-probability of the action it took (needed by PPO's
/// importance ratio).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperienceStep {
    /// The composed observation ([`ObsLayout::compose`] order).
    pub obs: Vec<f64>,
    /// Index of the chosen action.
    pub action: usize,
    /// Log-probability the serving policy assigned to `action`.
    pub logp: f64,
}

/// One cold-path serving outcome: a full rollout and the cycle counts
/// that score it.
#[derive(Debug, Clone, PartialEq)]
pub struct Experience {
    /// The rollout's steps, in order.
    pub steps: Vec<ExperienceStep>,
    /// Cycle count of the module after the chosen ordering.
    pub cycles: u64,
    /// Cycle count of the unoptimized module.
    pub baseline_cycles: u64,
}

impl Experience {
    /// Terminal reward of the episode: the log cycle-count improvement
    /// over the unoptimized module (`RewardKind::Log` in the serving
    /// configuration — positive when the ordering helped).
    pub fn terminal_reward(&self) -> f64 {
        (self.baseline_cycles.max(1) as f64 / self.cycles.max(1) as f64).ln()
    }
}

/// Knobs for the incremental trainer.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Transitions to accumulate before an update is worthwhile.
    pub min_batch: usize,
    /// PPO hyperparameters for the incremental updates.
    pub ppo: PpoConfig,
    /// RNG seed for a freshly initialized agent.
    pub seed: u64,
}

impl Default for OnlineConfig {
    fn default() -> OnlineConfig {
        OnlineConfig {
            min_batch: 96,
            ppo: PpoConfig::small(),
            seed: 0xAD_0711,
        }
    }
}

/// What one incremental update did.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateReport {
    /// Transitions consumed by the update.
    pub transitions: usize,
    /// Mean episode return of the consumed batch.
    pub mean_return: f64,
    /// Whether the update was rolled back (panicked or produced
    /// non-finite parameters).
    pub rejected: bool,
}

/// Incremental PPO over streamed [`Experience`] (see module docs).
#[derive(Debug)]
pub struct OnlineTrainer {
    agent: PpoAgent,
    layout: ObsLayout,
    min_batch: usize,
    pending: Vec<Transition>,
    pending_returns: Vec<f64>,
    ingested: u64,
    skipped: u64,
    samples: u64,
    updates: u64,
    rejected: u64,
}

impl OnlineTrainer {
    /// A trainer with a freshly initialized agent matching `layout`.
    pub fn new(layout: ObsLayout, cfg: &OnlineConfig) -> OnlineTrainer {
        let agent = PpoAgent::new(layout.obs_dim(), layout.num_actions(), &cfg.ppo, cfg.seed);
        OnlineTrainer {
            agent,
            layout,
            min_batch: cfg.min_batch.max(1),
            pending: Vec::new(),
            pending_returns: Vec::new(),
            ingested: 0,
            skipped: 0,
            samples: 0,
            updates: 0,
            rejected: 0,
        }
    }

    /// A trainer warm-started from a checkpoint (the registry's active
    /// version, typically), so online learning continues from the
    /// weights currently serving instead of from scratch.
    ///
    /// # Errors
    ///
    /// Rejects a checkpoint that fails [`ObsLayout::validate_checkpoint`]
    /// (wrong shapes or non-finite weights) — a learner must never
    /// start from a state it would itself refuse to publish.
    pub fn from_checkpoint(
        layout: ObsLayout,
        cfg: &OnlineConfig,
        ckpt: &PolicyCheckpoint,
    ) -> Result<OnlineTrainer, LayoutError> {
        layout.validate_checkpoint(ckpt)?;
        let mut trainer = OnlineTrainer::new(layout, cfg);
        trainer.agent.policy = ckpt.policy.clone();
        trainer.agent.value = ckpt.value.clone();
        Ok(trainer)
    }

    /// Feed one serving outcome. The episode becomes PPO transitions:
    /// zero reward on intermediate steps, the log cycle improvement on
    /// the terminal step (matching `RewardKind::Log`), with state values
    /// from the *current* value network. Episodes with no steps or
    /// wrong-width observations are counted and dropped — a layout
    /// mismatch here means a buggy producer, and one bad episode must
    /// not abort the learner.
    pub fn ingest(&mut self, exp: &Experience) {
        let ok = !exp.steps.is_empty()
            && exp.steps.iter().all(|s| {
                s.obs.len() == self.layout.obs_dim() && s.action < self.layout.num_actions()
            });
        if !ok {
            self.skipped += 1;
            telemetry::incr("rl.online", "skipped", 1);
            return;
        }
        let reward = exp.terminal_reward();
        let last = exp.steps.len() - 1;
        for (i, step) in exp.steps.iter().enumerate() {
            self.pending.push(Transition {
                obs: step.obs.clone(),
                action: step.action,
                reward: if i == last { reward } else { 0.0 },
                logp: step.logp,
                value: self.agent.value.forward(&step.obs)[0],
                done: i == last,
            });
        }
        self.pending_returns.push(reward);
        self.ingested += 1;
    }

    /// Whether enough transitions are pending for an update.
    pub fn ready(&self) -> bool {
        self.pending.len() >= self.min_batch
    }

    /// Transitions accumulated but not yet consumed by an update.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Run one armored incremental update if [`ready`](Self::ready);
    /// returns what happened. See the module docs for the
    /// snapshot/rollback contract.
    pub fn try_update(&mut self) -> Option<UpdateReport> {
        if !self.ready() {
            return None;
        }
        let batch = Batch {
            transitions: std::mem::take(&mut self.pending),
            episode_returns: std::mem::take(&mut self.pending_returns),
        };
        let transitions = batch.transitions.len();
        let mean_return =
            batch.episode_returns.iter().sum::<f64>() / batch.episode_returns.len().max(1) as f64;
        let snapshot = (self.agent.policy.clone(), self.agent.value.clone());
        let ran = catch_unwind(AssertUnwindSafe(|| self.agent.update(&batch)));
        let poisoned =
            ran.is_err() || !all_finite(&self.agent.policy) || !all_finite(&self.agent.value);
        if poisoned {
            self.agent.policy = snapshot.0;
            self.agent.value = snapshot.1;
            self.rejected += 1;
            telemetry::incr("rl.online", "rejected", 1);
        } else {
            self.samples += transitions as u64;
            self.updates += 1;
            telemetry::incr("rl.online", "update", 1);
        }
        Some(UpdateReport {
            transitions,
            mean_return,
            rejected: poisoned,
        })
    }

    /// Snapshot the current agent as a publishable checkpoint.
    pub fn checkpoint(&self) -> PolicyCheckpoint {
        PolicyCheckpoint::from_ppo(&self.agent)
    }

    /// Episodes ingested.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Episodes dropped for layout violations.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Transitions consumed by successful updates.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Successful updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Updates rolled back by the armor.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> ObsLayout {
        ObsLayout::new(3, 2, 4)
    }

    fn cfg(min_batch: usize) -> OnlineConfig {
        OnlineConfig {
            min_batch,
            ppo: PpoConfig {
                hidden: vec![4],
                minibatch: 4,
                epochs: 2,
                ..PpoConfig::default()
            },
            seed: 9,
        }
    }

    fn episode(layout: &ObsLayout, trainer: &OnlineTrainer, salt: u64, cycles: u64) -> Experience {
        let steps = (0..layout.episode_len())
            .map(|i| {
                let obs: Vec<f64> = (0..layout.obs_dim())
                    .map(|j| ((salt + i as u64 * 3 + j as u64) % 7) as f64 / 7.0)
                    .collect();
                let action = (salt as usize + i) % layout.num_actions();
                let probs = trainer.agent.action_probabilities(&obs);
                ExperienceStep {
                    logp: probs[action].max(1e-12).ln(),
                    obs,
                    action,
                }
            })
            .collect();
        Experience {
            steps,
            cycles,
            baseline_cycles: 1000,
        }
    }

    #[test]
    fn accumulates_and_updates() {
        let l = layout();
        let mut t = OnlineTrainer::new(l, &cfg(8));
        assert!(t.try_update().is_none(), "no data: no update");
        for s in 0..3 {
            let e = episode(&l, &t, s, 700 + s * 50);
            t.ingest(&e);
        }
        assert!(t.ready());
        let report = t.try_update().expect("ready");
        assert!(!report.rejected);
        assert_eq!(report.transitions, 3 * l.episode_len());
        assert_eq!(t.updates(), 1);
        assert_eq!(t.pending_len(), 0);
        assert!(t
            .checkpoint()
            .policy
            .parameters()
            .iter()
            .all(|p| p.is_finite()));
    }

    #[test]
    fn malformed_episodes_are_skipped_not_fatal() {
        let l = layout();
        let mut t = OnlineTrainer::new(l, &cfg(4));
        t.ingest(&Experience {
            steps: vec![],
            cycles: 1,
            baseline_cycles: 1,
        });
        t.ingest(&Experience {
            steps: vec![ExperienceStep {
                obs: vec![0.0; 2],
                action: 0,
                logp: 0.0,
            }],
            cycles: 1,
            baseline_cycles: 1,
        });
        assert_eq!(t.skipped(), 2);
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn poisoned_update_rolls_back() {
        let l = layout();
        let mut t = OnlineTrainer::new(l, &cfg(4));
        let before = t.agent.policy.parameters();
        // A NaN observation drives the forward/backward into NaN; the
        // armor must restore the snapshot instead of keeping the wreck.
        let mut e = episode(&l, &t, 1, 500);
        for s in &mut e.steps {
            s.obs[0] = f64::NAN;
        }
        // Wrong-width guard doesn't catch NaN (width is fine) — the
        // finiteness post-check must.
        t.ingest(&e);
        let report = t.try_update().expect("ready");
        assert!(report.rejected);
        assert_eq!(t.rejected(), 1);
        assert_eq!(t.updates(), 0);
        assert_eq!(t.agent.policy.parameters(), before, "rolled back");
    }

    #[test]
    fn warm_start_requires_valid_checkpoint() {
        let l = layout();
        let t = OnlineTrainer::new(l, &cfg(4));
        let good = t.checkpoint();
        let warm = OnlineTrainer::from_checkpoint(l, &cfg(4), &good).unwrap();
        assert_eq!(warm.agent.policy.parameters(), t.agent.policy.parameters());
        let mut bad = good.clone();
        let mut p = bad.policy.parameters();
        p[0] = f64::INFINITY;
        bad.policy.set_parameters(&p);
        assert!(OnlineTrainer::from_checkpoint(l, &cfg(4), &bad).is_err());
    }
}
