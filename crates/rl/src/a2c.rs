//! Synchronous advantage actor-critic (the paper's A3C, §2.2, without the
//! asynchrony — the update `∇θ log πθ(a|s) Â` is identical).

use crate::env::Environment;
use crate::rollout::{self, record_steps_per_sec, Batch};
use autophase_nn::{softmax, Activation, BatchWorkspace, GradScratch, Mlp, SoaMlp};
use autophase_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A2C hyperparameters.
#[derive(Debug, Clone)]
pub struct A2cConfig {
    /// Hidden layer sizes.
    pub hidden: Vec<usize>,
    /// Actor learning rate.
    pub lr: f64,
    /// Critic learning rate.
    pub vf_lr: f64,
    /// Discount factor.
    pub gamma: f64,
    /// GAE λ.
    pub lam: f64,
    /// Transitions per update.
    pub horizon: usize,
    /// Hard cap on episode length.
    pub max_episode_len: usize,
    /// Entropy bonus.
    pub entropy_coef: f64,
}

impl Default for A2cConfig {
    fn default() -> A2cConfig {
        A2cConfig {
            hidden: vec![256, 256],
            lr: 3e-4,
            vf_lr: 1e-3,
            gamma: 0.99,
            lam: 1.0,
            horizon: 256,
            max_episode_len: 64,
            entropy_coef: 0.01,
        }
    }
}

impl A2cConfig {
    /// A light configuration for tests and quick searches.
    pub fn small() -> A2cConfig {
        A2cConfig {
            hidden: vec![32, 32],
            horizon: 128,
            lr: 1e-3,
            vf_lr: 3e-3,
            ..A2cConfig::default()
        }
    }
}

/// The actor-critic agent.
#[derive(Debug, Clone)]
pub struct A2cAgent {
    /// Actor network (logits).
    pub policy: Mlp,
    /// Critic network (state values).
    pub value: Mlp,
    cfg: A2cConfig,
    rng: StdRng,
}

impl A2cAgent {
    /// Create an agent.
    pub fn new(obs_dim: usize, n_actions: usize, cfg: &A2cConfig, seed: u64) -> A2cAgent {
        let mut psizes = vec![obs_dim];
        psizes.extend(&cfg.hidden);
        psizes.push(n_actions);
        let mut vsizes = vec![obs_dim];
        vsizes.extend(&cfg.hidden);
        vsizes.push(1);
        A2cAgent {
            policy: Mlp::new(&psizes, Activation::Tanh, seed),
            value: Mlp::new(&vsizes, Activation::Tanh, seed ^ 0x77),
            cfg: cfg.clone(),
            rng: StdRng::seed_from_u64(seed ^ 0xA3C),
        }
    }

    /// Greedy action.
    pub fn act_greedy(&self, obs: &[f64]) -> usize {
        rollout::argmax(&self.policy.forward(obs))
    }

    /// Action probabilities.
    pub fn action_probabilities(&self, obs: &[f64]) -> Vec<f64> {
        softmax(&self.policy.forward(obs))
    }

    /// Train for `iterations` batches, returning per-iteration episode
    /// reward means.
    pub fn train(&mut self, env: &mut dyn Environment, iterations: usize) -> Vec<f64> {
        let train_start = telemetry::maybe_now();
        let mut total_steps = 0u64;
        let mut curve = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let t = telemetry::maybe_now();
            let batch = rollout::collect(
                env,
                &self.policy,
                &self.value,
                self.cfg.horizon,
                self.cfg.max_episode_len,
                &mut self.rng,
            );
            telemetry::observe_since("rl.collect_ns", "a2c", t);
            total_steps += batch.transitions.len() as u64;
            curve.push(batch.episode_reward_mean());
            telemetry::set_gauge("rl.episode_reward_mean", "a2c", batch.episode_reward_mean());
            let t = telemetry::maybe_now();
            self.update(&batch);
            telemetry::observe_since("rl.update_ns", "a2c", t);
            telemetry::incr("rl.iterations", "a2c", 1);
            telemetry::incr("rl.steps", "a2c", batch.transitions.len() as u64);
        }
        record_steps_per_sec("a2c", total_steps, train_start);
        curve
    }

    /// Like [`A2cAgent::train`], but each iteration collects
    /// `episodes_per_iter` episodes across the worker environments in
    /// `envs`. Episode-indexed collection makes the run bit-identical
    /// for any worker count (see [`rollout::collect_episodes_parallel`]).
    pub fn train_parallel(
        &mut self,
        envs: &mut [Box<dyn Environment + Send>],
        episodes_per_iter: usize,
        iterations: usize,
    ) -> Vec<f64> {
        let train_start = telemetry::maybe_now();
        let mut total_steps = 0u64;
        let mut curve = Vec::with_capacity(iterations);
        for i in 0..iterations {
            let seed: u64 = self.rng.gen();
            let t = telemetry::maybe_now();
            let batch = rollout::collect_episodes_parallel(
                envs,
                &self.policy,
                &self.value,
                episodes_per_iter,
                (i * episodes_per_iter) as u64,
                self.cfg.max_episode_len,
                seed,
            );
            telemetry::observe_since("rl.collect_ns", "a2c", t);
            total_steps += batch.transitions.len() as u64;
            curve.push(batch.episode_reward_mean());
            telemetry::set_gauge("rl.episode_reward_mean", "a2c", batch.episode_reward_mean());
            let t = telemetry::maybe_now();
            self.update(&batch);
            telemetry::observe_since("rl.update_ns", "a2c", t);
            telemetry::incr("rl.iterations", "a2c", 1);
            telemetry::incr("rl.steps", "a2c", batch.transitions.len() as u64);
        }
        record_steps_per_sec("a2c", total_steps, train_start);
        curve
    }

    /// Single on-policy gradient update (one pass over the batch, unlike
    /// PPO's multiple epochs — the sample-efficiency gap §2.2 describes).
    ///
    /// Weights stay fixed until the single step at the end, so the batch
    /// runs through chunked SoA forwards + [`Mlp::backward_batch`]
    /// (chunked only to bound workspace size) with bit-identical
    /// gradients to the per-sample path.
    pub fn update(&mut self, batch: &Batch) {
        let (mut adv, ret) = rollout::gae(batch, self.cfg.gamma, self.cfg.lam);
        rollout::normalize(&mut adv);

        let psoa = SoaMlp::from_mlp(&self.policy);
        let vsoa = SoaMlp::from_mlp(&self.value);
        let mut pws = BatchWorkspace::new();
        let mut vws = BatchWorkspace::new();
        let mut pscratch = GradScratch::new();
        let mut vscratch = GradScratch::new();
        let n_actions = self.policy.output_dim();
        let mut pgrad: Vec<f64> = Vec::new();
        let mut vgrad: Vec<f64> = Vec::new();

        let order: Vec<usize> = (0..batch.transitions.len()).collect();
        for chunk in order.chunks(64) {
            pws.begin(&psoa);
            vws.begin(&vsoa);
            for &i in chunk {
                let obs = &batch.transitions[i].obs;
                pws.push_input(obs);
                vws.push_input(obs);
            }
            psoa.forward_batch(&mut pws);
            vsoa.forward_batch(&mut vws);

            pgrad.clear();
            pgrad.resize(chunk.len() * n_actions, 0.0);
            vgrad.clear();
            vgrad.resize(chunk.len(), 0.0);
            for (bi, &i) in chunk.iter().enumerate() {
                let t = &batch.transitions[i];
                let probs = softmax(pws.logits(bi));
                let a = adv[i];
                let grad = &mut pgrad[bi * n_actions..(bi + 1) * n_actions];
                for (j, g) in grad.iter_mut().enumerate() {
                    let ind = if j == t.action { 1.0 } else { 0.0 };
                    // L = -A log π(a|s): dL/dlogit_j = -A (1{j=a} - p_j)
                    *g = -a * (ind - probs[j]);
                }
                if self.cfg.entropy_coef > 0.0 {
                    let h: f64 = -probs
                        .iter()
                        .map(|&p| p.max(1e-12) * p.max(1e-12).ln())
                        .sum::<f64>();
                    for (j, g) in grad.iter_mut().enumerate() {
                        let dh = -probs[j] * (probs[j].max(1e-12).ln() + h);
                        *g -= self.cfg.entropy_coef * dh;
                    }
                }
                vgrad[bi] = vws.logits(bi)[0] - ret[i];
            }
            self.policy.backward_batch(&pws, &pgrad, &mut pscratch);
            self.value.backward_batch(&vws, &vgrad, &mut vscratch);
        }
        self.policy.step(self.cfg.lr);
        self.value.step(self.cfg.vf_lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ChainEnv;

    #[test]
    fn solves_simple_chain() {
        let mut env = ChainEnv::new(vec![1, 2], 3);
        let mut agent = A2cAgent::new(3, 3, &A2cConfig::small(), 21);
        let curve = agent.train(&mut env, 120);
        let late: f64 = curve[curve.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(late > 1.5, "late reward {late}");
        assert_eq!(agent.act_greedy(&[1.0, 0.0, 0.0]), 1);
        assert_eq!(agent.act_greedy(&[0.0, 1.0, 0.0]), 2);
    }

    #[test]
    fn deterministic() {
        let mk = || {
            let mut env = ChainEnv::new(vec![0], 2);
            let mut agent = A2cAgent::new(2, 2, &A2cConfig::small(), 4);
            agent.train(&mut env, 4)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn parallel_training_is_worker_count_invariant() {
        let run = |workers: usize| {
            let mut envs: Vec<Box<dyn Environment + Send>> = (0..workers)
                .map(|_| Box::new(ChainEnv::new(vec![1, 2], 3)) as Box<dyn Environment + Send>)
                .collect();
            let mut agent = A2cAgent::new(3, 3, &A2cConfig::small(), 21);
            let curve = agent.train_parallel(&mut envs, 16, 5);
            (curve, agent.policy.parameters(), agent.value.parameters())
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(3));
    }
}
