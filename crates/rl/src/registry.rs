//! A versioned model registry: the durable half of the online-learning
//! loop.
//!
//! The registry is a directory. Each published model is one armored
//! [`PolicyCheckpoint`] file named `v<N>.ckpt` (the checkpoint format
//! carries its own checksums), and a small text `MANIFEST` records the
//! version history and which version is active:
//!
//! ```text
//! APREGISTRY1
//! version=1 file=v1.ckpt samples=480 updates=4
//! version=2 file=v2.ckpt samples=960 updates=8
//! active=2
//! checksum=9f86d081884c7d65
//! ```
//!
//! The checksum line is the FNV-1a hash of every preceding byte, so a
//! torn or bit-flipped manifest never parses as a shorter-but-valid
//! history. Writes follow the `APSTORE2` durability idiom: serialize to
//! a temp file, `fsync`, rename over `MANIFEST`, then fsync the
//! directory — a crash at any byte leaves either the old manifest or
//! the new one, never a hybrid.
//!
//! Recovery is the other half of the armor: when `MANIFEST` exists but
//! fails to parse, [`ModelRegistry::open`] quarantines it to
//! `MANIFEST.corrupt` and rebuilds the history by scanning the
//! directory for `v<N>.ckpt` files that still decode cleanly. Version
//! numbers and weights survive (they live in the checkpoints); only the
//! per-version sample/update counters are reset. The serve daemon's
//! promotion path layers its own gate on top: candidates load through
//! [`PolicyCheckpoint::load_armored`] and a corrupt one is quarantined
//! and dropped from the manifest so the old policy keeps serving.

use crate::checkpoint::{ArmoredLoad, PolicyCheckpoint};
use autophase_telemetry as telemetry;
use autophase_telemetry::faultfs;
use std::fmt;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

const MANIFEST: &str = "MANIFEST";
const HEADER: &str = "APREGISTRY1";

/// Failure opening or mutating the registry.
#[derive(Debug)]
pub struct RegistryError(pub String);

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "registry error: {}", self.0)
    }
}

impl std::error::Error for RegistryError {}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> RegistryError {
        RegistryError(format!("io: {e}"))
    }
}

impl From<crate::checkpoint::CheckpointError> for RegistryError {
    fn from(e: crate::checkpoint::CheckpointError) -> RegistryError {
        RegistryError(e.to_string())
    }
}

/// One published model version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionInfo {
    /// Monotonically increasing version number (1-based).
    pub version: u64,
    /// Checkpoint file name, relative to the registry directory.
    pub file: String,
    /// Training samples (transitions) consumed up to this version.
    pub samples: u64,
    /// Optimizer updates applied up to this version.
    pub updates: u64,
}

/// A directory of versioned checkpoints with a checksummed manifest.
#[derive(Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
    versions: Vec<VersionInfo>,
    active: Option<u64>,
    recovered: bool,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Best-effort fsync of `path`'s parent directory (same contract as the
/// store's snapshot publish: rename is already atomic, some filesystems
/// refuse directory fsync, so errors are ignored).
fn sync_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Serialize a version history (plus optional active version) into the
/// `APREGISTRY1` manifest bytes, checksum line included. Public so the
/// property tests can round-trip arbitrary histories without a
/// filesystem.
pub fn encode_manifest(versions: &[VersionInfo], active: Option<u64>) -> Vec<u8> {
    let mut body = String::new();
    body.push_str(HEADER);
    body.push('\n');
    for v in versions {
        body.push_str(&format!(
            "version={} file={} samples={} updates={}\n",
            v.version, v.file, v.samples, v.updates
        ));
    }
    if let Some(a) = active {
        body.push_str(&format!("active={a}\n"));
    }
    let sum = fnv1a(body.as_bytes());
    body.push_str(&format!("checksum={sum:016x}\n"));
    body.into_bytes()
}

fn kv<'a>(token: &'a str, key: &str) -> Option<&'a str> {
    token.strip_prefix(key)?.strip_prefix('=')
}

/// Parse and verify `APREGISTRY1` manifest bytes.
///
/// Fails closed: bad header, malformed line, duplicate/non-increasing
/// version, unsafe file name, unknown active version, missing or
/// mismatched checksum — every prefix of a valid manifest (torn write)
/// is rejected here, which is what lets `open` fall back to the
/// directory scan.
///
/// # Errors
///
/// [`RegistryError`] naming the first violation.
pub fn parse_manifest(bytes: &[u8]) -> Result<(Vec<VersionInfo>, Option<u64>), RegistryError> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| RegistryError("manifest not utf-8".into()))?;
    // The checksum line covers every byte before it, newline included.
    let body_end = text
        .rfind("checksum=")
        .ok_or_else(|| RegistryError("manifest missing checksum".into()))?;
    if body_end == 0 || !text[..body_end].ends_with('\n') {
        return Err(RegistryError("manifest checksum misplaced".into()));
    }
    let sum_line = text[body_end..]
        .strip_suffix('\n')
        .ok_or_else(|| RegistryError("manifest checksum unterminated".into()))?;
    let want = u64::from_str_radix(
        sum_line
            .strip_prefix("checksum=")
            .filter(|h| h.len() == 16)
            .ok_or_else(|| RegistryError("manifest checksum malformed".into()))?,
        16,
    )
    .map_err(|_| RegistryError("manifest checksum malformed".into()))?;
    let body = &text[..body_end];
    if fnv1a(body.as_bytes()) != want {
        return Err(RegistryError("manifest checksum mismatch".into()));
    }

    let mut lines = body.lines();
    if lines.next() != Some(HEADER) {
        return Err(RegistryError("manifest bad header".into()));
    }
    let mut versions: Vec<VersionInfo> = Vec::new();
    let mut active = None;
    for line in lines {
        if let Some(a) = kv(line, "active") {
            let a: u64 = a
                .parse()
                .map_err(|_| RegistryError("manifest bad active".into()))?;
            if !versions.iter().any(|v| v.version == a) {
                return Err(RegistryError(format!("manifest active={a} not in history")));
            }
            if active.replace(a).is_some() {
                return Err(RegistryError("manifest duplicate active".into()));
            }
            continue;
        }
        let mut tokens = line.split(' ');
        let parsed = (|| {
            let version: u64 = kv(tokens.next()?, "version")?.parse().ok()?;
            let file = kv(tokens.next()?, "file")?;
            let samples: u64 = kv(tokens.next()?, "samples")?.parse().ok()?;
            let updates: u64 = kv(tokens.next()?, "updates")?.parse().ok()?;
            if tokens.next().is_some() || file.is_empty() || file.contains('/') {
                return None;
            }
            Some(VersionInfo {
                version,
                file: file.to_string(),
                samples,
                updates,
            })
        })()
        .ok_or_else(|| RegistryError(format!("manifest bad line: {line:?}")))?;
        if active.is_some() {
            return Err(RegistryError("manifest version after active".into()));
        }
        if versions
            .last()
            .is_some_and(|prev| prev.version >= parsed.version)
        {
            return Err(RegistryError("manifest versions not increasing".into()));
        }
        versions.push(parsed);
    }
    Ok((versions, active))
}

impl ModelRegistry {
    /// Open (or create) the registry at `dir`.
    ///
    /// A missing directory is created; a missing manifest is an empty
    /// registry. A manifest that exists but fails to parse is moved to
    /// `MANIFEST.corrupt` and the history rebuilt from the checkpoint
    /// files themselves (see module docs).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (the directory could not be created
    /// or scanned, the corrupt manifest could not be moved aside).
    pub fn open(dir: &Path) -> Result<ModelRegistry, RegistryError> {
        std::fs::create_dir_all(dir)?;
        let manifest = dir.join(MANIFEST);
        let bytes = match std::fs::read(&manifest) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(ModelRegistry {
                    dir: dir.to_path_buf(),
                    versions: Vec::new(),
                    active: None,
                    recovered: false,
                });
            }
            Err(e) => return Err(e.into()),
        };
        match parse_manifest(&bytes) {
            Ok((versions, active)) => Ok(ModelRegistry {
                dir: dir.to_path_buf(),
                versions,
                active,
                recovered: false,
            }),
            Err(_) => {
                // Torn or corrupt manifest: quarantine it for forensics
                // and rebuild from the checkpoints, which carry their
                // own checksums and version numbers in their names.
                faultfs::rename(
                    &manifest,
                    &dir.join(format!("{MANIFEST}.corrupt")),
                    "registry.quarantine",
                )?;
                telemetry::incr("rl.registry", "manifest_recovered", 1);
                let mut reg = ModelRegistry {
                    dir: dir.to_path_buf(),
                    versions: scan_versions(dir)?,
                    active: None,
                    recovered: true,
                };
                reg.active = reg.versions.last().map(|v| v.version);
                reg.write_manifest()?;
                Ok(reg)
            }
        }
    }

    /// Whether `open` had to rebuild the history from a corrupt
    /// manifest.
    pub fn recovered_from_corrupt_manifest(&self) -> bool {
        self.recovered
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The published history, oldest first.
    pub fn versions(&self) -> &[VersionInfo] {
        &self.versions
    }

    /// The active (last promoted) version, if any.
    pub fn active(&self) -> Option<u64> {
        self.active
    }

    /// The newest published version number, if any.
    pub fn latest(&self) -> Option<u64> {
        self.versions.last().map(|v| v.version)
    }

    /// Path of `version`'s checkpoint file, if it is in the history.
    pub fn checkpoint_path(&self, version: u64) -> Option<PathBuf> {
        self.versions
            .iter()
            .find(|v| v.version == version)
            .map(|v| self.dir.join(&v.file))
    }

    /// Publish a checkpoint as the next version. The checkpoint file is
    /// written (atomically) before the manifest references it, so a
    /// crash between the two leaves an orphan file, never a dangling
    /// manifest entry.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the history is unchanged on
    /// failure.
    pub fn publish(
        &mut self,
        ckpt: &PolicyCheckpoint,
        samples: u64,
        updates: u64,
    ) -> Result<u64, RegistryError> {
        let version = self.latest().map_or(1, |v| v + 1);
        let file = format!("v{version}.ckpt");
        ckpt.save(&self.dir.join(&file))?;
        self.versions.push(VersionInfo {
            version,
            file,
            samples,
            updates,
        });
        if let Err(e) = self.write_manifest() {
            self.versions.pop();
            return Err(e);
        }
        telemetry::incr("rl.registry", "publish", 1);
        Ok(version)
    }

    /// Mark `version` active (what a fresh daemon should serve).
    ///
    /// # Errors
    ///
    /// Fails if `version` is not in the history or the manifest write
    /// fails (the previous active version is restored).
    pub fn set_active(&mut self, version: u64) -> Result<(), RegistryError> {
        if !self.versions.iter().any(|v| v.version == version) {
            return Err(RegistryError(format!("unknown version {version}")));
        }
        let prev = self.active.replace(version);
        if let Err(e) = self.write_manifest() {
            self.active = prev;
            return Err(e);
        }
        telemetry::incr("rl.registry", "activate", 1);
        Ok(())
    }

    /// Load `version`'s checkpoint through the armored path. A corrupt
    /// file is quarantined on disk by `load_armored` *and* dropped from
    /// the manifest here, so the registry never advertises a version it
    /// has already proven unservable. An unknown version reports as
    /// [`ArmoredLoad::Unreadable`].
    pub fn load_armored(&mut self, version: u64) -> ArmoredLoad {
        let Some(path) = self.checkpoint_path(version) else {
            return ArmoredLoad::Unreadable(crate::checkpoint::CheckpointError(format!(
                "version {version} not in the registry"
            )));
        };
        let loaded = PolicyCheckpoint::load_armored(&path);
        if matches!(loaded, ArmoredLoad::Quarantined { .. }) {
            self.drop_version(version);
        }
        loaded
    }

    /// Quarantine `version` without loading it: its file is renamed to
    /// `<file>.quarantined` and the manifest entry dropped. This is the
    /// promotion gate's hook for candidates that decode cleanly but
    /// fail validation (wrong shape, NaN-poisoned weights). Returns the
    /// quarantine path when the rename succeeded.
    pub fn quarantine(&mut self, version: u64) -> Option<PathBuf> {
        let path = self.checkpoint_path(version)?;
        let q = PathBuf::from(format!("{}.quarantined", path.display()));
        let moved = faultfs::rename(&path, &q, "registry.quarantine").is_ok();
        self.drop_version(version);
        telemetry::incr("rl.registry", "quarantined", 1);
        moved.then_some(q)
    }

    /// Keep only the newest `keep` versions (plus the active one, which
    /// is never pruned); older checkpoint files are deleted best-effort
    /// after the manifest stops referencing them.
    ///
    /// # Errors
    ///
    /// Propagates a manifest write failure; the history is unchanged.
    pub fn retain_last(&mut self, keep: usize) -> Result<(), RegistryError> {
        if self.versions.len() <= keep {
            return Ok(());
        }
        let cut = self.versions.len() - keep;
        let (pruned, kept): (Vec<_>, Vec<_>) = self
            .versions
            .iter()
            .cloned()
            .enumerate()
            .partition(|(i, v)| *i < cut && Some(v.version) != self.active);
        let prev = std::mem::replace(
            &mut self.versions,
            kept.into_iter().map(|(_, v)| v).collect(),
        );
        if let Err(e) = self.write_manifest() {
            self.versions = prev;
            return Err(e);
        }
        for (_, v) in pruned {
            let _ = std::fs::remove_file(self.dir.join(&v.file));
        }
        Ok(())
    }

    fn drop_version(&mut self, version: u64) {
        self.versions.retain(|v| v.version != version);
        if self.active == Some(version) {
            self.active = self.versions.last().map(|v| v.version);
        }
        // Best-effort: the in-memory drop is the authoritative state and
        // a failed rewrite will be retried by the next mutation.
        let _ = self.write_manifest();
    }

    fn write_manifest(&self) -> Result<(), RegistryError> {
        let body = encode_manifest(&self.versions, self.active);
        let target = self.dir.join(MANIFEST);
        let tmp = self.dir.join(format!("{MANIFEST}.tmp"));
        let publish = (|| {
            let mut f = File::create(&tmp)?;
            faultfs::write_all(&mut f, &body, "registry.manifest")?;
            faultfs::sync_all(&f, "registry.manifest")?;
            drop(f);
            faultfs::rename(&tmp, &target, "registry.manifest")
        })();
        if let Err(e) = publish {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        sync_dir(&target);
        Ok(())
    }
}

/// Rebuild a version history by scanning `dir` for `v<N>.ckpt` files
/// that decode cleanly. Sample/update counters are lost (they lived
/// only in the manifest) and report as zero.
fn scan_versions(dir: &Path) -> Result<Vec<VersionInfo>, RegistryError> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(version) = name
            .strip_prefix('v')
            .and_then(|r| r.strip_suffix(".ckpt"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        if PolicyCheckpoint::load(&dir.join(name)).is_ok() {
            found.push(VersionInfo {
                version,
                file: name.to_string(),
                samples: 0,
                updates: 0,
            });
        }
    }
    found.sort_by_key(|v| v.version);
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppo::{PpoAgent, PpoConfig};

    fn ckpt(seed: u64) -> PolicyCheckpoint {
        let cfg = PpoConfig {
            hidden: vec![3],
            ..PpoConfig::default()
        };
        PolicyCheckpoint::from_ppo(&PpoAgent::new(2, 3, &cfg, seed))
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apreg_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_activate_reopen_roundtrip() {
        let dir = tmp("roundtrip");
        let mut reg = ModelRegistry::open(&dir).unwrap();
        assert!(reg.versions().is_empty());
        assert_eq!(reg.publish(&ckpt(1), 100, 2).unwrap(), 1);
        assert_eq!(reg.publish(&ckpt(2), 200, 4).unwrap(), 2);
        reg.set_active(1).unwrap();

        let back = ModelRegistry::open(&dir).unwrap();
        assert!(!back.recovered_from_corrupt_manifest());
        assert_eq!(back.versions().len(), 2);
        assert_eq!(back.active(), Some(1));
        assert_eq!(back.latest(), Some(2));
        assert_eq!(back.versions()[1].samples, 200);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_recovers_from_checkpoints() {
        let dir = tmp("recover");
        let mut reg = ModelRegistry::open(&dir).unwrap();
        reg.publish(&ckpt(1), 10, 1).unwrap();
        reg.publish(&ckpt(2), 20, 2).unwrap();
        std::fs::write(dir.join(MANIFEST), b"APREGISTRY1\nversion=1 fil").unwrap();

        let back = ModelRegistry::open(&dir).unwrap();
        assert!(back.recovered_from_corrupt_manifest());
        let versions: Vec<u64> = back.versions().iter().map(|v| v.version).collect();
        assert_eq!(versions, vec![1, 2]);
        assert_eq!(back.active(), Some(2), "recovery activates the newest");
        assert!(dir.join("MANIFEST.corrupt").exists());
        // The rebuilt manifest is durable: a third open parses cleanly.
        assert!(!ModelRegistry::open(&dir)
            .unwrap()
            .recovered_from_corrupt_manifest());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn armored_load_drops_corrupt_version() {
        let dir = tmp("armor");
        let mut reg = ModelRegistry::open(&dir).unwrap();
        reg.publish(&ckpt(1), 10, 1).unwrap();
        reg.publish(&ckpt(2), 20, 2).unwrap();
        let path = reg.checkpoint_path(2).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        assert!(matches!(
            reg.load_armored(2),
            ArmoredLoad::Quarantined { .. }
        ));
        assert_eq!(reg.latest(), Some(1), "corrupt version dropped");
        assert!(matches!(reg.load_armored(2), ArmoredLoad::Unreadable(_)));
        assert!(matches!(reg.load_armored(1), ArmoredLoad::Loaded(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_moves_file_and_drops_entry() {
        let dir = tmp("poison");
        let mut reg = ModelRegistry::open(&dir).unwrap();
        reg.publish(&ckpt(1), 10, 1).unwrap();
        reg.set_active(1).unwrap();
        let q = reg.quarantine(1).expect("rename succeeds");
        assert!(q.exists());
        assert!(reg.versions().is_empty());
        assert_eq!(reg.active(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retain_last_keeps_active_and_newest() {
        let dir = tmp("retain");
        let mut reg = ModelRegistry::open(&dir).unwrap();
        for s in 1..=5 {
            reg.publish(&ckpt(s), s * 10, s).unwrap();
        }
        reg.set_active(1).unwrap();
        reg.retain_last(2).unwrap();
        let versions: Vec<u64> = reg.versions().iter().map(|v| v.version).collect();
        assert_eq!(versions, vec![1, 4, 5], "active v1 survives pruning");
        assert!(reg.checkpoint_path(1).unwrap().exists());
        assert!(!dir.join("v2.ckpt").exists());
        assert!(!dir.join("v3.ckpt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_prefixes_never_parse() {
        let versions = vec![
            VersionInfo {
                version: 1,
                file: "v1.ckpt".into(),
                samples: 7,
                updates: 1,
            },
            VersionInfo {
                version: 9,
                file: "v9.ckpt".into(),
                samples: 70,
                updates: 12,
            },
        ];
        let bytes = encode_manifest(&versions, Some(9));
        let (back, active) = parse_manifest(&bytes).unwrap();
        assert_eq!(back, versions);
        assert_eq!(active, Some(9));
        for cut in 0..bytes.len() {
            assert!(
                parse_manifest(&bytes[..cut]).is_err(),
                "torn manifest parsed at byte {cut}"
            );
        }
    }
}
