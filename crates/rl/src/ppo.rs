//! Proximal Policy Optimization (Schulman et al., 2017) with the clipped
//! surrogate objective of the paper's Equation 4.

use crate::env::Environment;
use crate::rollout::{self, record_steps_per_sec, Batch};
use autophase_nn::{softmax, Activation, BatchWorkspace, GradScratch, Mlp, SoaMlp};
use autophase_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// PPO hyperparameters.
#[derive(Debug, Clone)]
pub struct PpoConfig {
    /// Hidden layer sizes (the paper's generalization runs use 256×256).
    pub hidden: Vec<usize>,
    /// Learning rate (Adam).
    pub lr: f64,
    /// Discount factor.
    pub gamma: f64,
    /// GAE λ.
    pub lam: f64,
    /// Clip parameter ε of Equation 4.
    pub clip: f64,
    /// Optimization epochs per batch (PPO's sample-reuse advantage over
    /// vanilla PG, §2.2).
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch: usize,
    /// Transitions collected per iteration.
    pub horizon: usize,
    /// Hard cap on episode length.
    pub max_episode_len: usize,
    /// Entropy bonus coefficient (exploration).
    pub entropy_coef: f64,
    /// Value-loss learning rate.
    pub vf_lr: f64,
}

impl Default for PpoConfig {
    fn default() -> PpoConfig {
        PpoConfig {
            hidden: vec![256, 256],
            lr: 3e-4,
            gamma: 0.99,
            lam: 0.95,
            clip: 0.2,
            epochs: 4,
            minibatch: 64,
            horizon: 256,
            max_episode_len: 64,
            entropy_coef: 0.01,
            vf_lr: 1e-3,
        }
    }
}

impl PpoConfig {
    /// A light configuration for tests and quick searches.
    pub fn small() -> PpoConfig {
        PpoConfig {
            hidden: vec![32, 32],
            horizon: 128,
            minibatch: 32,
            ..PpoConfig::default()
        }
    }
}

/// The PPO agent: a policy network and a value network.
#[derive(Debug, Clone)]
pub struct PpoAgent {
    /// Policy network producing action logits.
    pub policy: Mlp,
    /// Value network producing state-value estimates.
    pub value: Mlp,
    cfg: PpoConfig,
    rng: StdRng,
}

impl PpoAgent {
    /// Create an agent for the given observation/action dimensions.
    pub fn new(obs_dim: usize, n_actions: usize, cfg: &PpoConfig, seed: u64) -> PpoAgent {
        let mut psizes = vec![obs_dim];
        psizes.extend(&cfg.hidden);
        psizes.push(n_actions);
        let mut vsizes = vec![obs_dim];
        vsizes.extend(&cfg.hidden);
        vsizes.push(1);
        PpoAgent {
            policy: Mlp::new(&psizes, Activation::Tanh, seed),
            value: Mlp::new(&vsizes, Activation::Tanh, seed ^ 0xABCD),
            cfg: cfg.clone(),
            rng: StdRng::seed_from_u64(seed ^ 0x5EED),
        }
    }

    /// Action probabilities for an observation.
    pub fn action_probabilities(&self, obs: &[f64]) -> Vec<f64> {
        softmax(&self.policy.forward(obs))
    }

    /// Greedy action.
    pub fn act_greedy(&self, obs: &[f64]) -> usize {
        rollout::argmax(&self.policy.forward(obs))
    }

    /// Sampled action (exploration).
    pub fn act_sample(&mut self, obs: &[f64]) -> usize {
        let logits = self.policy.forward(obs);
        rollout::sample_action(&logits, &mut self.rng).0
    }

    /// Run `iterations` of collect-then-optimize. Returns the episode
    /// reward mean of each iteration's batch (the curve of Figure 8).
    pub fn train(&mut self, env: &mut dyn Environment, iterations: usize) -> Vec<f64> {
        let train_start = telemetry::maybe_now();
        let mut total_steps = 0u64;
        let mut curve = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let t = telemetry::maybe_now();
            let batch = rollout::collect(
                env,
                &self.policy,
                &self.value,
                self.cfg.horizon,
                self.cfg.max_episode_len,
                &mut self.rng,
            );
            telemetry::observe_since("rl.collect_ns", "ppo", t);
            total_steps += batch.transitions.len() as u64;
            curve.push(batch.episode_reward_mean());
            telemetry::set_gauge("rl.episode_reward_mean", "ppo", batch.episode_reward_mean());
            let t = telemetry::maybe_now();
            self.update(&batch);
            telemetry::observe_since("rl.update_ns", "ppo", t);
            telemetry::incr("rl.iterations", "ppo", 1);
            telemetry::incr("rl.steps", "ppo", batch.transitions.len() as u64);
        }
        record_steps_per_sec("ppo", total_steps, train_start);
        curve
    }

    /// Like [`PpoAgent::train`], but each iteration collects
    /// `episodes_per_iter` episodes across the worker environments in
    /// `envs` (one thread per environment).
    ///
    /// Collection is episode-indexed (see
    /// [`rollout::collect_episodes_parallel`]): the batch — and therefore
    /// the whole training run — is bit-identical for any worker count,
    /// including one. Iteration `i` collects global episodes
    /// `i·episodes_per_iter ..` so multi-program environments keep
    /// rotating programs across iterations.
    pub fn train_parallel(
        &mut self,
        envs: &mut [Box<dyn Environment + Send>],
        episodes_per_iter: usize,
        iterations: usize,
    ) -> Vec<f64> {
        let train_start = telemetry::maybe_now();
        let mut total_steps = 0u64;
        let mut curve = Vec::with_capacity(iterations);
        for i in 0..iterations {
            let seed: u64 = self.rng.gen();
            let t = telemetry::maybe_now();
            let batch = rollout::collect_episodes_parallel(
                envs,
                &self.policy,
                &self.value,
                episodes_per_iter,
                (i * episodes_per_iter) as u64,
                self.cfg.max_episode_len,
                seed,
            );
            telemetry::observe_since("rl.collect_ns", "ppo", t);
            total_steps += batch.transitions.len() as u64;
            curve.push(batch.episode_reward_mean());
            telemetry::set_gauge("rl.episode_reward_mean", "ppo", batch.episode_reward_mean());
            let t = telemetry::maybe_now();
            self.update(&batch);
            telemetry::observe_since("rl.update_ns", "ppo", t);
            telemetry::incr("rl.iterations", "ppo", 1);
            telemetry::incr("rl.steps", "ppo", batch.transitions.len() as u64);
        }
        record_steps_per_sec("ppo", total_steps, train_start);
        curve
    }

    /// One PPO optimization phase on a collected batch.
    ///
    /// Each minibatch runs one batched SoA forward per network; the
    /// cached activations feed [`Mlp::backward_batch`], so the per-sample
    /// path's *two* scalar forwards (one for the loss, one hidden inside
    /// `backward`) collapse into one batched GEMM — with bit-identical
    /// gradients and Adam trajectories (pinned by `simd_diff` tests).
    pub fn update(&mut self, batch: &Batch) {
        let (mut adv, ret) = rollout::gae(batch, self.cfg.gamma, self.cfg.lam);
        rollout::normalize(&mut adv);
        let n = batch.transitions.len();
        let mut order: Vec<usize> = (0..n).collect();

        let mut psoa = SoaMlp::from_mlp(&self.policy);
        let mut vsoa = SoaMlp::from_mlp(&self.value);
        let mut pws = BatchWorkspace::new();
        let mut vws = BatchWorkspace::new();
        let mut pscratch = GradScratch::new();
        let mut vscratch = GradScratch::new();
        let n_actions = self.policy.output_dim();
        let mut pgrad: Vec<f64> = Vec::new();
        let mut vgrad: Vec<f64> = Vec::new();

        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut self.rng);
            for chunk in order.chunks(self.cfg.minibatch.max(1)) {
                pws.begin(&psoa);
                vws.begin(&vsoa);
                for &i in chunk {
                    let obs = &batch.transitions[i].obs;
                    pws.push_input(obs);
                    vws.push_input(obs);
                }
                psoa.forward_batch(&mut pws);
                vsoa.forward_batch(&mut vws);

                pgrad.clear();
                pgrad.resize(chunk.len() * n_actions, 0.0);
                vgrad.clear();
                vgrad.resize(chunk.len(), 0.0);
                for (bi, &i) in chunk.iter().enumerate() {
                    let t = &batch.transitions[i];
                    let probs = softmax(pws.logits(bi));
                    let logp_new = probs[t.action].max(1e-12).ln();
                    let ratio = (logp_new - t.logp).exp();
                    let a = adv[i];
                    // Clipped surrogate: gradient flows only through the
                    // unclipped branch when it is the active minimum.
                    let unclipped = ratio * a;
                    let clipped = ratio.clamp(1.0 - self.cfg.clip, 1.0 + self.cfg.clip) * a;
                    let use_unclipped = unclipped <= clipped + 1e-12;
                    // dL/dlogits.
                    let grad = &mut pgrad[bi * n_actions..(bi + 1) * n_actions];
                    if use_unclipped {
                        // L = -ratio * A; dlogp/dlogit_j = 1{j=a} - p_j;
                        // dL/dlogit_j = -A * ratio * (1{j=a} - p_j)
                        for (j, g) in grad.iter_mut().enumerate() {
                            let ind = if j == t.action { 1.0 } else { 0.0 };
                            *g = -a * ratio * (ind - probs[j]);
                        }
                    }
                    // Entropy bonus: L -= β H; dH/dlogit_j = -p_j (log p_j + H)
                    if self.cfg.entropy_coef > 0.0 {
                        let h: f64 = -probs
                            .iter()
                            .map(|&p| p.max(1e-12) * p.max(1e-12).ln())
                            .sum::<f64>();
                        for (j, g) in grad.iter_mut().enumerate() {
                            let dh = -probs[j] * (probs[j].max(1e-12).ln() + h);
                            *g -= self.cfg.entropy_coef * dh;
                        }
                    }
                    // Value regression: L = 0.5 (v - ret)^2.
                    vgrad[bi] = vws.logits(bi)[0] - ret[i];
                }
                self.policy.backward_batch(&pws, &pgrad, &mut pscratch);
                self.value.backward_batch(&vws, &vgrad, &mut vscratch);
                self.policy.step(self.cfg.lr);
                self.value.step(self.cfg.vf_lr);
                psoa.refresh(&self.policy);
                vsoa.refresh(&self.value);
            }
        }
    }

    /// Access the configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ChainEnv;

    #[test]
    fn solves_two_step_chain() {
        let mut env = ChainEnv::new(vec![2, 0], 3);
        let mut agent = PpoAgent::new(3, 3, &PpoConfig::small(), 11);
        let curve = agent.train(&mut env, 30);
        let early: f64 = curve[..5].iter().sum::<f64>() / 5.0;
        let late: f64 = curve[curve.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(late > early, "no learning: early={early} late={late}");
        assert!(late > 1.6, "should approach 2.0, got {late}");
        // Greedy policy is correct at both positions.
        assert_eq!(agent.act_greedy(&[1.0, 0.0, 0.0]), 2);
        assert_eq!(agent.act_greedy(&[0.0, 1.0, 0.0]), 0);
    }

    #[test]
    fn entropy_keeps_probabilities_soft_early() {
        let agent = PpoAgent::new(3, 4, &PpoConfig::small(), 3);
        let p = agent.action_probabilities(&[1.0, 0.0, 0.0]);
        // Fresh network ≈ uniform.
        assert!(p.iter().all(|&x| x > 0.1 && x < 0.5), "{p:?}");
    }

    #[test]
    fn deterministic_training() {
        let mk = || {
            let mut env = ChainEnv::new(vec![1], 2);
            let mut agent = PpoAgent::new(2, 2, &PpoConfig::small(), 5);
            agent.train(&mut env, 5)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn parallel_training_is_worker_count_invariant() {
        let run = |workers: usize| {
            let mut envs: Vec<Box<dyn Environment + Send>> = (0..workers)
                .map(|_| Box::new(ChainEnv::new(vec![2, 0], 3)) as Box<dyn Environment + Send>)
                .collect();
            let mut agent = PpoAgent::new(3, 3, &PpoConfig::small(), 11);
            let curve = agent.train_parallel(&mut envs, 12, 6);
            (curve, agent.policy.parameters(), agent.value.parameters())
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    #[test]
    fn parallel_training_learns_chain() {
        let mut envs: Vec<Box<dyn Environment + Send>> = (0..2)
            .map(|_| Box::new(ChainEnv::new(vec![2, 0], 3)) as Box<dyn Environment + Send>)
            .collect();
        let mut agent = PpoAgent::new(3, 3, &PpoConfig::small(), 11);
        let curve = agent.train_parallel(&mut envs, 48, 30);
        let late: f64 = curve[curve.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(late > 1.6, "should approach 2.0, got {late}");
        assert_eq!(agent.act_greedy(&[1.0, 0.0, 0.0]), 2);
        assert_eq!(agent.act_greedy(&[0.0, 1.0, 0.0]), 0);
    }

    #[test]
    fn zero_reward_env_stays_near_uniform() {
        // RL-PPO1 in the paper: all rewards zeroed → no preference learned.
        struct Zero;
        impl Environment for Zero {
            fn observation_dim(&self) -> usize {
                1
            }
            fn num_actions(&self) -> usize {
                2
            }
            fn reset(&mut self) -> Vec<f64> {
                vec![0.0]
            }
            fn step(&mut self, _: usize) -> crate::env::StepResult {
                crate::env::StepResult {
                    observation: vec![0.0],
                    reward: 0.0,
                    done: true,
                }
            }
        }
        let mut agent = PpoAgent::new(1, 2, &PpoConfig::small(), 17);
        agent.train(&mut Zero, 20);
        let p = agent.action_probabilities(&[0.0]);
        assert!((p[0] - 0.5).abs() < 0.2, "{p:?}");
    }
}
