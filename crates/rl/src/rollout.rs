//! Trajectory collection and generalized advantage estimation.
//!
//! Two collection schemes coexist:
//!
//! * [`collect`] — the original serial scheme: one environment, one RNG
//!   stream, "at least `horizon` transitions".
//! * [`collect_episodes`] / [`collect_episodes_parallel`] — the
//!   episode-indexed scheme: exactly `n_episodes` episodes, where episode
//!   `i` always starts from [`Environment::reset_to`]`(i)` and uses an RNG
//!   stream derived from `(seed, i)`. Because nothing about an episode
//!   depends on which worker runs it or in what order, the serial and
//!   parallel collectors produce bit-identical batches for any worker
//!   count — the property the determinism tests pin down.

use crate::env::Environment;
use autophase_nn::{softmax, Mlp};
use autophase_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One transition of a trajectory.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Observation before the action.
    pub obs: Vec<f64>,
    /// Chosen action.
    pub action: usize,
    /// Immediate reward.
    pub reward: f64,
    /// Log-probability of the action under the behaviour policy.
    pub logp: f64,
    /// Critic's value estimate of `obs`.
    pub value: f64,
    /// Episode ended at this transition.
    pub done: bool,
}

/// A batch of transitions with per-episode returns.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// Transitions in collection order.
    pub transitions: Vec<Transition>,
    /// Total (undiscounted) reward of each completed episode.
    pub episode_returns: Vec<f64>,
}

impl Batch {
    /// Mean return of completed episodes (0 when none completed).
    pub fn episode_reward_mean(&self) -> f64 {
        if self.episode_returns.is_empty() {
            0.0
        } else {
            self.episode_returns.iter().sum::<f64>() / self.episode_returns.len() as f64
        }
    }
}

/// Sample an action from a categorical distribution given logits.
/// Returns `(action, log_prob)`.
pub fn sample_action(logits: &[f64], rng: &mut StdRng) -> (usize, f64) {
    let probs = softmax(logits);
    let r: f64 = rng.gen();
    let mut cum = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        cum += p;
        if r <= cum {
            return (i, p.max(1e-12).ln());
        }
    }
    let last = probs.len() - 1;
    (last, probs[last].max(1e-12).ln())
}

/// Greedy action.
pub fn argmax(logits: &[f64]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("nonempty logits")
}

/// Collect at least `horizon` transitions (finishing the final episode).
pub fn collect(
    env: &mut dyn Environment,
    policy: &Mlp,
    value: &Mlp,
    horizon: usize,
    max_episode_len: usize,
    rng: &mut StdRng,
) -> Batch {
    let _span = telemetry::span("rollout.batch");
    let mut batch = Batch::default();
    while batch.transitions.len() < horizon {
        let mut obs = env.reset();
        let mut ep_return = 0.0;
        for t in 0..max_episode_len {
            let logits = policy.forward(&obs);
            let (action, logp) = sample_action(&logits, rng);
            let v = value.forward(&obs)[0];
            let step = env.step(action);
            ep_return += step.reward;
            let done = step.done || t + 1 == max_episode_len;
            batch.transitions.push(Transition {
                obs: obs.clone(),
                action,
                reward: step.reward,
                logp,
                value: v,
                done,
            });
            obs = step.observation;
            if done {
                break;
            }
        }
        batch.episode_returns.push(ep_return);
    }
    telemetry::incr("rollout.steps", "", batch.transitions.len() as u64);
    telemetry::incr("rollout.episodes", "", batch.episode_returns.len() as u64);
    batch
}

/// Derive the RNG seed of episode `episode` from a batch seed. Distinct
/// episodes get well-separated streams (SplitMix64 finalizer over the
/// pair), and the derivation is what makes episodes relocatable across
/// workers.
pub fn episode_seed(seed: u64, episode: u64) -> u64 {
    let mut z = seed ^ episode.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run one indexed episode and return its transitions and total reward.
fn run_episode(
    env: &mut dyn Environment,
    policy: &Mlp,
    value: &Mlp,
    episode: u64,
    max_episode_len: usize,
    seed: u64,
) -> (Vec<Transition>, f64) {
    let _span = telemetry::span("rollout.episode");
    let mut rng = StdRng::seed_from_u64(episode_seed(seed, episode));
    let mut obs = env.reset_to(episode);
    let mut transitions = Vec::new();
    let mut ep_return = 0.0;
    for t in 0..max_episode_len {
        let logits = policy.forward(&obs);
        let (action, logp) = sample_action(&logits, &mut rng);
        let v = value.forward(&obs)[0];
        let step = env.step(action);
        ep_return += step.reward;
        let done = step.done || t + 1 == max_episode_len;
        transitions.push(Transition {
            obs: obs.clone(),
            action,
            reward: step.reward,
            logp,
            value: v,
            done,
        });
        obs = step.observation;
        if done {
            break;
        }
    }
    telemetry::incr("rollout.steps", "", transitions.len() as u64);
    telemetry::incr("rollout.episodes", "", 1);
    (transitions, ep_return)
}

/// Collect episodes `base_episode .. base_episode + n_episodes` serially.
///
/// The reference implementation of the episode-indexed scheme: the
/// parallel collector must (and is tested to) produce exactly this batch.
pub fn collect_episodes(
    env: &mut dyn Environment,
    policy: &Mlp,
    value: &Mlp,
    n_episodes: usize,
    base_episode: u64,
    max_episode_len: usize,
    seed: u64,
) -> Batch {
    let _span = telemetry::span("rollout.batch");
    let mut batch = Batch::default();
    for e in 0..n_episodes as u64 {
        let (transitions, ep_return) =
            run_episode(env, policy, value, base_episode + e, max_episode_len, seed);
        batch.transitions.extend(transitions);
        batch.episode_returns.push(ep_return);
    }
    batch
}

/// Collect episodes `base_episode .. base_episode + n_episodes` on a pool
/// of worker threads — one per environment in `envs`.
///
/// Worker `w` statically handles episodes `w, w+W, w+2W, …` (`W` =
/// `envs.len()`), each seeded by [`episode_seed`] and started with
/// [`Environment::reset_to`], and the results are merged in episode-index
/// order — so the batch is bit-identical to [`collect_episodes`] for
/// *any* worker count. Environments typically share one evaluation cache,
/// which is where the wall-clock win comes from on small machines.
///
/// Telemetry (observational only — timings are recorded, never consulted):
/// the parent thread opens a `rollout.batch` span and each worker a
/// `rollout.worker` span, so episode spans nest as
/// `rollout.worker/rollout.episode` on worker threads. Per-worker busy
/// time lands in `rollout.worker_busy_ns{w<i>}` counters and utilization
/// (busy / batch wall) in `rollout.worker_util{w<i>}` gauges.
pub fn collect_episodes_parallel(
    envs: &mut [Box<dyn Environment + Send>],
    policy: &Mlp,
    value: &Mlp,
    n_episodes: usize,
    base_episode: u64,
    max_episode_len: usize,
    seed: u64,
) -> Batch {
    assert!(!envs.is_empty(), "need at least one worker environment");
    let _span = telemetry::span("rollout.batch");
    let batch_start = telemetry::maybe_now();
    let workers = envs.len();
    let mut per_episode: Vec<Option<(Vec<Transition>, f64)>> = vec![None; n_episodes];
    let mut busy_ns: Vec<u64> = vec![0; workers];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (w, env) in envs.iter_mut().enumerate() {
            handles.push(scope.spawn(move || {
                let _wspan = telemetry::span("rollout.worker");
                let wstart = telemetry::maybe_now();
                let mut mine = Vec::new();
                let mut e = w;
                while e < n_episodes {
                    let (transitions, ep_return) = run_episode(
                        env.as_mut(),
                        policy,
                        value,
                        base_episode + e as u64,
                        max_episode_len,
                        seed,
                    );
                    mine.push((e, transitions, ep_return));
                    e += workers;
                }
                let busy = wstart.map_or(0, |t| t.elapsed().as_nanos() as u64);
                (mine, busy)
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            let (mine, busy) = h.join().expect("rollout worker panicked");
            busy_ns[w] = busy;
            for (e, transitions, ep_return) in mine {
                per_episode[e] = Some((transitions, ep_return));
            }
        }
    });
    if let Some(t) = batch_start {
        let wall = t.elapsed().as_nanos() as u64;
        telemetry::observe("rollout.batch_ns", "", wall);
        for (w, &busy) in busy_ns.iter().enumerate() {
            let label = format!("w{w}");
            telemetry::counter("rollout.worker_busy_ns", &label).add(busy);
            let util = if wall > 0 {
                busy as f64 / wall as f64
            } else {
                0.0
            };
            telemetry::gauge("rollout.worker_util", &label).set(util);
        }
    }
    let mut batch = Batch::default();
    for slot in per_episode {
        let (transitions, ep_return) = slot.expect("episode not collected");
        batch.transitions.extend(transitions);
        batch.episode_returns.push(ep_return);
    }
    batch
}

/// Record a `rl.steps_per_sec{<algo>}` gauge from a training run's total
/// environment-step count and its start time (from
/// [`telemetry::maybe_now`]). No-op when `start` is `None` (telemetry was
/// disabled when the run began) — purely observational either way.
pub fn record_steps_per_sec(algo: &str, total_steps: u64, start: Option<std::time::Instant>) {
    if let Some(t) = start {
        let secs = t.elapsed().as_secs_f64();
        if secs > 0.0 && telemetry::enabled() {
            telemetry::gauge("rl.steps_per_sec", algo).set(total_steps as f64 / secs);
        }
    }
}

/// Compute GAE(λ) advantages and discounted returns for a batch.
/// Returns `(advantages, returns)` aligned with `batch.transitions`.
pub fn gae(batch: &Batch, gamma: f64, lam: f64) -> (Vec<f64>, Vec<f64>) {
    let n = batch.transitions.len();
    let mut adv = vec![0.0; n];
    let mut ret = vec![0.0; n];
    let mut running_adv = 0.0;
    for i in (0..n).rev() {
        let t = &batch.transitions[i];
        let next_value = if t.done || i + 1 == n {
            0.0
        } else {
            batch.transitions[i + 1].value
        };
        let delta = t.reward + gamma * next_value - t.value;
        running_adv = if t.done {
            delta
        } else {
            delta + gamma * lam * running_adv
        };
        adv[i] = running_adv;
        ret[i] = adv[i] + t.value;
    }
    (adv, ret)
}

/// Normalize advantages to zero mean / unit variance (PPO detail).
pub fn normalize(adv: &mut [f64]) {
    if adv.len() < 2 {
        return;
    }
    let mean = adv.iter().sum::<f64>() / adv.len() as f64;
    let var = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / adv.len() as f64;
    let std = var.sqrt().max(1e-8);
    for a in adv {
        *a = (*a - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ChainEnv;
    use autophase_nn::Activation;
    use rand::SeedableRng;

    #[test]
    fn collect_fills_horizon() {
        let mut env = ChainEnv::new(vec![0, 1], 2);
        let policy = Mlp::new(&[3, 8, 2], Activation::Tanh, 1);
        let value = Mlp::new(&[3, 8, 1], Activation::Tanh, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let b = collect(&mut env, &policy, &value, 10, 50, &mut rng);
        assert!(b.transitions.len() >= 10);
        assert!(!b.episode_returns.is_empty());
        // Every episode in the chain has length 2.
        assert_eq!(b.transitions.len() % 2, 0);
    }

    #[test]
    fn gae_on_known_sequence() {
        // Single episode, two steps, value = 0 everywhere, gamma=1, lam=1:
        // advantages are reward-to-go.
        let batch = Batch {
            transitions: vec![
                Transition {
                    obs: vec![],
                    action: 0,
                    reward: 1.0,
                    logp: 0.0,
                    value: 0.0,
                    done: false,
                },
                Transition {
                    obs: vec![],
                    action: 0,
                    reward: 2.0,
                    logp: 0.0,
                    value: 0.0,
                    done: true,
                },
            ],
            episode_returns: vec![3.0],
        };
        let (adv, ret) = gae(&batch, 1.0, 1.0);
        assert_eq!(adv, vec![3.0, 2.0]);
        assert_eq!(ret, vec![3.0, 2.0]);
    }

    #[test]
    fn gae_resets_at_episode_boundary() {
        let t = |r: f64, done: bool| Transition {
            obs: vec![],
            action: 0,
            reward: r,
            logp: 0.0,
            value: 0.0,
            done,
        };
        let batch = Batch {
            transitions: vec![t(5.0, true), t(1.0, true)],
            episode_returns: vec![5.0, 1.0],
        };
        let (adv, _) = gae(&batch, 0.99, 0.95);
        assert_eq!(adv, vec![5.0, 1.0]); // no bleed across the boundary
    }

    #[test]
    fn normalize_standardizes() {
        let mut a = vec![1.0, 2.0, 3.0, 4.0];
        normalize(&mut a);
        let mean: f64 = a.iter().sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        let var: f64 = a.iter().map(|x| x * x).sum::<f64>() / 4.0;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serial_and_parallel_collection_agree() {
        let policy = Mlp::new(&[3, 8, 2], Activation::Tanh, 1);
        let value = Mlp::new(&[3, 8, 1], Activation::Tanh, 2);
        let mut env = ChainEnv::new(vec![0, 1], 2);
        let serial = collect_episodes(&mut env, &policy, &value, 9, 4, 50, 77);
        for workers in [1usize, 2, 3, 5] {
            let mut envs: Vec<Box<dyn Environment + Send>> = (0..workers)
                .map(|_| Box::new(ChainEnv::new(vec![0, 1], 2)) as Box<dyn Environment + Send>)
                .collect();
            let parallel = collect_episodes_parallel(&mut envs, &policy, &value, 9, 4, 50, 77);
            assert_eq!(serial.episode_returns, parallel.episode_returns);
            assert_eq!(serial.transitions.len(), parallel.transitions.len());
            for (s, p) in serial.transitions.iter().zip(&parallel.transitions) {
                assert_eq!(s.action, p.action);
                assert_eq!(s.obs, p.obs);
                assert_eq!(s.reward, p.reward);
                assert_eq!(s.logp, p.logp);
                assert_eq!(s.value, p.value);
                assert_eq!(s.done, p.done);
            }
        }
    }

    #[test]
    fn episode_seeds_are_distinct_and_stable() {
        assert_eq!(episode_seed(5, 0), episode_seed(5, 0));
        assert_ne!(episode_seed(5, 0), episode_seed(5, 1));
        assert_ne!(episode_seed(5, 0), episode_seed(6, 0));
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(9);
        let logits = vec![0.0, 3.0];
        let mut count1 = 0;
        for _ in 0..500 {
            let (a, logp) = sample_action(&logits, &mut rng);
            assert!(logp <= 0.0);
            count1 += (a == 1) as usize;
        }
        assert!(count1 > 400, "action 1 should dominate: {count1}");
        assert_eq!(argmax(&logits), 1);
    }
}
