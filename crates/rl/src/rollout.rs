//! Trajectory collection and generalized advantage estimation.
//!
//! Two collection schemes coexist:
//!
//! * [`collect`] — the original serial scheme: one environment, one RNG
//!   stream, "at least `horizon` transitions".
//! * [`collect_episodes`] / [`collect_episodes_parallel`] — the
//!   episode-indexed scheme: exactly `n_episodes` episodes, where episode
//!   `i` always starts from [`Environment::reset_to`]`(i)` and uses an RNG
//!   stream derived from `(seed, i)`. Because nothing about an episode
//!   depends on which worker runs it or in what order, the serial and
//!   parallel collectors produce bit-identical batches for any worker
//!   count — the property the determinism tests pin down.

use crate::env::Environment;
use autophase_nn::{softmax, BatchWorkspace, Mlp, SoaMlp};
use autophase_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock a mutex, recovering from poisoning. A panicked worker leaves its
/// locks poisoned; every value guarded here (queues, result slots, worker
/// environments) is either re-initialized on reuse or episode-scoped, so
/// the stale state is harmless and the guard is safe to hand out.
fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One collected episode: its transitions and total reward.
type EpisodeResult = (Vec<Transition>, f64);

/// One transition of a trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Observation before the action.
    pub obs: Vec<f64>,
    /// Chosen action.
    pub action: usize,
    /// Immediate reward.
    pub reward: f64,
    /// Log-probability of the action under the behaviour policy.
    pub logp: f64,
    /// Critic's value estimate of `obs`.
    pub value: f64,
    /// Episode ended at this transition.
    pub done: bool,
}

/// A batch of transitions with per-episode returns.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// Transitions in collection order.
    pub transitions: Vec<Transition>,
    /// Total (undiscounted) reward of each completed episode.
    pub episode_returns: Vec<f64>,
}

impl Batch {
    /// Mean return of completed episodes (0 when none completed).
    pub fn episode_reward_mean(&self) -> f64 {
        if self.episode_returns.is_empty() {
            0.0
        } else {
            self.episode_returns.iter().sum::<f64>() / self.episode_returns.len() as f64
        }
    }
}

/// Sample an action from a categorical distribution given logits.
/// Returns `(action, log_prob)`.
pub fn sample_action(logits: &[f64], rng: &mut StdRng) -> (usize, f64) {
    let probs = softmax(logits);
    let r: f64 = rng.gen();
    let mut cum = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        cum += p;
        if r <= cum {
            return (i, p.max(1e-12).ln());
        }
    }
    let last = probs.len() - 1;
    (last, probs[last].max(1e-12).ln())
}

/// Greedy action.
pub fn argmax(logits: &[f64]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("nonempty logits")
}

/// Collect at least `horizon` transitions (finishing the final episode).
pub fn collect(
    env: &mut dyn Environment,
    policy: &Mlp,
    value: &Mlp,
    horizon: usize,
    max_episode_len: usize,
    rng: &mut StdRng,
) -> Batch {
    let _span = telemetry::span("rollout.batch");
    // Weights are fixed for the whole collection, so transpose once into
    // SoA mirrors and reuse two workspaces — per-step forwards then run
    // allocation-free and bit-identical to `Mlp::forward`.
    let psoa = SoaMlp::from_mlp(policy);
    let vsoa = SoaMlp::from_mlp(value);
    let mut pws = BatchWorkspace::new();
    let mut vws = BatchWorkspace::new();
    let mut batch = Batch::default();
    while batch.transitions.len() < horizon {
        let mut obs = env.reset();
        let mut ep_return = 0.0;
        for t in 0..max_episode_len {
            let logits = psoa.forward_one(&obs, &mut pws);
            let (action, logp) = sample_action(logits, rng);
            let v = vsoa.forward_one(&obs, &mut vws)[0];
            let step = env.step(action);
            ep_return += step.reward;
            let done = step.done || t + 1 == max_episode_len;
            batch.transitions.push(Transition {
                // Hand the pre-step observation to the transition and slide
                // the new one into `obs` — no per-step Vec clone.
                obs: std::mem::replace(&mut obs, step.observation),
                action,
                reward: step.reward,
                logp,
                value: v,
                done,
            });
            if done {
                break;
            }
        }
        batch.episode_returns.push(ep_return);
    }
    telemetry::incr("rollout.steps", "", batch.transitions.len() as u64);
    telemetry::incr("rollout.episodes", "", batch.episode_returns.len() as u64);
    batch
}

/// Derive the RNG seed of episode `episode` from a batch seed. Distinct
/// episodes get well-separated streams (SplitMix64 finalizer over the
/// pair), and the derivation is what makes episodes relocatable across
/// workers.
pub fn episode_seed(seed: u64, episode: u64) -> u64 {
    let mut z = seed ^ episode.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run one indexed episode and return its transitions and total reward.
///
/// Takes pre-transposed SoA mirrors (shared, read-only) plus caller-owned
/// workspaces, so episode loops never re-transpose weights or allocate
/// activations per step.
#[allow(clippy::too_many_arguments)]
fn run_episode(
    env: &mut dyn Environment,
    psoa: &SoaMlp,
    vsoa: &SoaMlp,
    pws: &mut BatchWorkspace,
    vws: &mut BatchWorkspace,
    episode: u64,
    max_episode_len: usize,
    seed: u64,
) -> (Vec<Transition>, f64) {
    let _span = telemetry::span("rollout.episode");
    let mut rng = StdRng::seed_from_u64(episode_seed(seed, episode));
    let mut obs = env.reset_to(episode);
    let mut transitions = Vec::new();
    let mut ep_return = 0.0;
    for t in 0..max_episode_len {
        let logits = psoa.forward_one(&obs, pws);
        let (action, logp) = sample_action(logits, &mut rng);
        let v = vsoa.forward_one(&obs, vws)[0];
        let step = env.step(action);
        ep_return += step.reward;
        let done = step.done || t + 1 == max_episode_len;
        transitions.push(Transition {
            // Hand the pre-step observation to the transition and slide
            // the new one into `obs` — no per-step Vec clone.
            obs: std::mem::replace(&mut obs, step.observation),
            action,
            reward: step.reward,
            logp,
            value: v,
            done,
        });
        if done {
            break;
        }
    }
    telemetry::incr("rollout.steps", "", transitions.len() as u64);
    telemetry::incr("rollout.episodes", "", 1);
    (transitions, ep_return)
}

/// Collect episodes `base_episode .. base_episode + n_episodes` serially.
///
/// The reference implementation of the episode-indexed scheme: the
/// parallel collector must (and is tested to) produce exactly this batch.
pub fn collect_episodes(
    env: &mut dyn Environment,
    policy: &Mlp,
    value: &Mlp,
    n_episodes: usize,
    base_episode: u64,
    max_episode_len: usize,
    seed: u64,
) -> Batch {
    let _span = telemetry::span("rollout.batch");
    let psoa = SoaMlp::from_mlp(policy);
    let vsoa = SoaMlp::from_mlp(value);
    let mut pws = BatchWorkspace::new();
    let mut vws = BatchWorkspace::new();
    let mut batch = Batch::default();
    for e in 0..n_episodes as u64 {
        let (transitions, ep_return) = run_episode(
            env,
            &psoa,
            &vsoa,
            &mut pws,
            &mut vws,
            base_episode + e,
            max_episode_len,
            seed,
        );
        batch.transitions.extend(transitions);
        batch.episode_returns.push(ep_return);
    }
    batch
}

/// Bounded-retry policy for [`collect_episodes_supervised`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// How many times a panicked episode is re-queued before being marked
    /// failed-and-skipped (total attempts = retries + 1).
    pub max_episode_retries: u32,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_episode_retries: 2,
        }
    }
}

/// The outcome of a supervised collection: the batch plus fault metadata.
#[derive(Debug, Clone, Default)]
pub struct SupervisedBatch {
    /// Every completed episode's transitions/returns, merged in
    /// episode-index order. Failed episodes are absent.
    pub batch: Batch,
    /// Absolute indices of episodes that panicked on every attempt and
    /// were skipped.
    pub failed_episodes: Vec<u64>,
    /// Worker threads respawned after a panic.
    pub worker_respawns: u64,
}

/// One supervised worker: drain the shared episode queue on slot `w`'s
/// environment, publishing each result as soon as it completes. A panic
/// anywhere in here kills only this thread; the supervisor reads
/// `in_flight[w]` to learn which episode died.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    queue: &Mutex<VecDeque<usize>>,
    results: &[Mutex<Option<EpisodeResult>>],
    in_flight: &[AtomicU64],
    busy_ns: &[AtomicU64],
    env_slots: &[Mutex<&mut Box<dyn Environment + Send>>],
    psoa: &SoaMlp,
    vsoa: &SoaMlp,
    base_episode: u64,
    max_episode_len: usize,
    seed: u64,
) {
    let _wspan = telemetry::span("rollout.worker");
    let wstart = telemetry::maybe_now();
    // SoA mirrors are shared read-only across workers; activations are
    // thread-local, so each worker owns its workspaces.
    let mut pws = BatchWorkspace::new();
    let mut vws = BatchWorkspace::new();
    loop {
        // Claim an episode and mark it in-flight under the queue lock, so
        // a panic can never lose an episode between the two updates
        // (in_flight stores index+1; 0 means idle).
        let e = {
            let mut q = lock_recover(queue);
            match q.pop_front() {
                Some(e) => {
                    in_flight[w].store(e as u64 + 1, Ordering::SeqCst);
                    e
                }
                None => break,
            }
        };
        let mut env = lock_recover(&env_slots[w]);
        let out = run_episode(
            env.as_mut(),
            psoa,
            vsoa,
            &mut pws,
            &mut vws,
            base_episode + e as u64,
            max_episode_len,
            seed,
        );
        drop(env);
        *lock_recover(&results[e]) = Some(out);
        in_flight[w].store(0, Ordering::SeqCst);
    }
    if let Some(t) = wstart {
        busy_ns[w].fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Collect episodes `base_episode .. base_episode + n_episodes` on a
/// supervised pool of worker threads — one slot per environment in `envs`.
///
/// Workers pull episodes from a shared queue; each episode is seeded by
/// [`episode_seed`], started with [`Environment::reset_to`], and merged in
/// episode-index order, so the batch is bit-identical to
/// [`collect_episodes`] for *any* worker count (episodes are relocatable
/// across workers by construction). A worker that panics is **respawned**
/// on the same environment slot (recovering the slot's poisoned lock) and
/// its in-flight episode is retried up to
/// [`SupervisorConfig::max_episode_retries`] times, then marked
/// failed-and-skipped — one pathological episode can no longer abort a
/// training run, and episodes it didn't touch are unaffected.
///
/// Telemetry (observational only — timings are recorded, never consulted):
/// the parent thread opens a `rollout.batch` span and each worker a
/// `rollout.worker` span, so episode spans nest as
/// `rollout.worker/rollout.episode` on worker threads. Per-worker busy
/// time lands in `rollout.worker_busy_ns{w<i>}` counters, utilization
/// (busy / batch wall) in `rollout.worker_util{w<i>}` gauges, and each
/// respawn increments the `worker_respawn_total` counter.
#[allow(clippy::too_many_arguments)]
pub fn collect_episodes_supervised(
    envs: &mut [Box<dyn Environment + Send>],
    policy: &Mlp,
    value: &Mlp,
    n_episodes: usize,
    base_episode: u64,
    max_episode_len: usize,
    seed: u64,
    cfg: &SupervisorConfig,
) -> SupervisedBatch {
    assert!(!envs.is_empty(), "need at least one worker environment");
    let _span = telemetry::span("rollout.batch");
    let batch_start = telemetry::maybe_now();
    let workers = envs.len();
    // One SoA transpose for the whole batch, shared by every worker.
    let psoa = SoaMlp::from_mlp(policy);
    let vsoa = SoaMlp::from_mlp(value);

    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..n_episodes).collect());
    let results: Vec<Mutex<Option<EpisodeResult>>> =
        (0..n_episodes).map(|_| Mutex::new(None)).collect();
    let attempts: Vec<AtomicU32> = (0..n_episodes).map(|_| AtomicU32::new(0)).collect();
    let in_flight: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let busy_ns: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let env_slots: Vec<Mutex<&mut Box<dyn Environment + Send>>> =
        envs.iter_mut().map(Mutex::new).collect();

    let mut respawns = 0u64;
    let mut failed: Vec<u64> = Vec::new();

    std::thread::scope(|scope| {
        let spawn = |w: usize| {
            let (queue, results, in_flight, busy_ns, env_slots) =
                (&queue, &results, &in_flight, &busy_ns, &env_slots);
            let (psoa, vsoa) = (&psoa, &vsoa);
            scope.spawn(move || {
                worker_loop(
                    w,
                    queue,
                    results,
                    in_flight,
                    busy_ns,
                    env_slots,
                    psoa,
                    vsoa,
                    base_episode,
                    max_episode_len,
                    seed,
                )
            })
        };
        let mut handles: Vec<_> = (0..workers).map(|w| (w, spawn(w))).collect();
        // Round-based supervision: join everything, respawn what panicked,
        // repeat until a round ends with no casualties.
        while !handles.is_empty() {
            let mut next = Vec::new();
            for (w, h) in handles {
                if h.join().is_ok() {
                    continue;
                }
                respawns += 1;
                telemetry::incr("worker_respawn_total", "", 1);
                let dying = in_flight[w].swap(0, Ordering::SeqCst);
                if dying != 0 {
                    let e = (dying - 1) as usize;
                    let tries = attempts[e].fetch_add(1, Ordering::SeqCst) + 1;
                    if tries > cfg.max_episode_retries {
                        failed.push(base_episode + e as u64);
                    } else {
                        lock_recover(&queue).push_front(e);
                    }
                }
                next.push((w, spawn(w)));
            }
            handles = next;
        }
    });

    if let Some(t) = batch_start {
        let wall = t.elapsed().as_nanos() as u64;
        telemetry::observe("rollout.batch_ns", "", wall);
        for (w, busy) in busy_ns.iter().enumerate() {
            let busy = busy.load(Ordering::Relaxed);
            let label = format!("w{w}");
            telemetry::counter("rollout.worker_busy_ns", &label).add(busy);
            let util = if wall > 0 {
                busy as f64 / wall as f64
            } else {
                0.0
            };
            telemetry::gauge("rollout.worker_util", &label).set(util);
        }
    }

    failed.sort_unstable();
    failed.dedup();
    let mut out = SupervisedBatch {
        failed_episodes: failed,
        worker_respawns: respawns,
        ..SupervisedBatch::default()
    };
    for (e, slot) in results.iter().enumerate() {
        if out.failed_episodes.contains(&(base_episode + e as u64)) {
            continue;
        }
        if let Some((transitions, ep_return)) = lock_recover(slot).take() {
            out.batch.transitions.extend(transitions);
            out.batch.episode_returns.push(ep_return);
        }
    }
    out
}

/// Collect episodes `base_episode .. base_episode + n_episodes` on a pool
/// of worker threads — one per environment in `envs`.
///
/// A thin wrapper over [`collect_episodes_supervised`] with the default
/// retry policy, keeping only the batch: with no faults it is
/// bit-identical to [`collect_episodes`] for any worker count, and under
/// faults it degrades gracefully (panicking episodes are retried, then
/// skipped) instead of aborting the run.
pub fn collect_episodes_parallel(
    envs: &mut [Box<dyn Environment + Send>],
    policy: &Mlp,
    value: &Mlp,
    n_episodes: usize,
    base_episode: u64,
    max_episode_len: usize,
    seed: u64,
) -> Batch {
    collect_episodes_supervised(
        envs,
        policy,
        value,
        n_episodes,
        base_episode,
        max_episode_len,
        seed,
        &SupervisorConfig::default(),
    )
    .batch
}

/// Record a `rl.steps_per_sec{<algo>}` gauge from a training run's total
/// environment-step count and its start time (from
/// [`telemetry::maybe_now`]). No-op when `start` is `None` (telemetry was
/// disabled when the run began) — purely observational either way.
pub fn record_steps_per_sec(algo: &str, total_steps: u64, start: Option<std::time::Instant>) {
    if let Some(t) = start {
        let secs = t.elapsed().as_secs_f64();
        if secs > 0.0 && telemetry::enabled() {
            telemetry::gauge("rl.steps_per_sec", algo).set(total_steps as f64 / secs);
        }
    }
}

/// Compute GAE(λ) advantages and discounted returns for a batch.
/// Returns `(advantages, returns)` aligned with `batch.transitions`.
pub fn gae(batch: &Batch, gamma: f64, lam: f64) -> (Vec<f64>, Vec<f64>) {
    let n = batch.transitions.len();
    let mut adv = vec![0.0; n];
    let mut ret = vec![0.0; n];
    let mut running_adv = 0.0;
    for i in (0..n).rev() {
        let t = &batch.transitions[i];
        let next_value = if t.done || i + 1 == n {
            0.0
        } else {
            batch.transitions[i + 1].value
        };
        let delta = t.reward + gamma * next_value - t.value;
        running_adv = if t.done {
            delta
        } else {
            delta + gamma * lam * running_adv
        };
        adv[i] = running_adv;
        ret[i] = adv[i] + t.value;
    }
    (adv, ret)
}

/// Normalize advantages to zero mean / unit variance (PPO detail).
pub fn normalize(adv: &mut [f64]) {
    if adv.len() < 2 {
        return;
    }
    let mean = adv.iter().sum::<f64>() / adv.len() as f64;
    let var = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / adv.len() as f64;
    let std = var.sqrt().max(1e-8);
    for a in adv {
        *a = (*a - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ChainEnv;
    use autophase_nn::Activation;
    use rand::SeedableRng;

    #[test]
    fn collect_fills_horizon() {
        let mut env = ChainEnv::new(vec![0, 1], 2);
        let policy = Mlp::new(&[3, 8, 2], Activation::Tanh, 1);
        let value = Mlp::new(&[3, 8, 1], Activation::Tanh, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let b = collect(&mut env, &policy, &value, 10, 50, &mut rng);
        assert!(b.transitions.len() >= 10);
        assert!(!b.episode_returns.is_empty());
        // Every episode in the chain has length 2.
        assert_eq!(b.transitions.len() % 2, 0);
    }

    #[test]
    fn gae_on_known_sequence() {
        // Single episode, two steps, value = 0 everywhere, gamma=1, lam=1:
        // advantages are reward-to-go.
        let batch = Batch {
            transitions: vec![
                Transition {
                    obs: vec![],
                    action: 0,
                    reward: 1.0,
                    logp: 0.0,
                    value: 0.0,
                    done: false,
                },
                Transition {
                    obs: vec![],
                    action: 0,
                    reward: 2.0,
                    logp: 0.0,
                    value: 0.0,
                    done: true,
                },
            ],
            episode_returns: vec![3.0],
        };
        let (adv, ret) = gae(&batch, 1.0, 1.0);
        assert_eq!(adv, vec![3.0, 2.0]);
        assert_eq!(ret, vec![3.0, 2.0]);
    }

    #[test]
    fn gae_resets_at_episode_boundary() {
        let t = |r: f64, done: bool| Transition {
            obs: vec![],
            action: 0,
            reward: r,
            logp: 0.0,
            value: 0.0,
            done,
        };
        let batch = Batch {
            transitions: vec![t(5.0, true), t(1.0, true)],
            episode_returns: vec![5.0, 1.0],
        };
        let (adv, _) = gae(&batch, 0.99, 0.95);
        assert_eq!(adv, vec![5.0, 1.0]); // no bleed across the boundary
    }

    #[test]
    fn normalize_standardizes() {
        let mut a = vec![1.0, 2.0, 3.0, 4.0];
        normalize(&mut a);
        let mean: f64 = a.iter().sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        let var: f64 = a.iter().map(|x| x * x).sum::<f64>() / 4.0;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serial_and_parallel_collection_agree() {
        let policy = Mlp::new(&[3, 8, 2], Activation::Tanh, 1);
        let value = Mlp::new(&[3, 8, 1], Activation::Tanh, 2);
        let mut env = ChainEnv::new(vec![0, 1], 2);
        let serial = collect_episodes(&mut env, &policy, &value, 9, 4, 50, 77);
        for workers in [1usize, 2, 3, 5] {
            let mut envs: Vec<Box<dyn Environment + Send>> = (0..workers)
                .map(|_| Box::new(ChainEnv::new(vec![0, 1], 2)) as Box<dyn Environment + Send>)
                .collect();
            let parallel = collect_episodes_parallel(&mut envs, &policy, &value, 9, 4, 50, 77);
            assert_eq!(serial.episode_returns, parallel.episode_returns);
            assert_eq!(serial.transitions.len(), parallel.transitions.len());
            for (s, p) in serial.transitions.iter().zip(&parallel.transitions) {
                assert_eq!(s.action, p.action);
                assert_eq!(s.obs, p.obs);
                assert_eq!(s.reward, p.reward);
                assert_eq!(s.logp, p.logp);
                assert_eq!(s.value, p.value);
                assert_eq!(s.done, p.done);
            }
        }
    }

    /// A deterministic-but-flaky env: panics when asked to reset to an
    /// episode in `panic_episodes` whose per-episode attempt budget is not
    /// yet exhausted. Attempt counts live in shared state so retries (on a
    /// respawned worker) observe earlier attempts.
    type PanicPlan = std::sync::Arc<Mutex<std::collections::HashMap<u64, u32>>>;

    struct FlakyEnv {
        inner: ChainEnv,
        /// (episode, attempts that panic before one succeeds)
        panic_episodes: PanicPlan,
    }

    impl FlakyEnv {
        fn pool(
            workers: usize,
            plan: &[(u64, u32)],
        ) -> (Vec<Box<dyn Environment + Send>>, PanicPlan) {
            let shared = std::sync::Arc::new(Mutex::new(
                plan.iter()
                    .copied()
                    .collect::<std::collections::HashMap<_, _>>(),
            ));
            let envs = (0..workers)
                .map(|_| {
                    Box::new(FlakyEnv {
                        inner: ChainEnv::new(vec![0, 1], 2),
                        panic_episodes: std::sync::Arc::clone(&shared),
                    }) as Box<dyn Environment + Send>
                })
                .collect();
            (envs, shared)
        }
    }

    impl Environment for FlakyEnv {
        fn observation_dim(&self) -> usize {
            self.inner.observation_dim()
        }
        fn num_actions(&self) -> usize {
            self.inner.num_actions()
        }
        fn reset(&mut self) -> Vec<f64> {
            self.inner.reset()
        }
        fn reset_to(&mut self, episode: u64) -> Vec<f64> {
            {
                let mut plan = lock_recover(&self.panic_episodes);
                if let Some(left) = plan.get_mut(&episode) {
                    if *left > 0 {
                        *left -= 1;
                        std::panic::panic_any("flaky env: injected worker panic");
                    }
                }
            }
            self.inner.reset_to(episode)
        }
        fn step(&mut self, action: usize) -> crate::env::StepResult {
            self.inner.step(action)
        }
    }

    /// Swallow the intentional FlakyEnv panics so test output stays
    /// readable; anything else still reaches the default hook.
    fn quiet_flaky_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("flaky env"));
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn supervisor_respawns_workers_and_retries_episodes() {
        quiet_flaky_panics();
        let policy = Mlp::new(&[3, 8, 2], Activation::Tanh, 1);
        let value = Mlp::new(&[3, 8, 1], Activation::Tanh, 2);
        let mut env = ChainEnv::new(vec![0, 1], 2);
        let reference = collect_episodes(&mut env, &policy, &value, 9, 0, 50, 41);
        for workers in [1usize, 2, 3] {
            // Episodes 2 and 6 each panic once, then succeed on retry.
            let (mut envs, _) = FlakyEnv::pool(workers, &[(2, 1), (6, 1)]);
            let sup = collect_episodes_supervised(
                &mut envs,
                &policy,
                &value,
                9,
                0,
                50,
                41,
                &SupervisorConfig::default(),
            );
            assert!(
                sup.worker_respawns >= 2,
                "expected ≥2 respawns with {workers} workers, got {}",
                sup.worker_respawns
            );
            assert!(sup.failed_episodes.is_empty());
            // Retried episodes are deterministic, so the recovered batch is
            // bit-identical to the fault-free serial reference.
            assert_eq!(reference.episode_returns, sup.batch.episode_returns);
            assert_eq!(reference.transitions.len(), sup.batch.transitions.len());
            for (s, p) in reference.transitions.iter().zip(&sup.batch.transitions) {
                assert_eq!(
                    (s.action, s.reward, s.logp, s.value, s.done, &s.obs),
                    (p.action, p.reward, p.logp, p.value, p.done, &p.obs)
                );
            }
        }
    }

    #[test]
    fn supervisor_skips_episodes_that_exhaust_retries() {
        quiet_flaky_panics();
        let policy = Mlp::new(&[3, 8, 2], Activation::Tanh, 1);
        let value = Mlp::new(&[3, 8, 1], Activation::Tanh, 2);
        let mut env = ChainEnv::new(vec![0, 1], 2);
        let reference = collect_episodes(&mut env, &policy, &value, 6, 0, 50, 13);
        // Episode 3 panics on every attempt (budget far above retry cap).
        let (mut envs, _) = FlakyEnv::pool(2, &[(3, u32::MAX)]);
        let sup = collect_episodes_supervised(
            &mut envs,
            &policy,
            &value,
            6,
            0,
            50,
            13,
            &SupervisorConfig {
                max_episode_retries: 2,
            },
        );
        assert_eq!(sup.failed_episodes, vec![3]);
        assert_eq!(sup.worker_respawns, 3); // initial attempt + 2 retries
                                            // The other five episodes match the reference exactly.
        assert_eq!(sup.batch.episode_returns.len(), 5);
        let expected: Vec<f64> = reference
            .episode_returns
            .iter()
            .enumerate()
            .filter(|(e, _)| *e != 3)
            .map(|(_, r)| *r)
            .collect();
        assert_eq!(sup.batch.episode_returns, expected);
    }

    #[test]
    fn supervisor_matches_parallel_wrapper_without_faults() {
        let policy = Mlp::new(&[3, 8, 2], Activation::Tanh, 1);
        let value = Mlp::new(&[3, 8, 1], Activation::Tanh, 2);
        let mut envs: Vec<Box<dyn Environment + Send>> = (0..3)
            .map(|_| Box::new(ChainEnv::new(vec![0, 1], 2)) as Box<dyn Environment + Send>)
            .collect();
        let sup = collect_episodes_supervised(
            &mut envs,
            &policy,
            &value,
            7,
            2,
            50,
            99,
            &SupervisorConfig::default(),
        );
        assert_eq!(sup.worker_respawns, 0);
        assert!(sup.failed_episodes.is_empty());
        let wrapped = collect_episodes_parallel(&mut envs, &policy, &value, 7, 2, 50, 99);
        assert_eq!(sup.batch.episode_returns, wrapped.episode_returns);
        assert_eq!(sup.batch.transitions.len(), wrapped.transitions.len());
    }

    #[test]
    fn episode_seeds_are_distinct_and_stable() {
        assert_eq!(episode_seed(5, 0), episode_seed(5, 0));
        assert_ne!(episode_seed(5, 0), episode_seed(5, 1));
        assert_ne!(episode_seed(5, 0), episode_seed(6, 0));
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(9);
        let logits = vec![0.0, 3.0];
        let mut count1 = 0;
        for _ in 0..500 {
            let (a, logp) = sample_action(&logits, &mut rng);
            assert!(logp <= 0.0);
            count1 += (a == 1) as usize;
        }
        assert!(count1 > 400, "action 1 should dominate: {count1}");
        assert_eq!(argmax(&logits), 1);
    }
}
