//! Versioned binary checkpoints for trained agents.
//!
//! The serving daemon starts from a checkpoint written here; experiments
//! use the same format to resume training. The vendored serde is a
//! marker-trait stub, so the format is hand-rolled:
//!
//! ```text
//! "APCK" | version u32 LE | algo u8 | policy_len u32 LE | policy blob |
//! value_len u32 LE | value blob
//! ```
//!
//! The two blobs are [`Mlp::to_bytes`] payloads and carry their own
//! checksums; decoding verifies both, so a truncated or bit-flipped file is
//! rejected with an error rather than silently degrading the policy.
//! Saves go through a temp-file-plus-rename so a crash mid-write never
//! leaves a half-written checkpoint at the target path.

use crate::a2c::A2cAgent;
use crate::ppo::PpoAgent;
use autophase_nn::mlp::Mlp;
use autophase_telemetry::faultfs;
use std::fmt;
use std::path::{Path, PathBuf};

const MAGIC: &[u8] = b"APCK";
const VERSION: u32 = 1;

/// Which algorithm produced the checkpoint (restores must match).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Proximal Policy Optimization.
    Ppo,
    /// Advantage actor-critic.
    A2c,
}

impl Algo {
    fn tag(self) -> u8 {
        match self {
            Algo::Ppo => 0,
            Algo::A2c => 1,
        }
    }

    fn from_tag(t: u8) -> Option<Algo> {
        match t {
            0 => Some(Algo::Ppo),
            1 => Some(Algo::A2c),
            _ => None,
        }
    }
}

/// Failure loading or decoding a checkpoint.
#[derive(Debug)]
pub struct CheckpointError(pub String);

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint error: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError(format!("io: {e}"))
    }
}

impl From<autophase_nn::mlp::DecodeError> for CheckpointError {
    fn from(e: autophase_nn::mlp::DecodeError) -> CheckpointError {
        CheckpointError(e.to_string())
    }
}

/// A trained policy/value pair with its algorithm tag.
#[derive(Debug, Clone)]
pub struct PolicyCheckpoint {
    /// The algorithm that trained the networks.
    pub algo: Algo,
    /// Policy network (logits over actions).
    pub policy: Mlp,
    /// Value network (scalar state value).
    pub value: Mlp,
}

impl PolicyCheckpoint {
    /// Snapshot a PPO agent's networks.
    pub fn from_ppo(agent: &PpoAgent) -> PolicyCheckpoint {
        PolicyCheckpoint {
            algo: Algo::Ppo,
            policy: agent.policy.clone(),
            value: agent.value.clone(),
        }
    }

    /// Snapshot an A2C agent's networks.
    pub fn from_a2c(agent: &A2cAgent) -> PolicyCheckpoint {
        PolicyCheckpoint {
            algo: Algo::A2c,
            policy: agent.policy.clone(),
            value: agent.value.clone(),
        }
    }

    /// Restore the networks into a PPO agent.
    ///
    /// # Errors
    ///
    /// Fails if the checkpoint is not a PPO checkpoint or the network
    /// shapes do not match the agent's.
    pub fn restore_ppo(&self, agent: &mut PpoAgent) -> Result<(), CheckpointError> {
        if self.algo != Algo::Ppo {
            return Err(CheckpointError("not a PPO checkpoint".into()));
        }
        check_shape("policy", &self.policy, &agent.policy)?;
        check_shape("value", &self.value, &agent.value)?;
        agent.policy = self.policy.clone();
        agent.value = self.value.clone();
        Ok(())
    }

    /// Restore the networks into an A2C agent.
    ///
    /// # Errors
    ///
    /// Fails if the checkpoint is not an A2C checkpoint or the network
    /// shapes do not match the agent's.
    pub fn restore_a2c(&self, agent: &mut A2cAgent) -> Result<(), CheckpointError> {
        if self.algo != Algo::A2c {
            return Err(CheckpointError("not an A2C checkpoint".into()));
        }
        check_shape("policy", &self.policy, &agent.policy)?;
        check_shape("value", &self.value, &agent.value)?;
        agent.policy = self.policy.clone();
        agent.value = self.value.clone();
        Ok(())
    }

    /// Transpose the policy network into the structure-of-arrays layout
    /// the batched SIMD kernels consume (see `autophase_nn::SoaMlp`).
    /// Serving loads a checkpoint once and runs every forward through
    /// this mirror; the transpose is lossless, so decisions stay
    /// bit-identical to [`Mlp::forward`] on the checkpointed weights.
    pub fn soa_policy(&self) -> autophase_nn::SoaMlp {
        autophase_nn::SoaMlp::from_mlp(&self.policy)
    }

    /// Transpose the value network into the SoA kernel layout
    /// (see [`PolicyCheckpoint::soa_policy`]).
    pub fn soa_value(&self) -> autophase_nn::SoaMlp {
        autophase_nn::SoaMlp::from_mlp(&self.value)
    }

    /// Serialize to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let policy = self.policy.to_bytes();
        let value = self.value.to_bytes();
        let mut out = Vec::with_capacity(MAGIC.len() + 13 + policy.len() + value.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.algo.tag());
        out.extend_from_slice(&(policy.len() as u32).to_le_bytes());
        out.extend_from_slice(&policy);
        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
        out.extend_from_slice(&value);
        out
    }

    /// Decode the versioned binary format.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation, bad magic/version, or a corrupt
    /// network blob (each blob is checksummed).
    pub fn from_bytes(bytes: &[u8]) -> Result<PolicyCheckpoint, CheckpointError> {
        let rest = bytes
            .strip_prefix(MAGIC)
            .ok_or_else(|| CheckpointError("bad magic".into()))?;
        let (ver, rest) = split_u32(rest)?;
        if ver != VERSION {
            return Err(CheckpointError(format!("unsupported version {ver}")));
        }
        let (&tag, rest) = rest
            .split_first()
            .ok_or_else(|| CheckpointError("truncated".into()))?;
        let algo =
            Algo::from_tag(tag).ok_or_else(|| CheckpointError(format!("unknown algo {tag}")))?;
        let (policy_blob, rest) = split_blob(rest)?;
        let (value_blob, rest) = split_blob(rest)?;
        if !rest.is_empty() {
            return Err(CheckpointError("trailing bytes".into()));
        }
        Ok(PolicyCheckpoint {
            algo,
            policy: Mlp::from_bytes(policy_blob)?,
            value: Mlp::from_bytes(value_blob)?,
        })
    }

    /// Write the checkpoint to `path` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            faultfs::write_all(&mut f, &self.to_bytes(), "ckpt.write")?;
            faultfs::sync_all(&f, "ckpt.sync")?;
        }
        faultfs::rename(&tmp, path, "ckpt.rename")?;
        Ok(())
    }

    /// Read a checkpoint from disk.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and any decode failure.
    pub fn load(path: &Path) -> Result<PolicyCheckpoint, CheckpointError> {
        let bytes = faultfs::read(path, "ckpt.read")?;
        PolicyCheckpoint::from_bytes(&bytes)
    }

    /// Read a checkpoint, quarantining it if it is corrupt: the file is
    /// renamed to `<path>.quarantined` (preserved for forensics, out of
    /// the boot path) and the failure reported as
    /// [`ArmoredLoad::Quarantined`] so the caller can fall back to a
    /// previous policy or baseline-only serving instead of dying. An
    /// unreadable file (missing, permission) is *not* quarantined —
    /// that is an operator problem, not bit rot.
    pub fn load_armored(path: &Path) -> ArmoredLoad {
        let bytes = match faultfs::read(path, "ckpt.read") {
            Ok(b) => b,
            Err(e) => return ArmoredLoad::Unreadable(e.into()),
        };
        match PolicyCheckpoint::from_bytes(&bytes) {
            Ok(ckpt) => ArmoredLoad::Loaded(ckpt),
            Err(error) => {
                let q = PathBuf::from(format!("{}.quarantined", path.display()));
                let moved_to = match faultfs::rename(path, &q, "ckpt.quarantine") {
                    Ok(()) => Some(q),
                    Err(_) => None,
                };
                autophase_telemetry::incr("rl.checkpoint", "quarantined", 1);
                ArmoredLoad::Quarantined { error, moved_to }
            }
        }
    }
}

/// Outcome of [`PolicyCheckpoint::load_armored`].
#[derive(Debug)]
pub enum ArmoredLoad {
    /// The checkpoint decoded and verified cleanly.
    Loaded(PolicyCheckpoint),
    /// The file exists but is corrupt or truncated; it has been renamed
    /// aside (`moved_to`, when the rename itself succeeded) and the
    /// caller must keep serving without it.
    Quarantined {
        /// Why decoding failed.
        error: CheckpointError,
        /// Where the corrupt file now lives, if the rename succeeded.
        moved_to: Option<PathBuf>,
    },
    /// The file could not be read at all (missing, permissions) — an
    /// operator error, left in place.
    Unreadable(CheckpointError),
}

fn check_shape(which: &str, from: &Mlp, to: &Mlp) -> Result<(), CheckpointError> {
    if from.input_dim() != to.input_dim() || from.output_dim() != to.output_dim() {
        return Err(CheckpointError(format!(
            "{which} shape mismatch: checkpoint {}x{}, agent {}x{}",
            from.input_dim(),
            from.output_dim(),
            to.input_dim(),
            to.output_dim()
        )));
    }
    Ok(())
}

fn split_u32(bytes: &[u8]) -> Result<(u32, &[u8]), CheckpointError> {
    if bytes.len() < 4 {
        return Err(CheckpointError("truncated".into()));
    }
    let (head, rest) = bytes.split_at(4);
    let mut b = [0u8; 4];
    b.copy_from_slice(head);
    Ok((u32::from_le_bytes(b), rest))
}

fn split_blob(bytes: &[u8]) -> Result<(&[u8], &[u8]), CheckpointError> {
    let (len, rest) = split_u32(bytes)?;
    let len = len as usize;
    if rest.len() < len {
        return Err(CheckpointError("truncated blob".into()));
    }
    Ok(rest.split_at(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a2c::A2cConfig;
    use crate::env::{Environment, StepResult};
    use crate::ppo::PpoConfig;

    struct Bandit;

    impl Environment for Bandit {
        fn observation_dim(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f64> {
            vec![0.0]
        }
        fn step(&mut self, a: usize) -> StepResult {
            StepResult {
                observation: vec![0.0],
                reward: a as f64,
                done: true,
            }
        }
    }

    fn bits(net: &Mlp) -> Vec<u64> {
        net.parameters().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn ppo_roundtrip_is_bit_identical() {
        let cfg = PpoConfig {
            hidden: vec![8],
            ..Default::default()
        };
        let mut agent = PpoAgent::new(1, 2, &cfg, 7);
        agent.train(&mut Bandit, 5);
        let ckpt = PolicyCheckpoint::from_ppo(&agent);
        let back = PolicyCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back.algo, Algo::Ppo);
        assert_eq!(bits(&back.policy), bits(&agent.policy));
        assert_eq!(bits(&back.value), bits(&agent.value));

        let mut fresh = PpoAgent::new(1, 2, &cfg, 999);
        back.restore_ppo(&mut fresh).unwrap();
        assert_eq!(bits(&fresh.policy), bits(&agent.policy));
        let obs = vec![0.0];
        assert_eq!(
            fresh.action_probabilities(&obs),
            agent.action_probabilities(&obs)
        );
    }

    #[test]
    fn a2c_roundtrip_is_bit_identical() {
        let cfg = A2cConfig {
            hidden: vec![8],
            ..Default::default()
        };
        let mut agent = A2cAgent::new(1, 2, &cfg, 3);
        agent.train(&mut Bandit, 5);
        let ckpt = PolicyCheckpoint::from_a2c(&agent);
        let back = PolicyCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back.algo, Algo::A2c);
        assert_eq!(bits(&back.policy), bits(&agent.policy));
        assert_eq!(bits(&back.value), bits(&agent.value));
    }

    #[test]
    fn algo_mismatch_rejected() {
        let ppo = PpoAgent::new(1, 2, &PpoConfig::default(), 1);
        let ckpt = PolicyCheckpoint::from_ppo(&ppo);
        let mut a2c = A2cAgent::new(1, 2, &A2cConfig::default(), 1);
        assert!(ckpt.restore_a2c(&mut a2c).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let small = PpoAgent::new(1, 2, &PpoConfig::default(), 1);
        let ckpt = PolicyCheckpoint::from_ppo(&small);
        let mut big = PpoAgent::new(3, 5, &PpoConfig::default(), 1);
        assert!(ckpt.restore_ppo(&mut big).is_err());
    }

    #[test]
    fn corruption_rejected() {
        let agent = PpoAgent::new(1, 2, &PpoConfig::default(), 1);
        let bytes = PolicyCheckpoint::from_ppo(&agent).to_bytes();
        assert!(PolicyCheckpoint::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(PolicyCheckpoint::from_bytes(&flipped).is_err());
        assert!(PolicyCheckpoint::from_bytes(b"APCKgarbage").is_err());
    }

    #[test]
    fn armored_load_quarantines_corruption_but_not_absence() {
        let agent = PpoAgent::new(2, 3, &PpoConfig::default(), 11);
        let ckpt = PolicyCheckpoint::from_ppo(&agent);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("autophase_ckpt_armor_{}.bin", std::process::id()));
        let quarantined = PathBuf::from(format!("{}.quarantined", path.display()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&quarantined);

        // Missing file: unreadable, nothing quarantined.
        assert!(matches!(
            PolicyCheckpoint::load_armored(&path),
            ArmoredLoad::Unreadable(_)
        ));
        assert!(!quarantined.exists());

        // Clean file: loads.
        ckpt.save(&path).unwrap();
        assert!(matches!(
            PolicyCheckpoint::load_armored(&path),
            ArmoredLoad::Loaded(_)
        ));

        // Truncated file: quarantined aside, boot path cleared.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        match PolicyCheckpoint::load_armored(&path) {
            ArmoredLoad::Quarantined { moved_to, .. } => {
                assert_eq!(moved_to.as_deref(), Some(quarantined.as_path()));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert!(!path.exists(), "corrupt file moved out of the boot path");
        assert!(quarantined.exists(), "corrupt file preserved for forensics");
        let _ = std::fs::remove_file(&quarantined);
    }

    #[test]
    fn soa_mirrors_match_checkpointed_networks_bitwise() {
        let mut agent = PpoAgent::new(1, 2, &PpoConfig::default(), 17);
        agent.train(&mut Bandit, 2);
        let ckpt = PolicyCheckpoint::from_ppo(&agent);
        let back = PolicyCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        let psoa = back.soa_policy();
        let vsoa = back.soa_value();
        let mut pws = autophase_nn::BatchWorkspace::new();
        let mut vws = autophase_nn::BatchWorkspace::new();
        for salt in 0..4u64 {
            let obs = vec![(salt as f64) * 0.37 - 1.0];
            let want: Vec<u64> = agent
                .policy
                .forward(&obs)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let got: Vec<u64> = psoa
                .forward_one(&obs, &mut pws)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(got, want, "policy SoA mirror diverged");
            assert_eq!(
                vsoa.forward_one(&obs, &mut vws)[0].to_bits(),
                agent.value.forward(&obs)[0].to_bits(),
                "value SoA mirror diverged"
            );
        }
    }

    #[test]
    fn file_save_load_roundtrip() {
        let agent = PpoAgent::new(2, 3, &PpoConfig::default(), 11);
        let ckpt = PolicyCheckpoint::from_ppo(&agent);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("autophase_ckpt_test_{}.bin", std::process::id()));
        ckpt.save(&path).unwrap();
        let back = PolicyCheckpoint::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(bits(&back.policy), bits(&agent.policy));
    }
}
