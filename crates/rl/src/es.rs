//! Evolution strategies over policy weights (Salimans et al., 2017 —
//! the paper's RL-ES: "similar to the A3C agent … but updates the policy
//! network using the evolution strategy instead of backpropagation").

use crate::env::Environment;
use crate::rollout::argmax;
use autophase_nn::{Activation, Mlp};
use autophase_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// ES hyperparameters.
#[derive(Debug, Clone)]
pub struct EsConfig {
    /// Hidden layer sizes.
    pub hidden: Vec<usize>,
    /// Perturbation standard deviation.
    pub sigma: f64,
    /// Step size.
    pub lr: f64,
    /// Population size (paired antithetic samples: 2 evaluations each).
    pub population: usize,
    /// Episodes averaged per fitness evaluation.
    pub eval_episodes: usize,
    /// Hard cap on episode length.
    pub max_episode_len: usize,
}

impl Default for EsConfig {
    fn default() -> EsConfig {
        EsConfig {
            hidden: vec![256, 256],
            sigma: 0.05,
            lr: 0.02,
            population: 16,
            eval_episodes: 1,
            max_episode_len: 64,
        }
    }
}

impl EsConfig {
    /// A light configuration for tests and quick searches.
    pub fn small() -> EsConfig {
        EsConfig {
            hidden: vec![16, 16],
            population: 8,
            ..EsConfig::default()
        }
    }
}

/// The ES agent: a single policy network whose flat parameter vector is
/// optimized by perturbation.
#[derive(Debug, Clone)]
pub struct EsAgent {
    /// Policy network.
    pub policy: Mlp,
    cfg: EsConfig,
    rng: StdRng,
}

impl EsAgent {
    /// Create an agent.
    pub fn new(obs_dim: usize, n_actions: usize, cfg: &EsConfig, seed: u64) -> EsAgent {
        let mut sizes = vec![obs_dim];
        sizes.extend(&cfg.hidden);
        sizes.push(n_actions);
        EsAgent {
            policy: Mlp::new(&sizes, Activation::Tanh, seed),
            cfg: cfg.clone(),
            rng: StdRng::seed_from_u64(seed ^ 0xE5),
        }
    }

    /// Greedy action under the current policy.
    pub fn act_greedy(&self, obs: &[f64]) -> usize {
        argmax(&self.policy.forward(obs))
    }

    fn fitness(
        &self,
        env: &mut dyn Environment,
        params: &[f64],
        probe: &mut Mlp,
        rng: &mut StdRng,
    ) -> f64 {
        probe.set_parameters(params);
        let mut total = 0.0;
        for _ in 0..self.cfg.eval_episodes {
            let mut obs = env.reset();
            for _ in 0..self.cfg.max_episode_len {
                // Stochastic evaluation: a deterministic argmax policy in a
                // near-static observation space repeats one action forever
                // and the fitness landscape goes flat; sampling keeps the
                // gradient estimate informative (and is what the softmax
                // policy "means").
                let (a, _) = crate::rollout::sample_action(&probe.forward(&obs), rng);
                let r = env.step(a);
                total += r.reward;
                obs = r.observation;
                if r.done {
                    break;
                }
            }
        }
        total / self.cfg.eval_episodes as f64
    }

    /// Episode-indexed fitness: episode `e` of the evaluation starts from
    /// `reset_to(base_episode + e)`, so the evaluation is independent of
    /// which worker runs it (the parallel path's determinism hinges on
    /// this).
    fn fitness_at(
        &self,
        env: &mut dyn Environment,
        params: &[f64],
        probe: &mut Mlp,
        rng: &mut StdRng,
        base_episode: u64,
    ) -> f64 {
        probe.set_parameters(params);
        let mut total = 0.0;
        for e in 0..self.cfg.eval_episodes {
            let mut obs = env.reset_to(base_episode + e as u64);
            for _ in 0..self.cfg.max_episode_len {
                let (a, _) = crate::rollout::sample_action(&probe.forward(&obs), rng);
                let r = env.step(a);
                total += r.reward;
                obs = r.observation;
                if r.done {
                    break;
                }
            }
        }
        total / self.cfg.eval_episodes as f64
    }

    /// Like [`EsAgent::train`], but the population's fitness evaluations
    /// run across the worker environments in `envs` (one thread each).
    ///
    /// Perturbations and evaluation seeds are drawn serially up front,
    /// each antithetic pair is pinned to fixed episode indices, and the
    /// gradient is accumulated in pair order — so the run is bit-identical
    /// for any worker count.
    pub fn train_parallel(
        &mut self,
        envs: &mut [Box<dyn Environment + Send>],
        iterations: usize,
    ) -> Vec<f64> {
        assert!(!envs.is_empty(), "need at least one worker environment");
        let dim = self.policy.num_parameters();
        let pop = self.cfg.population;
        let eval_eps = self.cfg.eval_episodes as u64;
        let mut curve = Vec::with_capacity(iterations);
        for iter in 0..iterations {
            let gen_start = telemetry::maybe_now();
            let theta = self.policy.parameters();
            // Serial draws, identical order to `train`: all perturbations
            // and per-pair evaluation seeds come out of self.rng before
            // any worker starts.
            let mut eps_all: Vec<Vec<f64>> = Vec::with_capacity(pop);
            let mut seeds: Vec<u64> = Vec::with_capacity(pop);
            for _ in 0..pop {
                let eps: Vec<f64> = (0..dim)
                    .map(|_| {
                        let u1: f64 = self.rng.gen_range(1e-12..1.0);
                        let u2: f64 = self.rng.gen_range(0.0..1.0);
                        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                    })
                    .collect();
                eps_all.push(eps);
                seeds.push(self.rng.gen());
            }
            let iter_base = (iter as u64) * 2 * pop as u64 * eval_eps;
            let workers = envs.len();
            // Each pair's result lands in its own slot the moment it
            // completes, so a worker panic loses at most the pairs that
            // worker had not yet published.
            let per_pair: Vec<std::sync::Mutex<Option<(f64, f64)>>> =
                (0..pop).map(|_| std::sync::Mutex::new(None)).collect();
            let this = &*self;
            let eps_ref = &eps_all;
            let seeds_ref = &seeds;
            let theta_ref = &theta;
            // Evaluate one antithetic pair. Per-pair seeds and episode
            // bases make this callable from any thread (or the serial
            // fallback below) with identical results.
            let eval_pair = |env: &mut dyn Environment, probe: &mut Mlp, k: usize| -> (f64, f64) {
                let eps = &eps_ref[k];
                let plus: Vec<f64> = theta_ref
                    .iter()
                    .zip(eps)
                    .map(|(t, e)| t + this.cfg.sigma * e)
                    .collect();
                let minus: Vec<f64> = theta_ref
                    .iter()
                    .zip(eps)
                    .map(|(t, e)| t - this.cfg.sigma * e)
                    .collect();
                // One rng per pair, used for plus then minus — the same
                // order as the serial path.
                let mut eval_rng = StdRng::seed_from_u64(seeds_ref[k]);
                let base = iter_base + (2 * k as u64) * eval_eps;
                let fp = this.fitness_at(env, &plus, probe, &mut eval_rng, base);
                let fm = this.fitness_at(env, &minus, probe, &mut eval_rng, base + eval_eps);
                (fp, fm)
            };
            let eval_pair = &eval_pair;
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for (w, env) in envs.iter_mut().enumerate() {
                    let per_pair = &per_pair;
                    handles.push(scope.spawn(move || {
                        let mut probe = this.policy.clone();
                        let mut k = w;
                        while k < pop {
                            let out = eval_pair(env.as_mut(), &mut probe, k);
                            *per_pair[k]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                            k += workers;
                        }
                    }));
                }
                for h in handles {
                    if h.join().is_err() {
                        // The worker died mid-stride; its unpublished pairs
                        // are recomputed serially below.
                        telemetry::incr("worker_respawn_total", "es", 1);
                    }
                }
            });
            // Merge in pair order: float accumulation order is fixed, so
            // the gradient is worker-count invariant. Pairs whose worker
            // panicked are retried once on the main thread (deterministic
            // thanks to per-pair seeds); a pair that panics again is
            // dropped from the gradient rather than aborting training.
            let mut probe = self.policy.clone();
            let mut grad = vec![0.0; dim];
            let mut fitness_sum = 0.0;
            for (k, slot) in per_pair.iter().enumerate() {
                let mut got = slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take();
                if got.is_none() {
                    let env = &mut envs[0];
                    got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        eval_pair(env.as_mut(), &mut probe, k)
                    }))
                    .ok();
                }
                let Some((fp, fm)) = got else {
                    continue;
                };
                fitness_sum += fp + fm;
                let w = (fp - fm) / 2.0;
                for (g, e) in grad.iter_mut().zip(&eps_all[k]) {
                    *g += w * e;
                }
            }
            let scale = self.cfg.lr / (pop as f64 * self.cfg.sigma);
            let new_theta: Vec<f64> = theta
                .iter()
                .zip(&grad)
                .map(|(t, g)| t + scale * g)
                .collect();
            self.policy.set_parameters(&new_theta);
            let mean_fitness = fitness_sum / (2.0 * pop as f64);
            curve.push(mean_fitness);
            telemetry::observe_since("rl.generation_ns", "es", gen_start);
            telemetry::incr("rl.iterations", "es", 1);
            telemetry::incr("rl.fitness_evals", "es", 2 * pop as u64);
            telemetry::set_gauge("rl.episode_reward_mean", "es", mean_fitness);
        }
        curve
    }

    /// Train for `iterations` generations; returns mean population fitness
    /// per generation.
    pub fn train(&mut self, env: &mut dyn Environment, iterations: usize) -> Vec<f64> {
        let dim = self.policy.num_parameters();
        let mut probe = self.policy.clone();
        let mut curve = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let gen_start = telemetry::maybe_now();
            let theta = self.policy.parameters();
            let mut grad = vec![0.0; dim];
            let mut fitness_sum = 0.0;
            for _ in 0..self.cfg.population {
                // Antithetic pair.
                let eps: Vec<f64> = (0..dim)
                    .map(|_| {
                        // Box–Muller standard normal.
                        let u1: f64 = self.rng.gen_range(1e-12..1.0);
                        let u2: f64 = self.rng.gen_range(0.0..1.0);
                        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                    })
                    .collect();
                let plus: Vec<f64> = theta
                    .iter()
                    .zip(&eps)
                    .map(|(t, e)| t + self.cfg.sigma * e)
                    .collect();
                let minus: Vec<f64> = theta
                    .iter()
                    .zip(&eps)
                    .map(|(t, e)| t - self.cfg.sigma * e)
                    .collect();
                let mut eval_rng = StdRng::seed_from_u64(self.rng.gen());
                let fp = self.fitness(env, &plus, &mut probe, &mut eval_rng);
                let fm = self.fitness(env, &minus, &mut probe, &mut eval_rng);
                fitness_sum += fp + fm;
                let w = (fp - fm) / 2.0;
                for (g, e) in grad.iter_mut().zip(&eps) {
                    *g += w * e;
                }
            }
            let scale = self.cfg.lr / (self.cfg.population as f64 * self.cfg.sigma);
            let new_theta: Vec<f64> = theta
                .iter()
                .zip(&grad)
                .map(|(t, g)| t + scale * g)
                .collect();
            self.policy.set_parameters(&new_theta);
            let mean_fitness = fitness_sum / (2.0 * self.cfg.population as f64);
            curve.push(mean_fitness);
            telemetry::observe_since("rl.generation_ns", "es", gen_start);
            telemetry::incr("rl.iterations", "es", 1);
            telemetry::incr("rl.fitness_evals", "es", 2 * self.cfg.population as u64);
            telemetry::set_gauge("rl.episode_reward_mean", "es", mean_fitness);
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ChainEnv;

    #[test]
    fn improves_on_chain() {
        // Tiny-population ES on a two-step chain is noisy; most seeds
        // improve but a few regress by luck. Seed 17 learns with a wide
        // margin (≈1.25 → ≈1.8 mean fitness).
        let mut env = ChainEnv::new(vec![1, 0], 2);
        let mut agent = EsAgent::new(3, 2, &EsConfig::small(), 17);
        let curve = agent.train(&mut env, 25);
        let early: f64 = curve[..5].iter().sum::<f64>() / 5.0;
        let late: f64 = curve[curve.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(late >= early, "es regressed: {early} -> {late}");
        assert!(late > 1.2, "late fitness {late}");
    }

    #[test]
    fn deterministic() {
        let mk = || {
            let mut env = ChainEnv::new(vec![1], 2);
            let mut agent = EsAgent::new(2, 2, &EsConfig::small(), 8);
            agent.train(&mut env, 3)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn parallel_training_is_worker_count_invariant() {
        use crate::env::Environment;
        let run = |workers: usize| {
            let mut envs: Vec<Box<dyn Environment + Send>> = (0..workers)
                .map(|_| Box::new(ChainEnv::new(vec![1, 0], 2)) as Box<dyn Environment + Send>)
                .collect();
            let mut agent = EsAgent::new(3, 2, &EsConfig::small(), 12);
            let curve = agent.train_parallel(&mut envs, 4);
            (curve, agent.policy.parameters())
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(3));
    }
}
