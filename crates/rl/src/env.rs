//! The gym-like environment interface (§3.5: "APIs similar to an OpenAI
//! gym").

/// One step's outcome.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Observation after the action.
    pub observation: Vec<f64>,
    /// Immediate reward.
    pub reward: f64,
    /// Episode finished.
    pub done: bool,
}

/// A discrete-action episodic environment.
pub trait Environment {
    /// Length of observation vectors.
    fn observation_dim(&self) -> usize;
    /// Number of discrete actions.
    fn num_actions(&self) -> usize;
    /// Start a new episode; returns the initial observation.
    fn reset(&mut self) -> Vec<f64>;
    /// Start the episode with global index `episode`.
    ///
    /// Parallel collection identifies episodes by index so any worker can
    /// run any episode and always see the same environment state (e.g. a
    /// multi-program environment picks `episode % programs` instead of
    /// advancing a shared cursor). Environments without index-dependent
    /// state keep this default, which ignores the index.
    fn reset_to(&mut self, episode: u64) -> Vec<f64> {
        let _ = episode;
        self.reset()
    }
    /// Apply an action.
    fn step(&mut self, action: usize) -> StepResult;
}

/// A fixed-length chain environment used by the algorithm tests: the agent
/// must emit the target action at each position to collect reward.
#[derive(Debug, Clone)]
pub struct ChainEnv {
    /// Target action per position.
    pub targets: Vec<usize>,
    /// Number of actions.
    pub actions: usize,
    pos: usize,
}

impl ChainEnv {
    /// Build a chain with the given per-position targets.
    pub fn new(targets: Vec<usize>, actions: usize) -> ChainEnv {
        ChainEnv {
            targets,
            actions,
            pos: 0,
        }
    }

    fn observe(&self) -> Vec<f64> {
        // One-hot position (plus a terminal slot).
        let mut o = vec![0.0; self.targets.len() + 1];
        o[self.pos] = 1.0;
        o
    }
}

impl Environment for ChainEnv {
    fn observation_dim(&self) -> usize {
        self.targets.len() + 1
    }

    fn num_actions(&self) -> usize {
        self.actions
    }

    fn reset(&mut self) -> Vec<f64> {
        self.pos = 0;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepResult {
        let reward = if action == self.targets[self.pos] {
            1.0
        } else {
            0.0
        };
        self.pos += 1;
        let done = self.pos >= self.targets.len();
        StepResult {
            observation: self.observe(),
            reward,
            done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_env_rewards_targets() {
        let mut e = ChainEnv::new(vec![1, 0, 2], 3);
        let o = e.reset();
        assert_eq!(o.len(), 4);
        assert_eq!(o[0], 1.0);
        let r1 = e.step(1);
        assert_eq!(r1.reward, 1.0);
        assert!(!r1.done);
        let r2 = e.step(1);
        assert_eq!(r2.reward, 0.0);
        let r3 = e.step(2);
        assert_eq!(r3.reward, 1.0);
        assert!(r3.done);
    }
}
