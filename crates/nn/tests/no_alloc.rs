//! Steady-state allocation check for the scratch-buffer APIs.
//!
//! A counting global allocator wraps `System`; after one warm-up batch,
//! `forward_into`, `forward_batch`, and `backward_batch` must not touch
//! the heap at all. This file holds exactly one `#[test]` so no sibling
//! test thread can allocate inside the measurement window.

use autophase_nn::{Activation, BatchWorkspace, GradScratch, Mlp, SoaMlp, Workspace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_inference_and_training_do_not_allocate() {
    let mut mlp = Mlp::new(&[56, 64, 46], Activation::Tanh, 5);
    let soa = SoaMlp::from_mlp(&mlp);
    let inputs: Vec<Vec<f64>> = (0..8)
        .map(|b| {
            (0..56)
                .map(|i| ((b * 56 + i) as f64 * 0.05).sin())
                .collect()
        })
        .collect();
    let grads = vec![0.25f64; 8 * 46];

    let mut ws = Workspace::new();
    let mut bws = BatchWorkspace::new();
    let mut scratch = GradScratch::new();

    let run =
        |mlp: &mut Mlp, ws: &mut Workspace, bws: &mut BatchWorkspace, scratch: &mut GradScratch| {
            let mut sum = 0.0;
            for x in &inputs {
                sum += mlp.forward_into(x, ws)[0];
            }
            bws.begin(&soa);
            for x in &inputs {
                bws.push_input(x);
            }
            soa.forward_batch(bws);
            mlp.backward_batch(bws, &grads, scratch);
            mlp.zero_grad();
            sum
        };

    // Warm-up grows every scratch buffer to its steady-state capacity.
    let warm = run(&mut mlp, &mut ws, &mut bws, &mut scratch);

    let before = ALLOCS.load(Ordering::SeqCst);
    let steady = run(&mut mlp, &mut ws, &mut bws, &mut scratch);
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(warm, steady, "runs must be deterministic");
    assert_eq!(
        after - before,
        0,
        "steady-state forward/backward must not allocate"
    );
}
