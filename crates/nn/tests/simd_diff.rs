//! Scalar-vs-SIMD differential suite (à la `pass_semantics_diff.rs`).
//!
//! The kernel contract (crates/nn/src/simd.rs) promises **bit-identical**
//! results at every width — lanes span outputs, reductions stay in
//! ascending-k order, no FMA contraction. So the pinned tolerance here is
//! zero: every assertion compares `f64::to_bits`.

use autophase_nn::{Activation, BatchWorkspace, GradScratch, KernelWidth, Mlp, SoaMlp, Workspace};
use proptest::prelude::*;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn obs(dim: usize, salt: u64) -> Vec<f64> {
    // Deterministic, sign-mixed, includes exact zeros (ReLU edge).
    (0..dim)
        .map(|i| {
            let t = (i as u64)
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add(salt * 0x85eb_ca6b);
            if t.is_multiple_of(11) {
                0.0
            } else {
                ((t % 997) as f64 - 498.0) * 0.01
            }
        })
        .collect()
}

/// Layer shapes covering the serve/train nets (56- and 70-wide
/// observations, 256-unit hidden) plus degenerate and odd sizes that
/// exercise every remainder lane for 2- and 4-wide kernels.
const SHAPES: &[&[usize]] = &[
    &[56, 256, 256, 46],
    &[70, 64, 64, 46],
    &[56, 16, 1],
    &[70, 8, 5],
    &[1, 1],
    &[2, 3, 2],
    &[5, 7, 3],
    &[9, 13, 11, 4],
    &[3, 257, 2],
];

#[test]
fn batched_forward_bit_identical_across_widths_shapes_and_remainders() {
    for &shape in SHAPES {
        for act in [Activation::Tanh, Activation::Relu] {
            let mlp = Mlp::new(shape, act, 0xC0FFEE ^ shape.len() as u64);
            let inputs: Vec<Vec<f64>> = (0..9).map(|b| obs(shape[0], b as u64)).collect();
            let want: Vec<Vec<u64>> = inputs.iter().map(|x| bits(&mlp.forward(x))).collect();
            for width in KernelWidth::all() {
                let soa = SoaMlp::with_width(&mlp, width);
                let mut ws = BatchWorkspace::new();
                // Batch sizes 1..=9 cover batch % lanes != 0 for both
                // 2- and 4-wide kernels.
                for batch in 1..=inputs.len() {
                    ws.begin(&soa);
                    for x in &inputs[..batch] {
                        ws.push_input(x);
                    }
                    soa.forward_batch(&mut ws);
                    for (b, w) in want[..batch].iter().enumerate() {
                        assert_eq!(
                            bits(ws.logits(b)),
                            *w,
                            "shape {shape:?} act {act:?} width {width:?} batch {batch} row {b}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn forward_into_matches_forward() {
    for &shape in SHAPES {
        let mlp = Mlp::new(shape, Activation::Tanh, 7);
        let x = obs(shape[0], 3);
        let mut ws = Workspace::new();
        // Reuse the workspace twice: stale state must not leak.
        let _ = mlp.forward_into(&obs(shape[0], 9), &mut ws);
        assert_eq!(bits(mlp.forward_into(&x, &mut ws)), bits(&mlp.forward(&x)));
    }
}

#[test]
fn backward_batch_bit_identical_to_sequential_backward() {
    for &shape in &[&[56usize, 32, 46] as &[usize], &[7, 11, 5, 3], &[70, 9, 2]] {
        for act in [Activation::Tanh, Activation::Relu] {
            for width in KernelWidth::all() {
                let mut seq = Mlp::new(shape, act, 99);
                let mut bat = seq.clone();
                let inputs: Vec<Vec<f64>> = (0..5).map(|b| obs(shape[0], 40 + b as u64)).collect();
                let grads: Vec<Vec<f64>> = (0..5)
                    .map(|b| obs(*shape.last().unwrap(), 80 + b as u64))
                    .collect();

                // Reference: per-sample backward (re-runs forward), one step.
                for (x, g) in inputs.iter().zip(&grads) {
                    seq.backward(x, g);
                }
                seq.step(1e-3);

                // Batched: SoA forward caches activations, backward_batch
                // reuses them.
                let soa = SoaMlp::with_width(&bat, width);
                let mut ws = BatchWorkspace::new();
                ws.begin(&soa);
                for x in &inputs {
                    ws.push_input(x);
                }
                soa.forward_batch(&mut ws);
                let flat: Vec<f64> = grads.concat();
                let mut scratch = GradScratch::new();
                bat.backward_batch(&ws, &flat, &mut scratch);
                bat.step(1e-3);

                assert_eq!(
                    bits(&bat.parameters()),
                    bits(&seq.parameters()),
                    "shape {shape:?} act {act:?} width {width:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random shapes, batch sizes, and seeds: batched SoA forward is
    /// bit-identical to the scalar forward at every width.
    #[test]
    fn prop_soa_forward_bit_identical(
        inp in 1usize..80,
        hidden in 1usize..40,
        out in 1usize..50,
        batch in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mlp = Mlp::new(&[inp, hidden, out], Activation::Tanh, seed);
        let inputs: Vec<Vec<f64>> = (0..batch).map(|b| obs(inp, seed ^ b as u64)).collect();
        for width in KernelWidth::all() {
            let soa = SoaMlp::with_width(&mlp, width);
            let mut ws = BatchWorkspace::new();
            ws.begin(&soa);
            for x in &inputs {
                ws.push_input(x);
            }
            soa.forward_batch(&mut ws);
            for (b, x) in inputs.iter().enumerate() {
                prop_assert_eq!(bits(ws.logits(b)), bits(&mlp.forward(x)));
            }
        }
    }
}
