//! A minimal dense neural-network library for the RL agents.
//!
//! The paper's agents are small MLPs (two 256-unit hidden layers, §6.2)
//! trained with stochastic gradient methods; RLlib supplies them there,
//! this crate supplies them here: [`matrix`] holds the (tiny) linear
//! algebra, [`mlp`] the multi-layer perceptron with tanh/ReLU activations,
//! backpropagation, and an Adam optimizer. Everything is deterministic in
//! the construction seed.
//!
//! # Example
//!
//! ```
//! use autophase_nn::{Mlp, Activation};
//!
//! // Learn y = 2x on a few points.
//! let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, 1);
//! for _ in 0..400 {
//!     for x in [-1.0f64, -0.5, 0.0, 0.5, 1.0] {
//!         let y = net.forward(&[x]);
//!         let grad = vec![y[0] - 2.0 * x]; // d/dy of 0.5*(y-2x)^2
//!         net.backward(&[x], &grad);
//!         net.step(1e-2);
//!     }
//! }
//! let y = net.forward(&[0.25]);
//! assert!((y[0] - 0.5).abs() < 0.1);
//! ```
#![warn(missing_docs)]
#![cfg_attr(feature = "nightly-simd", feature(portable_simd))]

pub mod matrix;
pub mod mlp;
pub mod simd;
pub mod soa;

pub use matrix::Matrix;
pub use mlp::{softmax, Activation, GradScratch, Mlp, Workspace};
pub use simd::KernelWidth;
pub use soa::{BatchWorkspace, SoaMlp};
