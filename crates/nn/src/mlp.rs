//! Multi-layer perceptron with backprop and Adam.

use crate::matrix::Matrix;
use crate::soa::BatchWorkspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `tanh(x)` (the paper's RLlib default for PPO).
    Tanh,
    /// `max(0, x)`.
    Relu,
}

impl Activation {
    pub(crate) fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed in terms of the activation *output*.
    pub(crate) fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
    // Accumulated gradients.
    gw: Matrix,
    gb: Vec<f64>,
    // Adam moments.
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Dense {
        Dense {
            w: Matrix::xavier(outputs, inputs, rng),
            b: vec![0.0; outputs],
            gw: Matrix::zeros(outputs, inputs),
            gb: vec![0.0; outputs],
            mw: Matrix::zeros(outputs, inputs),
            vw: Matrix::zeros(outputs, inputs),
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
        }
    }
}

/// A feed-forward network with dense layers, nonlinear hidden activations,
/// and a linear output layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    activation: Activation,
    /// Adam step counter.
    t: u64,
    /// Samples accumulated since the last [`Mlp::step`].
    pending: usize,
}

impl Mlp {
    /// Build a network with the given layer sizes, e.g. `[56, 256, 256, 46]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], activation: Activation, seed: u64) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        Mlp {
            layers,
            activation,
            t: 0,
            pending: 0,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].w.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("nonempty").w.rows()
    }

    /// Number of dense layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Hidden activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Weights and bias of layer `li` (for the SoA mirror).
    pub(crate) fn layer_weights(&self, li: usize) -> (&Matrix, &[f64]) {
        let layer = &self.layers[li];
        (&layer.w, &layer.b)
    }

    /// Forward pass.
    ///
    /// Allocates the output (and two transient buffers); hot paths
    /// should hold a [`Workspace`] and call [`Mlp::forward_into`], or
    /// batch through [`crate::SoaMlp`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut ws = Workspace::new();
        self.forward_into(x, &mut ws).to_vec()
    }

    /// Forward pass into caller-owned scratch: zero heap allocation once
    /// the workspace has warmed up. Returns the output slice, which
    /// stays valid until the workspace is reused.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    pub fn forward_into<'w>(&self, x: &[f64], ws: &'w mut Workspace) -> &'w [f64] {
        assert_eq!(x.len(), self.input_dim(), "forward dimension mismatch");
        ws.cur.clear();
        ws.cur.extend_from_slice(x);
        for (li, layer) in self.layers.iter().enumerate() {
            ws.nxt.clear();
            ws.nxt.resize(layer.w.rows(), 0.0);
            layer.w.matvec_into(&ws.cur, &mut ws.nxt);
            for (yi, bi) in ws.nxt.iter_mut().zip(&layer.b) {
                *yi += bi;
            }
            if li + 1 < self.layers.len() {
                for v in &mut ws.nxt {
                    *v = self.activation.apply(*v);
                }
            }
            std::mem::swap(&mut ws.cur, &mut ws.nxt);
        }
        &ws.cur
    }

    /// Forward pass returning every layer's activation (last = output).
    fn forward_cached(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        for (li, layer) in self.layers.iter().enumerate() {
            let input: &[f64] = if li == 0 {
                x
            } else {
                acts.last().expect("nonempty")
            };
            let mut y = layer.w.matvec(input);
            for (yi, bi) in y.iter_mut().zip(&layer.b) {
                *yi += bi;
            }
            if li + 1 < self.layers.len() {
                for v in &mut y {
                    *v = self.activation.apply(*v);
                }
            }
            acts.push(y);
        }
        acts
    }

    /// Accumulate gradients for one sample given `dLoss/dOutput`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward(&mut self, x: &[f64], dl_dy: &[f64]) {
        assert_eq!(dl_dy.len(), self.output_dim(), "output grad mismatch");
        let acts = self.forward_cached(x);
        let mut delta = dl_dy.to_vec();
        for li in (0..self.layers.len()).rev() {
            // Input to this layer:
            let input: &[f64] = if li == 0 { x } else { &acts[li - 1] };
            // Nonlinear layers: modulate by activation derivative.
            if li + 1 < self.layers.len() {
                let out = &acts[li];
                for (d, &o) in delta.iter_mut().zip(out) {
                    *d *= self.activation.derivative_from_output(o);
                }
            }
            self.layers[li].gw.add_outer(&delta, input);
            for (g, d) in self.layers[li].gb.iter_mut().zip(&delta) {
                *g += d;
            }
            if li > 0 {
                delta = self.layers[li].w.matvec_t(&delta);
            }
        }
        self.pending += 1;
    }

    /// Accumulate gradients for a whole batch using the activations a
    /// [`crate::SoaMlp::forward_batch`] already cached in `ws`.
    ///
    /// Semantically identical to calling [`Mlp::backward`] once per
    /// staged sample in order (bit-identical gradients), but skips the
    /// redundant per-sample forward pass `backward` performs and reuses
    /// `scratch` instead of allocating delta vectors.
    ///
    /// `dl_dy` is row-major `[batch × output_dim]`.
    ///
    /// # Panics
    ///
    /// Panics if `ws` was staged for a different shape or
    /// `dl_dy.len() != ws.batch() * output_dim()`.
    pub fn backward_batch(
        &mut self,
        ws: &BatchWorkspace,
        dl_dy: &[f64],
        scratch: &mut GradScratch,
    ) {
        let out = self.output_dim();
        let last = self.layers.len() - 1;
        assert_eq!(dl_dy.len(), ws.batch() * out, "batch grad mismatch");
        for b in 0..ws.batch() {
            scratch.delta.clear();
            scratch
                .delta
                .extend_from_slice(&dl_dy[b * out..(b + 1) * out]);
            for li in (0..self.layers.len()).rev() {
                let input: &[f64] = if li == 0 {
                    ws.input(b)
                } else {
                    ws.activation(li - 1, b)
                };
                if li < last {
                    let outs = ws.activation(li, b);
                    for (d, &o) in scratch.delta.iter_mut().zip(outs) {
                        *d *= self.activation.derivative_from_output(o);
                    }
                }
                self.layers[li].gw.add_outer(&scratch.delta, input);
                for (g, d) in self.layers[li].gb.iter_mut().zip(&scratch.delta) {
                    *g += d;
                }
                if li > 0 {
                    scratch.next.clear();
                    scratch.next.resize(self.layers[li].w.cols(), 0.0);
                    self.layers[li]
                        .w
                        .matvec_t_into(&scratch.delta, &mut scratch.next);
                    std::mem::swap(&mut scratch.delta, &mut scratch.next);
                }
            }
            self.pending += 1;
        }
    }

    /// Apply one Adam update from the accumulated (mean) gradients, then
    /// clear them. No-op when nothing is pending.
    pub fn step(&mut self, lr: f64) {
        if self.pending == 0 {
            return;
        }
        let scale = 1.0 / self.pending as f64;
        self.t += 1;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for layer in &mut self.layers {
            for i in 0..layer.w.data().len() {
                let g = layer.gw.data()[i] * scale;
                let m = b1 * layer.mw.data()[i] + (1.0 - b1) * g;
                let v = b2 * layer.vw.data()[i] + (1.0 - b2) * g * g;
                layer.mw.data_mut()[i] = m;
                layer.vw.data_mut()[i] = v;
                let mhat = m / bc1;
                let vhat = v / bc2;
                layer.w.data_mut()[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            for i in 0..layer.b.len() {
                let g = layer.gb[i] * scale;
                let m = b1 * layer.mb[i] + (1.0 - b1) * g;
                let v = b2 * layer.vb[i] + (1.0 - b2) * g * g;
                layer.mb[i] = m;
                layer.vb[i] = v;
                layer.b[i] -= lr * (m / bc1) / ((v / bc2).sqrt() + eps);
            }
            layer.gw.clear();
            layer.gb.iter_mut().for_each(|g| *g = 0.0);
        }
        self.pending = 0;
    }

    /// Discard accumulated gradients without stepping.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.gw.clear();
            layer.gb.iter_mut().for_each(|g| *g = 0.0);
        }
        self.pending = 0;
    }

    /// Flatten all parameters (used by the evolution-strategies agent).
    pub fn parameters(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for layer in &self.layers {
            out.extend_from_slice(layer.w.data());
            out.extend_from_slice(&layer.b);
        }
        out
    }

    /// Overwrite all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` does not match [`Mlp::parameters`].
    pub fn set_parameters(&mut self, params: &[f64]) {
        let mut off = 0;
        for layer in &mut self.layers {
            let wlen = layer.w.data().len();
            layer.w.data_mut().copy_from_slice(&params[off..off + wlen]);
            off += wlen;
            let blen = layer.b.len();
            layer.b.copy_from_slice(&params[off..off + blen]);
            off += blen;
        }
        assert_eq!(off, params.len(), "parameter vector length mismatch");
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.data().len() + l.b.len())
            .sum()
    }

    // ---- binary codec ----
    //
    // The vendored serde is a marker-trait stub (derives expand to nothing),
    // so persistence is a hand-rolled, versioned little-endian format:
    //
    //   "APNN" | version u32 | activation u8 | adam_t u64 | n_sizes u32 |
    //   sizes (u32 each) | per layer: w, b, mw, vw, mb, vb (f64 LE each) |
    //   fnv1a-64 checksum of everything before it
    //
    // Weights and Adam moments are saved (so a reloaded net resumes training
    // identically); accumulated gradients are transient and are not.

    /// Serialize the network (weights + Adam state) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CODEC_MAGIC);
        out.extend_from_slice(&CODEC_VERSION.to_le_bytes());
        out.push(match self.activation {
            Activation::Tanh => 0,
            Activation::Relu => 1,
        });
        out.extend_from_slice(&self.t.to_le_bytes());
        let mut sizes = vec![self.input_dim() as u32];
        sizes.extend(self.layers.iter().map(|l| l.w.rows() as u32));
        out.extend_from_slice(&(sizes.len() as u32).to_le_bytes());
        for s in &sizes {
            out.extend_from_slice(&s.to_le_bytes());
        }
        for layer in &self.layers {
            for &v in layer.w.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for &v in &layer.b {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for &v in layer.mw.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for &v in layer.vw.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for &v in &layer.mb {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for &v in &layer.vb {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Deserialize a network previously written by [`Mlp::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation, bad magic/version, checksum
    /// mismatch, or implausible dimensions. Never panics on hostile input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Mlp, DecodeError> {
        if bytes.len() < CODEC_MAGIC.len() + 8 {
            return Err(DecodeError("truncated header".into()));
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let mut sum = [0u8; 8];
        sum.copy_from_slice(sum_bytes);
        if fnv1a(body) != u64::from_le_bytes(sum) {
            return Err(DecodeError("checksum mismatch".into()));
        }
        let mut r = Reader { buf: body, pos: 0 };
        if r.take(CODEC_MAGIC.len())? != CODEC_MAGIC {
            return Err(DecodeError("bad magic".into()));
        }
        let version = r.u32()?;
        if version != CODEC_VERSION {
            return Err(DecodeError(format!("unsupported version {version}")));
        }
        let activation = match r.u8()? {
            0 => Activation::Tanh,
            1 => Activation::Relu,
            a => return Err(DecodeError(format!("unknown activation tag {a}"))),
        };
        let t = r.u64()?;
        let n_sizes = r.u32()? as usize;
        if !(2..=64).contains(&n_sizes) {
            return Err(DecodeError(format!("implausible layer count {n_sizes}")));
        }
        let mut sizes = Vec::with_capacity(n_sizes);
        for _ in 0..n_sizes {
            let s = r.u32()? as usize;
            if s == 0 || s > 1 << 20 {
                return Err(DecodeError(format!("implausible layer size {s}")));
            }
            sizes.push(s);
        }
        let mut layers = Vec::with_capacity(n_sizes - 1);
        for w in sizes.windows(2) {
            let (inputs, outputs) = (w[0], w[1]);
            let mut layer = Dense {
                w: Matrix::zeros(outputs, inputs),
                b: vec![0.0; outputs],
                gw: Matrix::zeros(outputs, inputs),
                gb: vec![0.0; outputs],
                mw: Matrix::zeros(outputs, inputs),
                vw: Matrix::zeros(outputs, inputs),
                mb: vec![0.0; outputs],
                vb: vec![0.0; outputs],
            };
            r.f64_into(layer.w.data_mut())?;
            r.f64_into(&mut layer.b)?;
            r.f64_into(layer.mw.data_mut())?;
            r.f64_into(layer.vw.data_mut())?;
            r.f64_into(&mut layer.mb)?;
            r.f64_into(&mut layer.vb)?;
            layers.push(layer);
        }
        if r.pos != body.len() {
            return Err(DecodeError("trailing bytes".into()));
        }
        Ok(Mlp {
            layers,
            activation,
            t,
            pending: 0,
        })
    }
}

/// Caller-owned scratch for [`Mlp::forward_into`]: two ping-pong
/// activation buffers, reused across calls (no steady-state allocation).
#[derive(Debug, Default, Clone)]
pub struct Workspace {
    cur: Vec<f64>,
    nxt: Vec<f64>,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Workspace {
        Workspace::default()
    }
}

/// Caller-owned scratch for [`Mlp::backward_batch`] delta vectors.
#[derive(Debug, Default, Clone)]
pub struct GradScratch {
    delta: Vec<f64>,
    next: Vec<f64>,
}

impl GradScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> GradScratch {
        GradScratch::default()
    }
}

const CODEC_MAGIC: &[u8] = b"APNN";
const CODEC_VERSION: u32 = 1;

/// Failure decoding a serialized [`Mlp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mlp decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError("truncated".into()));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64_into(&mut self, out: &mut [f64]) -> Result<(), DecodeError> {
        let raw = self.take(out.len() * 8)?;
        for (i, v) in out.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&raw[i * 8..i * 8 + 8]);
            *v = f64::from_le_bytes(b);
        }
        Ok(())
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_matches_finite_differences() {
        let mut net = Mlp::new(&[3, 5, 2], Activation::Tanh, 7);
        let x = [0.3, -0.7, 1.1];
        // Loss = sum of outputs (dL/dy = 1).
        let loss = |n: &Mlp| -> f64 { n.forward(&x).iter().sum() };

        net.backward(&x, &[1.0, 1.0]);
        // Extract analytic gradient of first-layer weight (0,0) by probing.
        let analytic = net.layers[0].gw.get(0, 0);

        let eps = 1e-6;
        let mut plus = net.clone();
        *plus.layers[0].w.get_mut(0, 0) += eps;
        let mut minus = net.clone();
        *minus.layers[0].w.get_mut(0, 0) -= eps;
        let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-6,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn bias_gradient_matches_finite_differences() {
        let mut net = Mlp::new(&[2, 4, 3], Activation::Relu, 9);
        let x = [0.9, 0.4];
        let loss = |n: &Mlp| -> f64 {
            let y = n.forward(&x);
            y.iter().map(|v| v * v).sum::<f64>() * 0.5
        };
        let y = net.forward(&x);
        net.backward(&x, &y); // dL/dy = y for 0.5*||y||^2
        let analytic = net.layers[1].gb[1];
        let eps = 1e-6;
        let mut plus = net.clone();
        plus.layers[1].b[1] += eps;
        let mut minus = net.clone();
        minus.layers[1].b[1] -= eps;
        let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-6);
    }

    #[test]
    fn learns_linear_function() {
        let mut net = Mlp::new(&[2, 16, 1], Activation::Tanh, 3);
        for _ in 0..600 {
            for (a, b) in [(0.1, 0.9), (0.5, -0.5), (-0.3, 0.2), (0.8, 0.4)] {
                let target = a - b;
                let y = net.forward(&[a, b]);
                net.backward(&[a, b], &[y[0] - target]);
                net.step(5e-3);
            }
        }
        let y = net.forward(&[0.2, 0.1]);
        assert!((y[0] - 0.1).abs() < 0.05, "got {}", y[0]);
    }

    #[test]
    fn parameter_roundtrip() {
        let net = Mlp::new(&[4, 8, 3], Activation::Relu, 5);
        let p = net.parameters();
        assert_eq!(p.len(), net.num_parameters());
        let mut other = Mlp::new(&[4, 8, 3], Activation::Relu, 99);
        other.set_parameters(&p);
        let x = [1.0, -1.0, 0.5, 0.0];
        assert_eq!(net.forward(&x), other.forward(&x));
    }

    #[test]
    fn softmax_properties() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let s: f64 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with huge logits.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn step_without_backward_is_noop() {
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, 11);
        let before = net.parameters();
        net.step(1e-2);
        assert_eq!(before, net.parameters());
    }

    #[test]
    fn zero_grad_discards() {
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, 13);
        let before = net.parameters();
        net.backward(&[1.0, 1.0], &[1.0]);
        net.zero_grad();
        net.step(1e-2);
        assert_eq!(before, net.parameters());
    }

    #[test]
    fn deterministic_construction() {
        let a = Mlp::new(&[3, 8, 2], Activation::Tanh, 42);
        let b = Mlp::new(&[3, 8, 2], Activation::Tanh, 42);
        assert_eq!(a.parameters(), b.parameters());
    }

    #[test]
    fn codec_roundtrip_is_bit_identical() {
        // Train a few steps so Adam moments and t are nonzero.
        let mut net = Mlp::new(&[3, 8, 2], Activation::Tanh, 21);
        for _ in 0..5 {
            net.backward(&[0.1, -0.2, 0.3], &[1.0, -1.0]);
            net.step(1e-3);
        }
        let bytes = net.to_bytes();
        let back = Mlp::from_bytes(&bytes).unwrap();
        assert_eq!(
            back.parameters()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            net.parameters()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        // Re-encoding is byte-identical (Adam state included).
        assert_eq!(back.to_bytes(), bytes);
        // Training after reload matches training the original — Adam state
        // survived the roundtrip.
        let mut orig = net.clone();
        let mut loaded = back;
        orig.backward(&[0.5, 0.5, 0.5], &[0.2, 0.4]);
        orig.step(1e-3);
        loaded.backward(&[0.5, 0.5, 0.5], &[0.2, 0.4]);
        loaded.step(1e-3);
        assert_eq!(orig.parameters(), loaded.parameters());
    }

    #[test]
    fn codec_rejects_corruption() {
        let net = Mlp::new(&[2, 4, 1], Activation::Relu, 1);
        let bytes = net.to_bytes();
        assert!(Mlp::from_bytes(&[]).is_err());
        assert!(Mlp::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut flipped = bytes.clone();
        flipped[20] ^= 0xff;
        assert!(Mlp::from_bytes(&flipped).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(Mlp::from_bytes(&bad_magic).is_err());
    }
}
