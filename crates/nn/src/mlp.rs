//! Multi-layer perceptron with backprop and Adam.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `tanh(x)` (the paper's RLlib default for PPO).
    Tanh,
    /// `max(0, x)`.
    Relu,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed in terms of the activation *output*.
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
    // Accumulated gradients.
    gw: Matrix,
    gb: Vec<f64>,
    // Adam moments.
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Dense {
        Dense {
            w: Matrix::xavier(outputs, inputs, rng),
            b: vec![0.0; outputs],
            gw: Matrix::zeros(outputs, inputs),
            gb: vec![0.0; outputs],
            mw: Matrix::zeros(outputs, inputs),
            vw: Matrix::zeros(outputs, inputs),
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
        }
    }
}

/// A feed-forward network with dense layers, nonlinear hidden activations,
/// and a linear output layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    activation: Activation,
    /// Adam step counter.
    t: u64,
    /// Samples accumulated since the last [`Mlp::step`].
    pending: usize,
}

impl Mlp {
    /// Build a network with the given layer sizes, e.g. `[56, 256, 256, 46]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], activation: Activation, seed: u64) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        Mlp {
            layers,
            activation,
            t: 0,
            pending: 0,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].w.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("nonempty").w.rows()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.forward_cached(x).pop().expect("nonempty activations")
    }

    /// Forward pass returning every layer's activation (last = output).
    fn forward_cached(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        let mut cur = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut y = layer.w.matvec(&cur);
            for (yi, bi) in y.iter_mut().zip(&layer.b) {
                *yi += bi;
            }
            if li + 1 < self.layers.len() {
                for v in &mut y {
                    *v = self.activation.apply(*v);
                }
            }
            acts.push(y.clone());
            cur = y;
        }
        acts
    }

    /// Accumulate gradients for one sample given `dLoss/dOutput`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward(&mut self, x: &[f64], dl_dy: &[f64]) {
        assert_eq!(dl_dy.len(), self.output_dim(), "output grad mismatch");
        let acts = self.forward_cached(x);
        let mut delta = dl_dy.to_vec();
        for li in (0..self.layers.len()).rev() {
            // Input to this layer:
            let input: &[f64] = if li == 0 { x } else { &acts[li - 1] };
            // Nonlinear layers: modulate by activation derivative.
            if li + 1 < self.layers.len() {
                let out = &acts[li];
                for (d, &o) in delta.iter_mut().zip(out) {
                    *d *= self.activation.derivative_from_output(o);
                }
            }
            self.layers[li].gw.add_outer(&delta, input);
            for (g, d) in self.layers[li].gb.iter_mut().zip(&delta) {
                *g += d;
            }
            if li > 0 {
                delta = self.layers[li].w.matvec_t(&delta);
            }
        }
        self.pending += 1;
    }

    /// Apply one Adam update from the accumulated (mean) gradients, then
    /// clear them. No-op when nothing is pending.
    pub fn step(&mut self, lr: f64) {
        if self.pending == 0 {
            return;
        }
        let scale = 1.0 / self.pending as f64;
        self.t += 1;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for layer in &mut self.layers {
            for i in 0..layer.w.data().len() {
                let g = layer.gw.data()[i] * scale;
                let m = b1 * layer.mw.data()[i] + (1.0 - b1) * g;
                let v = b2 * layer.vw.data()[i] + (1.0 - b2) * g * g;
                layer.mw.data_mut()[i] = m;
                layer.vw.data_mut()[i] = v;
                let mhat = m / bc1;
                let vhat = v / bc2;
                layer.w.data_mut()[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            for i in 0..layer.b.len() {
                let g = layer.gb[i] * scale;
                let m = b1 * layer.mb[i] + (1.0 - b1) * g;
                let v = b2 * layer.vb[i] + (1.0 - b2) * g * g;
                layer.mb[i] = m;
                layer.vb[i] = v;
                layer.b[i] -= lr * (m / bc1) / ((v / bc2).sqrt() + eps);
            }
            layer.gw.clear();
            layer.gb.iter_mut().for_each(|g| *g = 0.0);
        }
        self.pending = 0;
    }

    /// Discard accumulated gradients without stepping.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.gw.clear();
            layer.gb.iter_mut().for_each(|g| *g = 0.0);
        }
        self.pending = 0;
    }

    /// Flatten all parameters (used by the evolution-strategies agent).
    pub fn parameters(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for layer in &self.layers {
            out.extend_from_slice(layer.w.data());
            out.extend_from_slice(&layer.b);
        }
        out
    }

    /// Overwrite all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` does not match [`Mlp::parameters`].
    pub fn set_parameters(&mut self, params: &[f64]) {
        let mut off = 0;
        for layer in &mut self.layers {
            let wlen = layer.w.data().len();
            layer.w.data_mut().copy_from_slice(&params[off..off + wlen]);
            off += wlen;
            let blen = layer.b.len();
            layer.b.copy_from_slice(&params[off..off + blen]);
            off += blen;
        }
        assert_eq!(off, params.len(), "parameter vector length mismatch");
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.data().len() + l.b.len())
            .sum()
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_matches_finite_differences() {
        let mut net = Mlp::new(&[3, 5, 2], Activation::Tanh, 7);
        let x = [0.3, -0.7, 1.1];
        // Loss = sum of outputs (dL/dy = 1).
        let loss = |n: &Mlp| -> f64 { n.forward(&x).iter().sum() };

        net.backward(&x, &[1.0, 1.0]);
        // Extract analytic gradient of first-layer weight (0,0) by probing.
        let analytic = net.layers[0].gw.get(0, 0);

        let eps = 1e-6;
        let mut plus = net.clone();
        *plus.layers[0].w.get_mut(0, 0) += eps;
        let mut minus = net.clone();
        *minus.layers[0].w.get_mut(0, 0) -= eps;
        let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-6,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn bias_gradient_matches_finite_differences() {
        let mut net = Mlp::new(&[2, 4, 3], Activation::Relu, 9);
        let x = [0.9, 0.4];
        let loss = |n: &Mlp| -> f64 {
            let y = n.forward(&x);
            y.iter().map(|v| v * v).sum::<f64>() * 0.5
        };
        let y = net.forward(&x);
        net.backward(&x, &y); // dL/dy = y for 0.5*||y||^2
        let analytic = net.layers[1].gb[1];
        let eps = 1e-6;
        let mut plus = net.clone();
        plus.layers[1].b[1] += eps;
        let mut minus = net.clone();
        minus.layers[1].b[1] -= eps;
        let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-6);
    }

    #[test]
    fn learns_linear_function() {
        let mut net = Mlp::new(&[2, 16, 1], Activation::Tanh, 3);
        for _ in 0..600 {
            for (a, b) in [(0.1, 0.9), (0.5, -0.5), (-0.3, 0.2), (0.8, 0.4)] {
                let target = a - b;
                let y = net.forward(&[a, b]);
                net.backward(&[a, b], &[y[0] - target]);
                net.step(5e-3);
            }
        }
        let y = net.forward(&[0.2, 0.1]);
        assert!((y[0] - 0.1).abs() < 0.05, "got {}", y[0]);
    }

    #[test]
    fn parameter_roundtrip() {
        let net = Mlp::new(&[4, 8, 3], Activation::Relu, 5);
        let p = net.parameters();
        assert_eq!(p.len(), net.num_parameters());
        let mut other = Mlp::new(&[4, 8, 3], Activation::Relu, 99);
        other.set_parameters(&p);
        let x = [1.0, -1.0, 0.5, 0.0];
        assert_eq!(net.forward(&x), other.forward(&x));
    }

    #[test]
    fn softmax_properties() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let s: f64 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with huge logits.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn step_without_backward_is_noop() {
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, 11);
        let before = net.parameters();
        net.step(1e-2);
        assert_eq!(before, net.parameters());
    }

    #[test]
    fn zero_grad_discards() {
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, 13);
        let before = net.parameters();
        net.backward(&[1.0, 1.0], &[1.0]);
        net.zero_grad();
        net.step(1e-2);
        assert_eq!(before, net.parameters());
    }

    #[test]
    fn deterministic_construction() {
        let a = Mlp::new(&[3, 8, 2], Activation::Tanh, 42);
        let b = Mlp::new(&[3, 8, 2], Activation::Tanh, 42);
        assert_eq!(a.parameters(), b.parameters());
    }
}
