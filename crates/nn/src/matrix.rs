//! Row-major matrices sized for 256-unit MLPs.

use crate::simd;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major `rows × cols` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// `y = W x` for a column vector `x` (length = cols).
    ///
    /// This is the deliberately scalar row-major reference kernel (a
    /// strict-order dot product per row); the SIMD path lives in the
    /// k-major [`crate::SoaMlp`] layout and is bit-identical to this.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// [`Matrix::matvec`] into a caller-owned buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output mismatch");
        for (yr, row) in y.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *yr = acc;
        }
    }

    /// `y = Wᵀ x` for a column vector `x` (length = rows).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.cols];
        self.matvec_t_into(x, &mut y);
        y
    }

    /// [`Matrix::matvec_t`] accumulated into a zeroed caller buffer.
    ///
    /// Vectorized across columns; each output element still accumulates
    /// over rows in ascending order, so the result is bit-identical to
    /// the scalar loop at any kernel width.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `y.len() != cols`.
    pub fn matvec_t_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t output mismatch");
        let width = simd::picked();
        for (row, &xr) in self.data.chunks_exact(self.cols).zip(x) {
            simd::axpy(y, xr, row, width);
        }
    }

    /// Rank-1 accumulate: `self += a · bᵀ` (outer product), used for
    /// weight gradients. Vectorized across columns (independent
    /// elements, so bit-identical at any kernel width).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), self.rows);
        assert_eq!(b.len(), self.cols);
        let width = simd::picked();
        for (row, &ar) in self.data.chunks_exact_mut(self.cols).zip(a) {
            simd::axpy(row, ar, b, width);
        }
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Raw data slice.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill with zeros.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_known_values() {
        let mut m = Matrix::zeros(2, 3);
        // [[1,2,3],[4,5,6]]
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            m.data_mut()[i] = *v;
        }
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 8.0);
        m.add_outer(&[1.0, 0.0], &[1.0, 0.0]);
        assert_eq!(m.get(0, 0), 4.0);
    }

    #[test]
    fn xavier_bounds_and_determinism() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(8, 8, &mut r1);
        let b = Matrix::xavier(8, 8, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0 / 16.0f64).sqrt();
        assert!(a.data().iter().all(|&v| v.abs() <= bound));
        assert!(a.norm() > 0.0);
    }

    #[test]
    #[should_panic]
    fn matvec_dimension_checked() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }

    #[test]
    fn map_and_clear() {
        let mut m = Matrix::zeros(2, 2);
        m.map_inplace(|_| 1.5);
        assert_eq!(m.data(), &[1.5; 4]);
        m.clear();
        assert_eq!(m.norm(), 0.0);
    }
}
