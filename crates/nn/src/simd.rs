//! Explicit-width f64 SIMD kernels with runtime width selection.
//!
//! The kernels here power the structure-of-arrays batched forward in
//! [`crate::soa`] and the gradient accumulation in [`crate::Matrix`].
//! They follow one **order-of-operations contract** that makes every
//! width produce bit-identical results to the scalar reference:
//!
//! * Reductions run over `k` in ascending order per output element.
//!   Vector lanes span *outputs* (`n`), never the reduction axis, so no
//!   partial-sum reassociation ever happens.
//! * Multiplies and adds are written as separate operations and the
//!   crate never enables `fma` codegen, so no fused multiply-add can
//!   change rounding (LLVM only contracts under fast-math flags, which
//!   Rust does not set).
//! * Transcendentals (`tanh`) use the scalar libm call per lane rather
//!   than a polynomial approximation.
//!
//! Consequently the differential suite pins a tolerance of **zero**:
//! `assert_eq!` on `f64::to_bits`.
//!
//! Width selection follows ratchet's `KernelElement` pattern: a small
//! enum ([`KernelWidth`]) chosen once at startup (or forced by tests and
//! benches), dispatching to monomorphized lane kernels.

use std::sync::OnceLock;

/// Vector width for the f64 kernels, à la ratchet's `KernelElement`.
///
/// `V4` maps to AVX `f64x4` on `x86_64` (runtime-detected; falls back to
/// the generic 4-lane kernel elsewhere) or to `std::simd::f64x4` under
/// the `nightly-simd` feature. `V2` is the SSE2-baseline 2-lane kernel.
/// `Scalar` is a plain loop, used when the `simd` feature is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelWidth {
    /// Four f64 lanes (AVX ymm / `std::simd::f64x4`).
    V4,
    /// Two f64 lanes (SSE2 xmm baseline).
    V2,
    /// One element at a time.
    Scalar,
}

impl KernelWidth {
    /// Number of f64 lanes per vector.
    pub fn lanes(self) -> usize {
        match self {
            KernelWidth::V4 => 4,
            KernelWidth::V2 => 2,
            KernelWidth::Scalar => 1,
        }
    }

    /// Stable name, accepted by [`KernelWidth::parse`].
    pub fn name(self) -> &'static str {
        match self {
            KernelWidth::V4 => "v4",
            KernelWidth::V2 => "v2",
            KernelWidth::Scalar => "scalar",
        }
    }

    /// Parse a width name (`v4`/`v2`/`scalar`), e.g. from a bench flag.
    pub fn parse(s: &str) -> Option<KernelWidth> {
        match s {
            "v4" => Some(KernelWidth::V4),
            "v2" => Some(KernelWidth::V2),
            "scalar" => Some(KernelWidth::Scalar),
            _ => None,
        }
    }

    /// All widths, widest first (for differential sweeps).
    pub fn all() -> [KernelWidth; 3] {
        [KernelWidth::V4, KernelWidth::V2, KernelWidth::Scalar]
    }

    /// Select the widest kernel this build + CPU supports.
    ///
    /// With the `simd` feature disabled this is always `Scalar`. With
    /// `nightly-simd` it is `V4` (portable lanes work everywhere).
    /// Otherwise `V4` when the CPU reports AVX, else `V2`.
    pub fn pick() -> KernelWidth {
        pick_impl()
    }
}

#[cfg(not(feature = "simd"))]
fn pick_impl() -> KernelWidth {
    KernelWidth::Scalar
}

#[cfg(all(feature = "simd", feature = "nightly-simd"))]
fn pick_impl() -> KernelWidth {
    KernelWidth::V4
}

#[cfg(all(feature = "simd", not(feature = "nightly-simd")))]
fn pick_impl() -> KernelWidth {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        return KernelWidth::V4;
    }
    KernelWidth::V2
}

/// [`KernelWidth::pick`], computed once and cached.
pub fn picked() -> KernelWidth {
    static PICKED: OnceLock<KernelWidth> = OnceLock::new();
    *PICKED.get_or_init(KernelWidth::pick)
}

// ---- lane workers ----
//
// One generic body, monomorphized per lane count. The `L`-sized array
// temporaries compile to vector registers; the remainder tail is scalar.
// Per *element* the arithmetic is identical across `L`, which is what
// the bit-identity contract rests on.

#[inline(always)]
fn axpy_lanes<const L: usize>(y: &mut [f64], a: f64, x: &[f64]) {
    let n = y.len();
    let main = n - n % L;
    let (yv, yt) = y.split_at_mut(main);
    let (xv, xt) = x.split_at(main);
    for (yc, xc) in yv.chunks_exact_mut(L).zip(xv.chunks_exact(L)) {
        let mut prod = [0.0f64; L];
        for i in 0..L {
            prod[i] = a * xc[i];
        }
        for i in 0..L {
            yc[i] += prod[i];
        }
    }
    for (yi, xi) in yt.iter_mut().zip(xt) {
        *yi += a * *xi;
    }
}

#[inline(always)]
fn add_lanes<const L: usize>(y: &mut [f64], x: &[f64]) {
    let n = y.len();
    let main = n - n % L;
    let (yv, yt) = y.split_at_mut(main);
    let (xv, xt) = x.split_at(main);
    for (yc, xc) in yv.chunks_exact_mut(L).zip(xv.chunks_exact(L)) {
        for i in 0..L {
            yc[i] += xc[i];
        }
    }
    for (yi, xi) in yt.iter_mut().zip(xt) {
        *yi += *xi;
    }
}

/// `y[n] = Σ_k x[k] · wt[k·out + n]` for a k-major (transposed) weight
/// slab, register-blocked: outputs advance in blocks of `4·L` whose four
/// accumulator vectors stay in registers while `k` streams, so the
/// weight slab is read once and `y` written once (an axpy formulation
/// would re-read and re-write `y` for every `k`), and the four
/// independent accumulation chains hide FP-add latency. Each output
/// element still accumulates in ascending-`k` order with separate
/// mul-then-add — bit-identical to the scalar matvec.
#[inline(always)]
fn gemv_kt_lanes<const L: usize>(wt: &[f64], x: &[f64], y: &mut [f64]) {
    let out = y.len();
    if out == 0 {
        return;
    }
    let block = 4 * L;
    let mut n = 0;
    while n + block <= out {
        let mut acc = [[0.0f64; L]; 4];
        for (k, &xk) in x.iter().enumerate() {
            let row = &wt[k * out + n..k * out + n + block];
            for (u, a) in acc.iter_mut().enumerate() {
                let mut prod = [0.0f64; L];
                for l in 0..L {
                    prod[l] = row[u * L + l] * xk;
                }
                for l in 0..L {
                    a[l] += prod[l];
                }
            }
        }
        for (u, a) in acc.iter().enumerate() {
            y[n + u * L..n + (u + 1) * L].copy_from_slice(a);
        }
        n += block;
    }
    // Output tail: plain dot products in the same ascending-k order.
    for nn in n..out {
        let mut a = 0.0;
        for (k, &xk) in x.iter().enumerate() {
            a += wt[k * out + nn] * xk;
        }
        y[nn] = a;
    }
}

/// Batched GEMM over the same k-major slab: `batch` independent GEMVs
/// computed together, row-blocked so each weight vector loaded from the
/// slab is reused across [`GEMM_ROW_BLOCK`] batch rows before moving on —
/// the weight-traffic amortization a gathered serving batch exists for.
/// The per-element reduction order is exactly [`gemv_kt_lanes`]'s, so
/// batching is bit-invisible.
#[inline(always)]
fn gemm_kt_lanes<const L: usize>(
    wt: &[f64],
    xs: &[f64],
    ys: &mut [f64],
    batch: usize,
    kdim: usize,
    out: usize,
) {
    const RB: usize = GEMM_ROW_BLOCK;
    if out == 0 {
        return;
    }
    let nb = 2 * L;
    let mut b = 0;
    while b + RB <= batch {
        let xrow: [&[f64]; RB] = std::array::from_fn(|r| &xs[(b + r) * kdim..(b + r + 1) * kdim]);
        let mut n = 0;
        while n + nb <= out {
            // RB rows × 2 vectors of L lanes: 8 independent accumulator
            // chains in registers at L = 4, with each `row` load shared
            // by all RB batch rows.
            let mut acc = [[[0.0f64; L]; 2]; RB];
            for k in 0..kdim {
                let row = &wt[k * out + n..k * out + n + nb];
                for (r, accr) in acc.iter_mut().enumerate() {
                    let xk = xrow[r][k];
                    for (u, a) in accr.iter_mut().enumerate() {
                        let mut prod = [0.0f64; L];
                        for l in 0..L {
                            prod[l] = row[u * L + l] * xk;
                        }
                        for l in 0..L {
                            a[l] += prod[l];
                        }
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                for (u, a) in accr.iter().enumerate() {
                    ys[(b + r) * out + n + u * L..(b + r) * out + n + (u + 1) * L]
                        .copy_from_slice(a);
                }
            }
            n += nb;
        }
        for nn in n..out {
            for (r, xr) in xrow.iter().enumerate() {
                let mut a = 0.0;
                for (k, &xk) in xr.iter().enumerate() {
                    a += wt[k * out + nn] * xk;
                }
                ys[(b + r) * out + nn] = a;
            }
        }
        b += RB;
    }
    // Batch tail: plain per-row GEMV.
    while b < batch {
        gemv_kt_lanes::<L>(
            wt,
            &xs[b * kdim..(b + 1) * kdim],
            &mut ys[b * out..(b + 1) * out],
        );
        b += 1;
    }
}

/// Batch rows sharing one weight load in [`gemm_kt_lanes`].
const GEMM_ROW_BLOCK: usize = 4;

// ---- V4 backends ----
//
// `#[target_feature(enable = "avx")]` recompiles the generic 4-lane body
// with ymm registers ("avx" only — never "fma", see the module contract).
// The nightly path uses `std::simd` portable vectors instead; both are
// lane-exact IEEE ops.

#[cfg(all(not(feature = "nightly-simd"), target_arch = "x86_64"))]
mod v4 {
    #[target_feature(enable = "avx")]
    pub unsafe fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
        super::axpy_lanes::<4>(y, a, x);
    }

    #[target_feature(enable = "avx")]
    pub unsafe fn add(y: &mut [f64], x: &[f64]) {
        super::add_lanes::<4>(y, x);
    }

    #[target_feature(enable = "avx")]
    pub unsafe fn gemv_kt(wt: &[f64], x: &[f64], y: &mut [f64]) {
        super::gemv_kt_lanes::<4>(wt, x, y);
    }

    #[target_feature(enable = "avx")]
    pub unsafe fn gemm_kt(
        wt: &[f64],
        xs: &[f64],
        ys: &mut [f64],
        batch: usize,
        kdim: usize,
        out: usize,
    ) {
        super::gemm_kt_lanes::<4>(wt, xs, ys, batch, kdim, out);
    }

    pub fn avx_available() -> bool {
        use std::sync::OnceLock;
        static AVX: OnceLock<bool> = OnceLock::new();
        *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
    }
}

#[cfg(feature = "nightly-simd")]
mod v4 {
    use std::simd::f64x4;

    pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
        let n = y.len();
        let main = n - n % 4;
        let av = f64x4::splat(a);
        for (yc, xc) in y[..main].chunks_exact_mut(4).zip(x[..main].chunks_exact(4)) {
            let r = f64x4::from_slice(yc) + av * f64x4::from_slice(xc);
            r.copy_to_slice(yc);
        }
        for (yi, xi) in y[main..].iter_mut().zip(&x[main..]) {
            *yi += a * *xi;
        }
    }

    pub fn add(y: &mut [f64], x: &[f64]) {
        let n = y.len();
        let main = n - n % 4;
        for (yc, xc) in y[..main].chunks_exact_mut(4).zip(x[..main].chunks_exact(4)) {
            let r = f64x4::from_slice(yc) + f64x4::from_slice(xc);
            r.copy_to_slice(yc);
        }
        for (yi, xi) in y[main..].iter_mut().zip(&x[main..]) {
            *yi += *xi;
        }
    }

    pub fn gemv_kt(wt: &[f64], x: &[f64], y: &mut [f64]) {
        let out = y.len();
        if out == 0 {
            return;
        }
        let block = 16;
        let mut n = 0;
        while n + block <= out {
            let mut acc = [f64x4::splat(0.0); 4];
            for (k, &xk) in x.iter().enumerate() {
                let row = &wt[k * out + n..k * out + n + block];
                let xv = f64x4::splat(xk);
                for (u, a) in acc.iter_mut().enumerate() {
                    // Separate mul then add: portable-simd ops are strict
                    // IEEE, never contracted to fma.
                    *a += f64x4::from_slice(&row[u * 4..(u + 1) * 4]) * xv;
                }
            }
            for (u, a) in acc.iter().enumerate() {
                a.copy_to_slice(&mut y[n + u * 4..n + (u + 1) * 4]);
            }
            n += block;
        }
        for nn in n..out {
            let mut a = 0.0;
            for (k, &xk) in x.iter().enumerate() {
                a += wt[k * out + nn] * xk;
            }
            y[nn] = a;
        }
    }

    pub fn gemm_kt(wt: &[f64], xs: &[f64], ys: &mut [f64], batch: usize, kdim: usize, out: usize) {
        const RB: usize = super::GEMM_ROW_BLOCK;
        if out == 0 {
            return;
        }
        let nb = 8;
        let mut b = 0;
        while b + RB <= batch {
            let xrow: [&[f64]; RB] =
                std::array::from_fn(|r| &xs[(b + r) * kdim..(b + r + 1) * kdim]);
            let mut n = 0;
            while n + nb <= out {
                let mut acc = [[f64x4::splat(0.0); 2]; RB];
                for k in 0..kdim {
                    let row = &wt[k * out + n..k * out + n + nb];
                    let r0 = f64x4::from_slice(&row[0..4]);
                    let r1 = f64x4::from_slice(&row[4..8]);
                    for (r, a) in acc.iter_mut().enumerate() {
                        let xv = f64x4::splat(xrow[r][k]);
                        a[0] += r0 * xv;
                        a[1] += r1 * xv;
                    }
                }
                for (r, a) in acc.iter().enumerate() {
                    a[0].copy_to_slice(&mut ys[(b + r) * out + n..(b + r) * out + n + 4]);
                    a[1].copy_to_slice(&mut ys[(b + r) * out + n + 4..(b + r) * out + n + 8]);
                }
                n += nb;
            }
            for nn in n..out {
                for (r, xr) in xrow.iter().enumerate() {
                    let mut a = 0.0;
                    for (k, &xk) in xr.iter().enumerate() {
                        a += wt[k * out + nn] * xk;
                    }
                    ys[(b + r) * out + nn] = a;
                }
            }
            b += RB;
        }
        while b < batch {
            gemv_kt(
                wt,
                &xs[b * kdim..(b + 1) * kdim],
                &mut ys[b * out..(b + 1) * out],
            );
            b += 1;
        }
    }
}

fn axpy_v4(y: &mut [f64], a: f64, x: &[f64]) {
    #[cfg(all(not(feature = "nightly-simd"), target_arch = "x86_64"))]
    if v4::avx_available() {
        // SAFETY: guarded by runtime AVX detection.
        unsafe { v4::axpy(y, a, x) };
        return;
    }
    #[cfg(feature = "nightly-simd")]
    {
        v4::axpy(y, a, x);
        return;
    }
    #[allow(unreachable_code)]
    axpy_lanes::<4>(y, a, x)
}

fn add_v4(y: &mut [f64], x: &[f64]) {
    #[cfg(all(not(feature = "nightly-simd"), target_arch = "x86_64"))]
    if v4::avx_available() {
        // SAFETY: guarded by runtime AVX detection.
        unsafe { v4::add(y, x) };
        return;
    }
    #[cfg(feature = "nightly-simd")]
    {
        v4::add(y, x);
        return;
    }
    #[allow(unreachable_code)]
    add_lanes::<4>(y, x)
}

fn gemv_kt_v4(wt: &[f64], x: &[f64], y: &mut [f64]) {
    #[cfg(all(not(feature = "nightly-simd"), target_arch = "x86_64"))]
    if v4::avx_available() {
        // SAFETY: guarded by runtime AVX detection.
        unsafe { v4::gemv_kt(wt, x, y) };
        return;
    }
    #[cfg(feature = "nightly-simd")]
    {
        v4::gemv_kt(wt, x, y);
        return;
    }
    #[allow(unreachable_code)]
    gemv_kt_lanes::<4>(wt, x, y)
}

fn gemm_kt_v4(wt: &[f64], xs: &[f64], ys: &mut [f64], batch: usize, kdim: usize, out: usize) {
    #[cfg(all(not(feature = "nightly-simd"), target_arch = "x86_64"))]
    if v4::avx_available() {
        // SAFETY: guarded by runtime AVX detection.
        unsafe { v4::gemm_kt(wt, xs, ys, batch, kdim, out) };
        return;
    }
    #[cfg(feature = "nightly-simd")]
    {
        v4::gemm_kt(wt, xs, ys, batch, kdim, out);
        return;
    }
    #[allow(unreachable_code)]
    gemm_kt_lanes::<4>(wt, xs, ys, batch, kdim, out)
}

// ---- public dispatch ----

/// `y[i] += a · x[i]`, vectorized over `i`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(y: &mut [f64], a: f64, x: &[f64], width: KernelWidth) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    match width {
        KernelWidth::V4 => axpy_v4(y, a, x),
        KernelWidth::V2 => axpy_lanes::<2>(y, a, x),
        KernelWidth::Scalar => axpy_lanes::<1>(y, a, x),
    }
}

/// `y[i] += x[i]`, vectorized over `i` (bias application).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add_assign(y: &mut [f64], x: &[f64], width: KernelWidth) {
    assert_eq!(y.len(), x.len(), "add_assign length mismatch");
    match width {
        KernelWidth::V4 => add_v4(y, x),
        KernelWidth::V2 => add_lanes::<2>(y, x),
        KernelWidth::Scalar => add_lanes::<1>(y, x),
    }
}

/// Dense GEMV over a **k-major** (input-major, i.e. transposed) weight
/// slab: `y[n] = Σ_k x[k] · wt[k·y.len() + n]`.
///
/// Every output element accumulates over `k` in ascending order, making
/// the result bit-identical to the row-major scalar
/// [`crate::Matrix::matvec`] for the same weights.
///
/// # Panics
///
/// Panics if `wt.len() != x.len() * y.len()`.
pub fn gemv_kt(wt: &[f64], x: &[f64], y: &mut [f64], width: KernelWidth) {
    assert_eq!(wt.len(), x.len() * y.len(), "gemv_kt shape mismatch");
    match width {
        KernelWidth::V4 => gemv_kt_v4(wt, x, y),
        KernelWidth::V2 => gemv_kt_lanes::<2>(wt, x, y),
        KernelWidth::Scalar => gemv_kt_lanes::<1>(wt, x, y),
    }
}

/// Batched [`gemv_kt`]: `batch` rows of `xs` (each `kdim` long) against
/// one k-major slab, producing `batch` rows of `ys` (each `out` long).
/// Row-blocked so each weight load is shared across batch rows; every
/// output element's reduction order is exactly [`gemv_kt`]'s, so the
/// results are bit-identical to `batch` independent GEMV calls.
///
/// # Panics
///
/// Panics if `xs`/`ys` are not whole multiples of `batch`, or the slab
/// size does not match the per-row dimensions.
pub fn gemm_kt(wt: &[f64], xs: &[f64], ys: &mut [f64], batch: usize, width: KernelWidth) {
    if batch == 0 {
        assert!(xs.is_empty() && ys.is_empty(), "gemm_kt shape mismatch");
        return;
    }
    assert_eq!(xs.len() % batch, 0, "gemm_kt input shape mismatch");
    assert_eq!(ys.len() % batch, 0, "gemm_kt output shape mismatch");
    let kdim = xs.len() / batch;
    let out = ys.len() / batch;
    assert_eq!(wt.len(), kdim * out, "gemm_kt weight shape mismatch");
    match width {
        KernelWidth::V4 => gemm_kt_v4(wt, xs, ys, batch, kdim, out),
        KernelWidth::V2 => gemm_kt_lanes::<2>(wt, xs, ys, batch, kdim, out),
        KernelWidth::Scalar => gemm_kt_lanes::<1>(wt, xs, ys, batch, kdim, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_metadata() {
        for w in KernelWidth::all() {
            assert_eq!(KernelWidth::parse(w.name()), Some(w));
            assert!(w.lanes().is_power_of_two());
        }
        assert_eq!(KernelWidth::parse("v8"), None);
        // pick() honors the feature matrix.
        if cfg!(feature = "simd") {
            assert_ne!(KernelWidth::pick(), KernelWidth::Scalar);
        } else {
            assert_eq!(KernelWidth::pick(), KernelWidth::Scalar);
        }
        assert_eq!(picked(), KernelWidth::pick());
    }

    #[test]
    fn axpy_bitwise_identical_across_widths() {
        // Lengths straddling every remainder case for 2 and 4 lanes.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 56, 70, 257] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
            let base: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
            let mut want = base.clone();
            axpy(&mut want, 1.7, &x, KernelWidth::Scalar);
            for w in [KernelWidth::V2, KernelWidth::V4] {
                let mut got = base.clone();
                axpy(&mut got, 1.7, &x, w);
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "axpy width {w:?} n {n}"
                );
            }
        }
    }

    #[test]
    fn gemv_kt_matches_scalar_reference() {
        for (k, n) in [(3usize, 5usize), (56, 256), (70, 46), (1, 1), (8, 3)] {
            let wt: Vec<f64> = (0..k * n)
                .map(|i| ((i * 31 % 17) as f64 - 8.0) * 0.3)
                .collect();
            let x: Vec<f64> = (0..k).map(|i| (i as f64 - 2.0) * 0.5).collect();
            // Scalar row-major reference in the exact matvec order.
            let mut want = vec![0.0; n];
            for (nn, w) in want.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (kk, xv) in x.iter().enumerate() {
                    acc += wt[kk * n + nn] * xv;
                }
                *w = acc;
            }
            for width in KernelWidth::all() {
                let mut y = vec![f64::NAN; n];
                gemv_kt(&wt, &x, &mut y, width);
                assert_eq!(
                    y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "gemv width {width:?} k {k} n {n}"
                );
            }
        }
    }

    #[test]
    fn gemm_kt_matches_per_row_gemv() {
        // Batches straddling the row-block boundary (4) and shapes
        // straddling the n-block boundaries for every width.
        for (batch, k, n) in [
            (1usize, 5usize, 7usize),
            (3, 56, 46),
            (4, 8, 16),
            (5, 3, 9),
            (8, 56, 256),
            (11, 17, 33),
        ] {
            let wt: Vec<f64> = (0..k * n)
                .map(|i| ((i * 29 % 13) as f64 - 6.0) * 0.21)
                .collect();
            let xs: Vec<f64> = (0..batch * k)
                .map(|i| ((i * 7 % 19) as f64 - 9.0) * 0.4)
                .collect();
            for width in KernelWidth::all() {
                // Reference: batch independent GEMVs at the same width.
                let mut want = vec![0.0; batch * n];
                for b in 0..batch {
                    gemv_kt(
                        &wt,
                        &xs[b * k..(b + 1) * k],
                        &mut want[b * n..(b + 1) * n],
                        width,
                    );
                }
                let mut ys = vec![f64::NAN; batch * n];
                gemm_kt(&wt, &xs, &mut ys, batch, width);
                assert_eq!(
                    ys.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "gemm width {width:?} batch {batch} k {k} n {n}"
                );
            }
        }
    }

    #[test]
    fn add_assign_all_widths() {
        let b: Vec<f64> = (0..23).map(|i| i as f64 * 0.25).collect();
        let mut want = vec![1.0; 23];
        add_assign(&mut want, &b, KernelWidth::Scalar);
        for w in [KernelWidth::V2, KernelWidth::V4] {
            let mut got = vec![1.0; 23];
            add_assign(&mut got, &b, w);
            assert_eq!(got, want);
        }
    }
}
