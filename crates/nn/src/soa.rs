//! Structure-of-arrays MLP mirror for batched SIMD inference.
//!
//! [`SoaMlp`] holds each dense layer's weights **k-major** (input-index
//! major, i.e. transposed from [`crate::Matrix`]'s row-major layout), so
//! the forward GEMV vectorizes across *outputs* while each output still
//! accumulates over the inputs in ascending order — bit-identical to the
//! scalar [`crate::Mlp::forward`] (see [`crate::simd`] for the
//! order-of-operations contract).
//!
//! A [`BatchWorkspace`] owns every intermediate activation buffer, so a
//! warmed-up engine performs zero heap allocation per batch; the cached
//! per-layer activations also feed [`crate::Mlp::backward_batch`], which
//! lets PPO/A2C skip the second forward pass the scalar `backward` does.

use crate::mlp::{Activation, Mlp};
use crate::simd::{self, KernelWidth};

/// One dense layer in k-major (transposed) layout.
#[derive(Debug, Clone)]
struct SoaLayer {
    /// `wt[k * out + n] = W[n][k]` — row `k` holds every output's weight
    /// for input `k`, contiguously.
    wt: Vec<f64>,
    bias: Vec<f64>,
    inp: usize,
    out: usize,
}

/// A read-only, batched-inference view of an [`Mlp`] in SoA layout.
///
/// Build with [`SoaMlp::from_mlp`], re-sync after optimizer steps with
/// [`SoaMlp::refresh`]. Forward passes go through a caller-owned
/// [`BatchWorkspace`] and are bit-identical to [`Mlp::forward`] at every
/// [`KernelWidth`].
#[derive(Debug, Clone)]
pub struct SoaMlp {
    layers: Vec<SoaLayer>,
    activation: Activation,
    width: KernelWidth,
}

impl SoaMlp {
    /// Mirror `mlp` using the auto-selected kernel width
    /// ([`simd::picked`]).
    pub fn from_mlp(mlp: &Mlp) -> SoaMlp {
        SoaMlp::with_width(mlp, simd::picked())
    }

    /// Mirror `mlp` with an explicit kernel width (tests and benches).
    pub fn with_width(mlp: &Mlp, width: KernelWidth) -> SoaMlp {
        let layers = (0..mlp.num_layers())
            .map(|li| {
                let (w, b) = mlp.layer_weights(li);
                let (out, inp) = (w.rows(), w.cols());
                let mut wt = vec![0.0; out * inp];
                transpose_into(w.data(), out, inp, &mut wt);
                SoaLayer {
                    wt,
                    bias: b.to_vec(),
                    inp,
                    out,
                }
            })
            .collect();
        SoaMlp {
            layers,
            activation: mlp.activation(),
            width,
        }
    }

    /// Re-copy weights from `mlp` in place (no allocation). Call after
    /// each optimizer step when training with the SoA forward path.
    ///
    /// # Panics
    ///
    /// Panics if `mlp`'s shape differs from the mirrored one.
    pub fn refresh(&mut self, mlp: &Mlp) {
        assert_eq!(mlp.num_layers(), self.layers.len(), "layer count changed");
        for (li, layer) in self.layers.iter_mut().enumerate() {
            let (w, b) = mlp.layer_weights(li);
            assert_eq!(
                (w.rows(), w.cols()),
                (layer.out, layer.inp),
                "layer shape changed"
            );
            transpose_into(w.data(), layer.out, layer.inp, &mut layer.wt);
            layer.bias.copy_from_slice(b);
        }
    }

    /// Kernel width this mirror dispatches to.
    pub fn width(&self) -> KernelWidth {
        self.width
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].inp
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("nonempty").out
    }

    /// Hidden activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    fn dims(&self) -> impl Iterator<Item = usize> + '_ {
        std::iter::once(self.layers[0].inp).chain(self.layers.iter().map(|l| l.out))
    }

    /// Run one batched forward over every observation staged in `ws`
    /// (via [`BatchWorkspace::begin`] + [`BatchWorkspace::push_input`]).
    ///
    /// Results land in the workspace: [`BatchWorkspace::logits`] for the
    /// output layer, [`BatchWorkspace::activation`] for hidden layers
    /// (consumed by [`Mlp::backward_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if `ws` was staged for a different network shape.
    pub fn forward_batch(&self, ws: &mut BatchWorkspace) {
        assert!(
            ws.dims.iter().copied().eq(self.dims()),
            "workspace staged for a different network shape"
        );
        let batch = ws.batch;
        for (li, layer) in self.layers.iter().enumerate() {
            let hidden = li + 1 < self.layers.len();
            let (prev, rest) = ws.acts.split_at_mut(li + 1);
            let xs = &prev[li];
            let ys = &mut rest[0];
            ys.clear();
            ys.resize(batch * layer.out, 0.0);
            // One row-blocked GEMM for the whole batch: each weight load
            // is shared across batch rows instead of re-streaming the
            // slab per observation.
            simd::gemm_kt(&layer.wt, xs, ys, batch, self.width);
            for b in 0..batch {
                let y = &mut ys[b * layer.out..(b + 1) * layer.out];
                simd::add_assign(y, &layer.bias, self.width);
                if hidden {
                    // Per-lane libm tanh/relu keeps the zero-tolerance
                    // contract (no polynomial approximation).
                    for v in y.iter_mut() {
                        *v = self.activation.apply(*v);
                    }
                }
            }
        }
    }

    /// Single-observation convenience over [`SoaMlp::forward_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    pub fn forward_one<'w>(&self, x: &[f64], ws: &'w mut BatchWorkspace) -> &'w [f64] {
        ws.begin(self);
        ws.push_input(x);
        self.forward_batch(ws);
        ws.logits(0)
    }
}

fn transpose_into(w: &[f64], rows: usize, cols: usize, wt: &mut [f64]) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(wt.len(), rows * cols);
    for (n, row) in w.chunks_exact(cols).enumerate() {
        for (k, &v) in row.iter().enumerate() {
            wt[k * rows + n] = v;
        }
    }
}

/// Caller-owned scratch for [`SoaMlp::forward_batch`]: staged inputs and
/// every layer's activations for the current batch.
///
/// Buffers are reused across batches — after warm-up (capacity for the
/// largest batch seen), staging and forwarding allocate nothing; the
/// `no_alloc` integration test asserts this.
#[derive(Debug, Default, Clone)]
pub struct BatchWorkspace {
    /// `[input_dim, hidden..., output_dim]` of the staged network.
    dims: Vec<usize>,
    batch: usize,
    /// `acts[0]` = staged inputs; `acts[l + 1]` = layer `l` output.
    /// `acts[i].len() == batch * dims[i]`.
    acts: Vec<Vec<f64>>,
}

impl BatchWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> BatchWorkspace {
        BatchWorkspace::default()
    }

    /// Reset for a new batch against `net`, keeping buffer capacity.
    pub fn begin(&mut self, net: &SoaMlp) {
        self.dims.clear();
        self.dims.extend(net.dims());
        self.batch = 0;
        self.acts.resize(self.dims.len(), Vec::new());
        for a in &mut self.acts {
            a.clear();
        }
    }

    /// Stage one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the staged input dimension.
    pub fn push_input(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.dims[0], "observation length mismatch");
        self.acts[0].extend_from_slice(x);
        self.batch += 1;
    }

    /// Number of staged observations.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Staged input row `b`.
    pub fn input(&self, b: usize) -> &[f64] {
        let d = self.dims[0];
        &self.acts[0][b * d..(b + 1) * d]
    }

    /// Post-activation output of layer `li` for batch row `b` (the last
    /// layer's rows are the logits).
    pub fn activation(&self, li: usize, b: usize) -> &[f64] {
        let d = self.dims[li + 1];
        &self.acts[li + 1][b * d..(b + 1) * d]
    }

    /// Output-layer row `b` after [`SoaMlp::forward_batch`].
    pub fn logits(&self, b: usize) -> &[f64] {
        self.activation(self.dims.len() - 2, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_forward_matches_scalar_forward_bitwise() {
        for act in [Activation::Tanh, Activation::Relu] {
            let mlp = Mlp::new(&[7, 11, 5], act, 42);
            let soa = SoaMlp::from_mlp(&mlp);
            let mut ws = BatchWorkspace::new();
            ws.begin(&soa);
            let obs: Vec<Vec<f64>> = (0..5)
                .map(|b| (0..7).map(|i| ((b * 7 + i) as f64 * 0.3).sin()).collect())
                .collect();
            for o in &obs {
                ws.push_input(o);
            }
            soa.forward_batch(&mut ws);
            for (b, o) in obs.iter().enumerate() {
                let want = mlp.forward(o);
                let got = ws.logits(b);
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn refresh_tracks_weight_updates() {
        let mut mlp = Mlp::new(&[4, 6, 3], Activation::Tanh, 7);
        let mut soa = SoaMlp::from_mlp(&mlp);
        let x = [0.2, -0.4, 0.6, -0.8];
        mlp.backward(&x, &[1.0, -1.0, 0.5]);
        mlp.step(1e-2);
        let mut ws = BatchWorkspace::new();
        // Stale mirror differs, refreshed mirror matches.
        let stale = soa.forward_one(&x, &mut ws).to_vec();
        assert_ne!(stale, mlp.forward(&x));
        soa.refresh(&mlp);
        let fresh = soa.forward_one(&x, &mut ws).to_vec();
        assert_eq!(fresh, mlp.forward(&x));
    }

    #[test]
    #[should_panic(expected = "observation length mismatch")]
    fn workspace_rejects_bad_observation() {
        let mlp = Mlp::new(&[4, 3], Activation::Tanh, 1);
        let soa = SoaMlp::from_mlp(&mlp);
        let mut ws = BatchWorkspace::new();
        ws.begin(&soa);
        ws.push_input(&[1.0, 2.0]);
    }
}
