//! Bagged forests and aggregate feature importance.

use crate::dataset::Dataset;
use crate::tree::{bootstrap, DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth parameters.
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> ForestConfig {
        ForestConfig {
            n_trees: 40,
            tree: TreeConfig::default(),
        }
    }
}

/// A bagged random forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    num_features: usize,
}

impl RandomForest {
    /// Fit a forest on bootstrap resamples of `data`.
    pub fn fit(data: &Dataset, cfg: &ForestConfig, seed: u64) -> RandomForest {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = (0..cfg.n_trees)
            .map(|_| {
                let sample = bootstrap(data.len(), &mut rng);
                DecisionTree::fit(data, &sample, &cfg.tree, &mut rng)
            })
            .collect();
        RandomForest {
            trees,
            num_features: data.num_features(),
        }
    }

    /// Mean predicted probability across trees.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let s: f64 = self.trees.iter().map(|t| t.predict_proba(row)).sum();
        s / self.trees.len() as f64
    }

    /// Majority prediction.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Mean-decrease-in-impurity importance, normalized to sum to 1
    /// (all-zeros when no split ever fired).
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.num_features];
        for t in &self.trees {
            for (i, &v) in t.raw_importance().iter().enumerate() {
                acc[i] += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for v in &mut acc {
                *v /= total;
            }
        }
        acc
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let correct = (0..data.len())
            .filter(|&i| self.predict(data.row(i)) == data.label(i))
            .count();
        correct as f64 / data.len() as f64
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threshold_data(n: usize) -> Dataset {
        // y = (x0 + x1 > 1.0); x2 is pure noise.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let a = (i % 17) as f64 / 17.0;
            let b = (i % 23) as f64 / 23.0;
            let noise = ((i * 7919) % 13) as f64;
            xs.push(vec![a, b, noise]);
            ys.push(a + b > 1.0);
        }
        Dataset::new(xs, ys).unwrap()
    }

    #[test]
    fn forest_beats_chance_and_finds_signal() {
        let data = threshold_data(400);
        let forest = RandomForest::fit(&data, &ForestConfig::default(), 7);
        assert!(forest.accuracy(&data) > 0.9);
        let imp = forest.feature_importance();
        assert!(imp[0] + imp[1] > 0.8, "importance: {imp:?}");
        assert!(imp[2] < 0.2);
    }

    #[test]
    fn importance_sums_to_one() {
        let data = threshold_data(200);
        let forest = RandomForest::fit(&data, &ForestConfig::default(), 9);
        let s: f64 = forest.feature_importance().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = threshold_data(150);
        let a = RandomForest::fit(&data, &ForestConfig::default(), 3);
        let b = RandomForest::fit(&data, &ForestConfig::default(), 3);
        assert_eq!(a.feature_importance(), b.feature_importance());
        let c = RandomForest::fit(&data, &ForestConfig::default(), 4);
        // Different seed almost surely differs somewhere.
        assert_ne!(a.feature_importance(), c.feature_importance());
    }

    #[test]
    fn probabilities_bounded() {
        let data = threshold_data(100);
        let forest = RandomForest::fit(&data, &ForestConfig::default(), 5);
        for i in 0..data.len() {
            let p = forest.predict_proba(data.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn constant_labels_give_zero_importance() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, -(i as f64)]).collect();
        let ys = vec![true; 50];
        let data = Dataset::new(xs, ys).unwrap();
        let forest = RandomForest::fit(&data, &ForestConfig::default(), 11);
        assert!(forest.feature_importance().iter().all(|&v| v == 0.0));
        assert!(forest.predict(&[1.0, 2.0]));
    }
}
