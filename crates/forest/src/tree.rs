//! CART decision trees with Gini impurity.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A binary decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    /// Impurity decrease credited to each feature while fitting, weighted
    /// by the number of samples the split saw.
    importance: Vec<f64>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prob_true: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Tree growth parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum rows required to attempt a split.
    pub min_split: usize,
    /// Features sampled per split (√F when `None`).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            max_depth: 10,
            min_split: 4,
            max_features: None,
        }
    }
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fit a tree on the rows of `data` selected by `indices`.
    pub fn fit(
        data: &Dataset,
        indices: &[usize],
        cfg: &TreeConfig,
        rng: &mut StdRng,
    ) -> DecisionTree {
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            importance: vec![0.0; data.num_features()],
        };
        tree.grow(data, indices.to_vec(), cfg, rng, 0);
        tree
    }

    fn grow(
        &mut self,
        data: &Dataset,
        indices: Vec<usize>,
        cfg: &TreeConfig,
        rng: &mut StdRng,
        depth: usize,
    ) -> usize {
        let total = indices.len();
        let pos = indices.iter().filter(|&&i| data.label(i)).count();
        let node_gini = gini(pos, total);

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                prob_true: if total == 0 {
                    0.5
                } else {
                    pos as f64 / total as f64
                },
            });
            nodes.len() - 1
        };

        if depth >= cfg.max_depth || total < cfg.min_split || pos == 0 || pos == total {
            return make_leaf(&mut self.nodes);
        }

        // Sample candidate features.
        let f_total = data.num_features();
        let k = cfg
            .max_features
            .unwrap_or_else(|| (f_total as f64).sqrt().ceil() as usize)
            .clamp(1, f_total);
        let mut feats: Vec<usize> = (0..f_total).collect();
        feats.shuffle(rng);
        feats.truncate(k);

        // Best split among candidates.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
        for &fi in &feats {
            let mut vals: Vec<f64> = indices.iter().map(|&i| data.row(i)[fi]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // Try a handful of candidate thresholds (midpoints).
            let n_thresh = vals.len().min(8);
            for t in 0..n_thresh {
                let idx = (t * (vals.len() - 1)) / n_thresh;
                let threshold = (vals[idx] + vals[(idx + 1).min(vals.len() - 1)]) / 2.0;
                let (mut lp, mut lt, mut rp, mut rt) = (0usize, 0usize, 0usize, 0usize);
                for &i in &indices {
                    if data.row(i)[fi] <= threshold {
                        lt += 1;
                        lp += data.label(i) as usize;
                    } else {
                        rt += 1;
                        rp += data.label(i) as usize;
                    }
                }
                if lt == 0 || rt == 0 {
                    continue;
                }
                let w = (lt as f64 * gini(lp, lt) + rt as f64 * gini(rp, rt)) / total as f64;
                if best.map(|(_, _, bw)| w < bw).unwrap_or(true) {
                    best = Some((fi, threshold, w));
                }
            }
        }

        let Some((feature, threshold, w_gini)) = best else {
            return make_leaf(&mut self.nodes);
        };
        // Zero-decrease splits are allowed (XOR-style interactions only pay
        // off a level deeper, exactly like sklearn's CART); only genuine
        // impurity decreases earn importance.
        let decrease = node_gini - w_gini;
        if decrease < -1e-12 {
            return make_leaf(&mut self.nodes);
        }
        if decrease > 0.0 {
            self.importance[feature] += decrease * total as f64;
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| data.row(i)[feature] <= threshold);

        // Reserve the split node, then grow children.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { prob_true: 0.0 }); // placeholder
        let left = self.grow(data, left_idx, cfg, rng, depth + 1);
        let right = self.grow(data, right_idx, cfg, rng, depth + 1);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Probability the label is true for `row`.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        // The root is the node grown first... which is the last completed;
        // we track it implicitly: the root is node index 0 when the tree is
        // a leaf, otherwise the placeholder pushed first. Both cases: 0 is
        // only correct for leaves. The grow order pushes the root placeholder
        // first for splits, so index 0 is always the root.
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { prob_true } => return *prob_true,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Hard prediction at 0.5.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Raw (unnormalized) per-feature importance.
    pub fn raw_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }
}

/// Draw a bootstrap sample of `n` indices.
pub fn bootstrap(n: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn xor_data() -> Dataset {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..25 {
                    xs.push(vec![a as f64, b as f64, 0.5]);
                    ys.push((a ^ b) == 1);
                }
            }
        }
        Dataset::new(xs, ys).unwrap()
    }

    #[test]
    fn learns_xor() {
        let data = xor_data();
        let mut rng = StdRng::seed_from_u64(1);
        let idx: Vec<usize> = (0..data.len()).collect();
        let cfg = TreeConfig {
            max_features: Some(3),
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&data, &idx, &cfg, &mut rng);
        assert!(tree.predict(&[0.0, 1.0, 0.5]));
        assert!(tree.predict(&[1.0, 0.0, 0.5]));
        assert!(!tree.predict(&[0.0, 0.0, 0.5]));
        assert!(!tree.predict(&[1.0, 1.0, 0.5]));
    }

    #[test]
    fn importance_ignores_constant_noise_feature() {
        let data = xor_data();
        let mut rng = StdRng::seed_from_u64(2);
        let idx: Vec<usize> = (0..data.len()).collect();
        let cfg = TreeConfig {
            max_features: Some(3),
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&data, &idx, &cfg, &mut rng);
        let imp = tree.raw_importance();
        // The XOR root split earns no credit (zero decrease); the level
        // below credits whichever feature completes the interaction.
        assert!(imp[0] + imp[1] > 0.0);
        assert_eq!(imp[2], 0.0);
    }

    #[test]
    fn pure_node_is_leaf() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![true, true]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let tree = DecisionTree::fit(&data, &[0, 1], &TreeConfig::default(), &mut rng);
        assert_eq!(tree.size(), 1);
        assert!(tree.predict(&[5.0]));
    }

    #[test]
    fn depth_limit_respected() {
        let data = xor_data();
        let mut rng = StdRng::seed_from_u64(4);
        let idx: Vec<usize> = (0..data.len()).collect();
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&data, &idx, &cfg, &mut rng);
        assert_eq!(tree.size(), 1);
    }

    #[test]
    fn bootstrap_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = bootstrap(10, &mut rng);
        assert_eq!(b.len(), 10);
        assert!(b.iter().all(|&i| i < 10));
    }
}
