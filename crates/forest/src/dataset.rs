//! Training data for the forests.

use std::fmt;

/// A binary-classification dataset: feature rows and boolean labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    xs: Vec<Vec<f64>>,
    ys: Vec<bool>,
    num_features: usize,
}

/// Dataset construction failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// No rows.
    Empty,
    /// Rows and labels have different lengths.
    LengthMismatch,
    /// A row has a different number of features than the first row.
    RaggedRows,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "dataset has no rows"),
            DatasetError::LengthMismatch => write!(f, "rows and labels differ in length"),
            DatasetError::RaggedRows => write!(f, "rows have inconsistent feature counts"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Build a dataset.
    ///
    /// # Errors
    ///
    /// Fails on empty input, row/label length mismatch, or ragged rows.
    pub fn new(xs: Vec<Vec<f64>>, ys: Vec<bool>) -> Result<Dataset, DatasetError> {
        if xs.is_empty() {
            return Err(DatasetError::Empty);
        }
        if xs.len() != ys.len() {
            return Err(DatasetError::LengthMismatch);
        }
        let num_features = xs[0].len();
        if xs.iter().any(|r| r.len() != num_features) {
            return Err(DatasetError::RaggedRows);
        }
        Ok(Dataset {
            xs,
            ys,
            num_features,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if there are no rows (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Number of features per row.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Feature row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.xs[i]
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> bool {
        self.ys[i]
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        self.ys.iter().filter(|&&y| y).count() as f64 / self.ys.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_errors() {
        assert!(matches!(
            Dataset::new(vec![], vec![]),
            Err(DatasetError::Empty)
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![]),
            Err(DatasetError::LengthMismatch)
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]),
            Err(DatasetError::RaggedRows)
        ));
    }

    #[test]
    fn accessors() {
        let d = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![true, false]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert!(d.label(0));
        assert_eq!(d.positive_rate(), 0.5);
        assert!(!d.is_empty());
    }
}
