//! Random forests with Gini feature importance (§4 of the paper).
//!
//! The paper trains, for each optimization pass, two random forests that
//! predict whether applying the pass improves circuit performance — one
//! from program features (Table 2), one from the histogram of previously
//! applied passes. The forests' Gini importances produce the Figure 5 and
//! Figure 6 heat maps, and the high-importance subsets define the
//! `filtered` feature/pass spaces used in §6.2.
//!
//! [`tree`] implements CART decision trees; [`ensemble`] bags them into a
//! forest and aggregates mean-decrease-in-impurity feature importance.
//!
//! # Example
//!
//! ```
//! use autophase_forest::{Dataset, RandomForest, ForestConfig};
//!
//! // y = x0 > 0.5, with x1 as noise.
//! let xs: Vec<Vec<f64>> = (0..200)
//!     .map(|i| vec![(i % 100) as f64 / 100.0, (i % 7) as f64])
//!     .collect();
//! let ys: Vec<bool> = xs.iter().map(|x| x[0] > 0.5).collect();
//! let data = Dataset::new(xs, ys)?;
//! let forest = RandomForest::fit(&data, &ForestConfig::default(), 42);
//! let imp = forest.feature_importance();
//! assert!(imp[0] > imp[1]);
//! # Ok::<(), autophase_forest::DatasetError>(())
//! ```
#![warn(missing_docs)]

pub mod dataset;
pub mod ensemble;
pub mod tree;

pub use dataset::{Dataset, DatasetError};
pub use ensemble::{ForestConfig, RandomForest};
pub use tree::DecisionTree;
