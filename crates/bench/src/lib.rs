//! Shared helpers for the benchmark/experiment binaries.
//!
//! Each paper table/figure has a binary target:
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `table1` | Table 1 (pass list) |
//! | `table2` | Table 2 (feature list) |
//! | `table3` | Table 3 (algorithm spaces) |
//! | `fig5` | Figure 5 (feature-importance heat map) |
//! | `fig6` | Figure 6 (pass-history-importance heat map) |
//! | `fig7` | Figure 7 (per-program speedups + samples) |
//! | `fig8` | Figure 8 (learning curves) |
//! | `fig9` | Figure 9 (generalization) |
//! | `generalize_random` | §6.2's random-program generalization number |
//! | `rollout_bench` | rollout throughput: serial/uncached vs. parallel/cached |
//!
//! Run with `--scale small|medium|paper` (default `small`); `paper`
//! approaches the paper's sample counts and takes correspondingly long.
//!
//! Every binary also takes `--telemetry off|summary|jsonl|prom`
//! (default `off`, except `rollout_bench` which defaults to `summary`).
//! Any enabled mode records spans/counters/histograms across the whole
//! stack and writes a machine-readable event log to
//! `results/<bin>_telemetry.jsonl` at exit; `summary` additionally
//! prints the human table, `prom` a Prometheus text dump to
//! `results/<bin>_telemetry.prom`.

use autophase_telemetry as telemetry;

/// Experiment scale from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke run.
    Small,
    /// Minutes-scale run with meaningful statistics.
    Medium,
    /// Corpus-scale run (≥10k programs) that stays short of the paper's
    /// full sample counts; the corpus bench's acceptance scale.
    Large,
    /// Hours-scale run approaching the paper's sample counts.
    Paper,
}

impl Scale {
    /// Parse `--scale <s>` from argv (defaults to `Small`).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" {
                return match w[1].as_str() {
                    "paper" => Scale::Paper,
                    "large" => Scale::Large,
                    "medium" => Scale::Medium,
                    _ => Scale::Small,
                };
            }
        }
        Scale::Small
    }

    /// Scale-dependent pick. Binaries predating the `large` tier treat
    /// it as `medium` (their workloads have no corpus-scale knob).
    pub fn pick<T>(self, small: T, medium: T, paper: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Medium | Scale::Large => medium,
            Scale::Paper => paper,
        }
    }

    /// Four-tier pick for binaries with a distinct corpus-scale setting.
    pub fn pick4<T>(self, small: T, medium: T, large: T, paper: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Medium => medium,
            Scale::Large => large,
            Scale::Paper => paper,
        }
    }
}

/// How a benchmark binary reports telemetry, from `--telemetry <mode>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Telemetry disabled: the instrumented call sites pay one relaxed
    /// atomic load each and record nothing.
    Off,
    /// Record and print the end-of-run human summary table.
    Summary,
    /// Record and write only the JSONL event log.
    Jsonl,
    /// Record and additionally write a Prometheus text dump.
    Prom,
}

impl TelemetryMode {
    /// Parse `--telemetry <mode>` from argv, with a per-binary default.
    pub fn from_args_or(default: TelemetryMode) -> TelemetryMode {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--telemetry" {
                return match w[1].as_str() {
                    "summary" => TelemetryMode::Summary,
                    "jsonl" => TelemetryMode::Jsonl,
                    "prom" => TelemetryMode::Prom,
                    _ => TelemetryMode::Off,
                };
            }
        }
        default
    }

    /// Parse `--telemetry <mode>` from argv (defaults to `Off`).
    pub fn from_args() -> TelemetryMode {
        TelemetryMode::from_args_or(TelemetryMode::Off)
    }

    /// True unless the mode is [`TelemetryMode::Off`].
    pub fn is_on(self) -> bool {
        self != TelemetryMode::Off
    }
}

/// Turn telemetry on (or leave it off) according to `mode`. Call at the
/// top of a benchmark binary's `main`.
pub fn telemetry_init(mode: TelemetryMode) {
    if mode.is_on() {
        telemetry::enable();
    }
}

/// Flush telemetry at the end of a benchmark binary: always writes the
/// machine-readable event log `results/<bin>_telemetry.jsonl` (so every
/// binary that prints partial results also leaves structured data
/// behind), plus the mode's extra output — the human summary table on
/// stdout for [`TelemetryMode::Summary`], a Prometheus text dump at
/// `results/<bin>_telemetry.prom` for [`TelemetryMode::Prom`]. A no-op
/// for [`TelemetryMode::Off`].
pub fn telemetry_finish(bin: &str, mode: TelemetryMode) {
    if !mode.is_on() {
        return;
    }
    if let Some(p) = telemetry::write_artifact(
        "results",
        &format!("{bin}_telemetry.jsonl"),
        &telemetry::render_jsonl(),
    ) {
        eprintln!("telemetry: wrote {}", p.display());
    }
    match mode {
        TelemetryMode::Summary => print!("{}", telemetry::render_summary()),
        TelemetryMode::Prom => {
            if let Some(p) = telemetry::write_artifact(
                "results",
                &format!("{bin}_telemetry.prom"),
                &telemetry::render_prometheus(),
            ) {
                eprintln!("telemetry: wrote {}", p.display());
            }
        }
        TelemetryMode::Jsonl | TelemetryMode::Off => {}
    }
}

/// RAII wrapper for the `--telemetry` lifecycle every benchmark binary
/// shares: parse the flag, enable recording, and flush the artifacts when
/// the session ends (explicitly via [`TelemetrySession::finish`] or on
/// drop, so early returns still leave the event log behind).
///
/// ```no_run
/// let session = autophase_bench::TelemetrySession::start("mybench");
/// // ... run the experiment ...
/// session.finish();
/// ```
#[must_use = "dropping the session immediately would flush telemetry before the run"]
pub struct TelemetrySession {
    bin: &'static str,
    mode: TelemetryMode,
    finished: bool,
}

impl TelemetrySession {
    /// Parse `--telemetry` (default `off`) and start recording.
    pub fn start(bin: &'static str) -> TelemetrySession {
        TelemetrySession::start_with_default(bin, TelemetryMode::Off)
    }

    /// Parse `--telemetry` with a per-binary default and start recording.
    pub fn start_with_default(bin: &'static str, default: TelemetryMode) -> TelemetrySession {
        let mode = TelemetryMode::from_args_or(default);
        telemetry_init(mode);
        TelemetrySession {
            bin,
            mode,
            finished: false,
        }
    }

    /// The parsed mode, for binaries that branch on it.
    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// Flush artifacts now (idempotent; drop would do the same).
    pub fn finish(mut self) {
        self.flush();
    }

    fn flush(&mut self) {
        if !self.finished {
            self.finished = true;
            telemetry_finish(self.bin, self.mode);
        }
    }
}

impl Drop for TelemetrySession {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The benchmark suite as `(name, module)` pairs for the experiment APIs.
pub fn named_suite() -> Vec<(String, autophase_ir::Module)> {
    autophase_benchmarks::suite()
        .into_iter()
        .map(|b| (b.name.to_string(), b.module))
        .collect()
}

/// Render a live daemon's per-stage latency breakdown (the
/// `serve.stage_ns` histogram family from a parsed `STATS` reply) as a
/// JSON object body — one key per stage with count, p50/p95/p99, and
/// mean in nanoseconds. Serve-facing benches embed this in their
/// `BENCH_*.json` so latency regressions can be attributed to a stage
/// (queue wait vs inference vs profiling), not just observed end to end.
pub fn stage_breakdown_json(stats: &autophase_serve::StatsSnapshot) -> String {
    let stages = stats.hist_family("serve.stage_ns");
    let entries: Vec<String> = stages
        .iter()
        .map(|(label, h)| {
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            format!(
                "\"{label}\": {{ \"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {mean} }}",
                h.count, h.p50, h.p95, h.p99
            )
        })
        .collect();
    format!("{{ {} }}", entries.join(", "))
}
