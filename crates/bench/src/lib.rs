//! Shared helpers for the benchmark/experiment binaries.
//!
//! Each paper table/figure has a binary target:
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `table1` | Table 1 (pass list) |
//! | `table2` | Table 2 (feature list) |
//! | `table3` | Table 3 (algorithm spaces) |
//! | `fig5` | Figure 5 (feature-importance heat map) |
//! | `fig6` | Figure 6 (pass-history-importance heat map) |
//! | `fig7` | Figure 7 (per-program speedups + samples) |
//! | `fig8` | Figure 8 (learning curves) |
//! | `fig9` | Figure 9 (generalization) |
//! | `generalize_random` | §6.2's random-program generalization number |
//! | `rollout_bench` | rollout throughput: serial/uncached vs. parallel/cached |
//!
//! Run with `--scale small|medium|paper` (default `small`); `paper`
//! approaches the paper's sample counts and takes correspondingly long.

/// Experiment scale from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke run.
    Small,
    /// Minutes-scale run with meaningful statistics.
    Medium,
    /// Hours-scale run approaching the paper's sample counts.
    Paper,
}

impl Scale {
    /// Parse `--scale <s>` from argv (defaults to `Small`).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" {
                return match w[1].as_str() {
                    "paper" => Scale::Paper,
                    "medium" => Scale::Medium,
                    _ => Scale::Small,
                };
            }
        }
        Scale::Small
    }

    /// Scale-dependent pick.
    pub fn pick<T>(self, small: T, medium: T, paper: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Medium => medium,
            Scale::Paper => paper,
        }
    }
}

/// The benchmark suite as `(name, module)` pairs for the experiment APIs.
pub fn named_suite() -> Vec<(String, autophase_ir::Module)> {
    autophase_benchmarks::suite()
        .into_iter()
        .map(|b| (b.name.to_string(), b.module))
        .collect()
}
