//! Figure 9: generalization — train on random programs, test on the nine
//! benchmarks with a single compilation each.
use autophase_bench::{named_suite, Scale, TelemetrySession};
use autophase_progen::{program_batch, GenConfig};

fn main() {
    let telemetry = TelemetrySession::start("fig9");
    let scale = Scale::from_args();
    let (n_train, iters, search_budget) = scale.pick((4, 4, 120), (12, 40, 300), (100, 160, 4000));
    let train = program_batch(&GenConfig::default(), 42, n_train);
    let results = autophase_core::experiment::fig9(&train, &named_suite(), iters, search_budget, 9);
    print!("{}", autophase_core::report::fig9_table(&results));
    telemetry.finish();
}
