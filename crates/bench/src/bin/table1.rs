//! Regenerates Table 1 (the 45 transform passes + -terminate).
fn main() {
    print!("{}", autophase_core::report::table1());
}
