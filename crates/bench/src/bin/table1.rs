//! Regenerates Table 1 (the 45 transform passes + -terminate).
use autophase_bench::{telemetry_finish, telemetry_init, TelemetryMode};

fn main() {
    let tmode = TelemetryMode::from_args();
    telemetry_init(tmode);
    print!("{}", autophase_core::report::table1());
    telemetry_finish("table1", tmode);
}
