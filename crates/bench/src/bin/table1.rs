//! Regenerates Table 1 (the 45 transform passes + -terminate).
use autophase_bench::TelemetrySession;

fn main() {
    let telemetry = TelemetrySession::start("table1");
    print!("{}", autophase_core::report::table1());
    telemetry.finish();
}
