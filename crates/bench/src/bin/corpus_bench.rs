//! Corpus-scale generalization harness (ROADMAP item 5).
//!
//! The paper's §6.2 claim is that a policy trained on random programs
//! generalizes to ~13k unseen ones with a single compilation each. This
//! bench measures that claim against *our* stack end to end:
//!
//! 1. **Corpus** — build a deduped progen corpus
//!    (200 / 2k / 10k / 12,874 programs at `--scale
//!    small|medium|large|paper`), write its `CORPUS1` manifest, parse it
//!    back, and spot-check that manifest records regenerate
//!    bit-identically.
//! 2. **Cold replay** — every corpus program through a live serve
//!    daemon with an empty store: per-program improvement-over-O3,
//!    the 1-compilation generalization rate (fraction of unseen programs
//!    where the served ordering matches or beats `-O3` — the Fig. 9
//!    protocol), p50/p99 latency, zero drops.
//! 3. **Warm replay** — the same corpus again: every answer must come
//!    from the store (this is the first APSTORE1 run at ~10k distinct
//!    fingerprints), reported as req/s plus store growth (entries,
//!    log bytes, reopen time).
//! 4. **Feature ablation** — train one policy on Table-2 features and
//!    one on Table-2 + structural (CFG/loop/dominator shape) features,
//!    same training programs and seeds, and compare held-out unseen
//!    improvement: does structure shrink the unseen-program gap
//!    (DAPO-style)? Restrict to one arm with `--features
//!    table2|structural`.
//!
//! `--smoke` runs phases 1–2 only on a 200-program corpus and skips the
//! JSON artifact (the `make corpus-smoke` CI gate). Full runs write
//! `BENCH_corpus.json`.
//!
//! Usage: `cargo run --release -p autophase-bench --bin corpus_bench
//! [-- --scale small|medium|large|paper] [--features table2|structural]
//! [--smoke] [--telemetry summary|jsonl|prom|off]`.

use autophase_bench::{Scale, TelemetrySession};
use autophase_core::env::{o3_cycles, EnvConfig, FeatureNorm};
use autophase_core::experiment::{infer_sequence, GENERALIZATION_EPISODE_LEN};
use autophase_core::{ObservationKind, PhaseOrderEnv, RewardKind};
use autophase_corpus::{
    build_corpus, parse_manifest, regenerate_entry, write_manifest, Corpus, CorpusConfig,
};
use autophase_features::FeatureSet;
use autophase_hls::HlsConfig;
use autophase_ir::printer::print_module;
use autophase_ir::Module;
use autophase_rl::checkpoint::PolicyCheckpoint;
use autophase_rl::env::Environment;
use autophase_rl::ppo::{PpoAgent, PpoConfig};
use autophase_serve::client::Client;
use autophase_serve::engine::{serve_env, serve_num_actions, serve_obs_dim};
use autophase_serve::protocol::Source;
use autophase_serve::server::{Server, ServerConfig};
use autophase_serve::store::BestStore;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SEED: u64 = 20;
const DEADLINE_MS: u64 = 60_000;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "autophase_corpus_bench_{}_{name}",
        std::process::id()
    ))
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Parse `--features <set>` or `--features=<set>`; `None` = both arms.
fn features_arg() -> Option<FeatureSet> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--features=") {
            return FeatureSet::parse(v);
        }
        if a == "--features" {
            return args.get(i + 1).and_then(|v| FeatureSet::parse(v));
        }
    }
    None
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

fn connect(addr: SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect to daemon");
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("set read timeout");
    client
}

/// Phase 1: build, manifest, verify regenerability.
fn build_and_verify_corpus(target: usize, workers: usize) -> (Corpus, usize, f64) {
    eprintln!("corpus_bench: building {target}-program deduped corpus ({workers} workers)");
    let t0 = Instant::now();
    let corpus = build_corpus(&CorpusConfig {
        target,
        workers,
        ..CorpusConfig::default()
    });
    let build_secs = t0.elapsed().as_secs_f64();
    assert_eq!(corpus.programs.len(), target, "dedup fell short of target");
    eprintln!(
        "corpus_bench: {} distinct / {} generated in {build_secs:.1}s",
        corpus.programs.len(),
        corpus.generated
    );

    // Manifest round trip + regeneration spot check: a stratified sample
    // (first, last, and strides between) must regenerate bit-identically.
    let text = write_manifest(&corpus);
    let manifest = parse_manifest(&text).expect("manifest parses back");
    assert_eq!(manifest.entries.len(), target);
    let stride = (target / 10).max(1);
    let mut checked = 0usize;
    for entry in manifest.entries.iter().step_by(stride) {
        let module = regenerate_entry(&manifest.gen, entry).expect("manifest entry regenerates");
        let original = &corpus.programs[checked * stride];
        assert_eq!(
            print_module(&module),
            print_module(&original.module),
            "regenerated program differs from the built one"
        );
        checked += 1;
    }
    eprintln!(
        "corpus_bench: manifest {} bytes, {checked} entries regenerated bit-identically",
        text.len()
    );
    (corpus, text.len(), build_secs)
}

struct ReplayStats {
    p50_ms: f64,
    p99_ms: f64,
    reqs_per_sec: f64,
    mean_improvement_over_o3: f64,
    one_compilation_rate: f64,
    store_misses: usize,
}

/// Replay the corpus through the daemon. `expect_cold` asserts every
/// reply runs the policy path (empty store); otherwise every reply must
/// be a store hit.
fn replay(
    addr: SocketAddr,
    programs: &[(String, u64)],
    expect_cold: bool,
    o3: &[u64],
) -> ReplayStats {
    let mut client = connect(addr);
    let mut latencies = Vec::with_capacity(programs.len());
    let mut store_misses = 0usize;
    let mut improvements = Vec::with_capacity(programs.len());
    let mut beat_or_matched = 0usize;
    let t0 = Instant::now();
    for (i, (ir, _fp)) in programs.iter().enumerate() {
        let t = Instant::now();
        let reply = client
            .compile(ir, Some(DEADLINE_MS), false)
            .unwrap_or_else(|e| panic!("request {i} dropped: {e}"));
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
        if expect_cold {
            assert_eq!(reply.source, Source::Policy, "request {i}: store not cold");
        } else if reply.source != Source::Store {
            store_misses += 1;
        }
        let o3c = o3[i];
        improvements.push((o3c as f64 - reply.cycles as f64) / o3c.max(1) as f64);
        if reply.cycles <= o3c {
            beat_or_matched += 1;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ReplayStats {
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        reqs_per_sec: programs.len() as f64 / secs,
        mean_improvement_over_o3: improvements.iter().sum::<f64>() / improvements.len() as f64,
        one_compilation_rate: beat_or_matched as f64 / programs.len() as f64,
        store_misses,
    }
}

struct AblationArm {
    set: FeatureSet,
    obs_dim: usize,
    mean_improvement: f64,
    one_compilation_rate: f64,
    train_secs: f64,
}

/// Train a generalist on `train` with the given feature set, infer one
/// compilation per held-out program (Fig. 9 protocol), score vs `-O3`.
fn ablation_arm(
    set: FeatureSet,
    train: &[Module],
    test: &[Module],
    test_o3: &[u64],
    iterations: usize,
) -> AblationArm {
    let env_cfg = EnvConfig {
        observation: ObservationKind::Combined,
        feature_norm: FeatureNorm::InstCount,
        reward: RewardKind::Log,
        episode_len: GENERALIZATION_EPISODE_LEN,
        filtered_features: true,
        filtered_passes: true,
        feature_set: set,
        ..EnvConfig::default()
    };
    let mut env = PhaseOrderEnv::new(train.to_vec(), env_cfg.clone());
    let obs_dim = env.observation_dim();
    let mut agent = PpoAgent::new(obs_dim, env.num_actions(), &PpoConfig::small(), SEED);
    eprintln!(
        "corpus_bench: ablation arm {} (obs dim {obs_dim}), {iterations} iterations",
        set.name()
    );
    let t0 = Instant::now();
    agent.train(&mut env, iterations);
    let train_secs = t0.elapsed().as_secs_f64();

    let mut improvements = Vec::with_capacity(test.len());
    let mut beat_or_matched = 0usize;
    for (p, &o3c) in test.iter().zip(test_o3) {
        let (_, cycles) = infer_sequence(&agent, &env_cfg, p);
        improvements.push((o3c as f64 - cycles as f64) / o3c.max(1) as f64);
        if cycles <= o3c {
            beat_or_matched += 1;
        }
    }
    AblationArm {
        set,
        obs_dim,
        mean_improvement: improvements.iter().sum::<f64>() / improvements.len() as f64,
        one_compilation_rate: beat_or_matched as f64 / test.len() as f64,
        train_secs,
    }
}

fn main() {
    let telemetry = TelemetrySession::start("corpus_bench");
    let scale = Scale::from_args();
    let smoke = has_flag("--smoke");
    let only_features = features_arg();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // ---- Phase 1: corpus + manifest.
    let target = if smoke {
        200
    } else {
        scale.pick4(200, 2_000, 10_000, 12_874)
    };
    let (corpus, manifest_bytes, build_secs) = build_and_verify_corpus(target, workers);
    let hls = HlsConfig::default();

    // Client-side -O3 baseline per program (the bench judges the daemon;
    // the daemon must not judge itself).
    eprintln!("corpus_bench: computing -O3 baselines for {target} programs");
    let o3: Vec<u64> = corpus
        .programs
        .iter()
        .map(|p| o3_cycles(&p.module, &hls))
        .collect();
    let wire: Vec<(String, u64)> = corpus
        .programs
        .iter()
        .map(|p| (print_module(&p.module), p.fingerprint))
        .collect();

    // ---- Train the serving policy on a small corpus slice, checkpoint,
    // reload (same path the production daemon would take).
    let train_slice: Vec<Module> = corpus
        .programs
        .iter()
        .take(8)
        .map(|p| p.module.clone())
        .collect();
    let serve_train_iters = scale.pick4(300, 400, 600, 800);
    eprintln!("corpus_bench: training serve policy for {serve_train_iters} iterations");
    let mut env = serve_env(train_slice.clone());
    let mut agent = PpoAgent::new(
        serve_obs_dim(),
        serve_num_actions(),
        &PpoConfig::small(),
        SEED,
    );
    agent.train(&mut env, serve_train_iters);
    let ckpt_path = tmp_path("policy.ckpt");
    PolicyCheckpoint::from_ppo(&agent)
        .save(&ckpt_path)
        .expect("save checkpoint");
    let policy = PolicyCheckpoint::load(&ckpt_path)
        .expect("reload checkpoint")
        .policy;

    // ---- Phase 2: store-cold replay.
    let store_path = tmp_path("store.log");
    let _ = std::fs::remove_file(&store_path);
    let server = Server::start(
        policy,
        ServerConfig {
            store_path: store_path.clone(),
            workers: workers.max(2),
            queue_cap: 256,
            ..ServerConfig::default()
        },
    )
    .expect("daemon starts");
    let addr = server.addr();

    eprintln!("corpus_bench: cold replay of {target} programs (store empty)");
    let cold = replay(addr, &wire, true, &o3);
    assert_eq!(
        server.store_len(),
        target,
        "every cold program must land in the store"
    );
    eprintln!(
        "corpus_bench: cold p50 {:.2} ms p99 {:.2} ms, {:.1} req/s, \
         improvement-over-O3 {:.4}, 1-compilation rate {:.3}",
        cold.p50_ms,
        cold.p99_ms,
        cold.reqs_per_sec,
        cold.mean_improvement_over_o3,
        cold.one_compilation_rate
    );

    if smoke {
        server.shutdown();
        let _ = std::fs::remove_file(&store_path);
        let _ = std::fs::remove_file(&ckpt_path);
        println!(
            "corpus-smoke OK: {target} programs built+verified, cold replay p99 {:.2} ms, 0 dropped",
            cold.p99_ms
        );
        telemetry.finish();
        return;
    }

    // ---- Phase 3: store-warm replay + store growth.
    eprintln!("corpus_bench: warm replay of {target} programs (store hot)");
    let warm = replay(addr, &wire, false, &o3);
    assert_eq!(warm.store_misses, 0, "warm replay missed the store");
    // Per-stage latency breakdown over the daemon's whole life (cold +
    // warm replays), straight off the STATS verb.
    let stage_ns =
        autophase_bench::stage_breakdown_json(&connect(addr).stats().expect("daemon stats"));
    let store_entries = server.store_len();
    server.shutdown();
    let store_bytes = std::fs::metadata(&store_path).map(|m| m.len()).unwrap_or(0);
    let t0 = Instant::now();
    let reopened = BestStore::open(&store_path).expect("store reopens");
    let reopen_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(reopened.len(), store_entries, "reopen lost entries");
    drop(reopened);
    eprintln!(
        "corpus_bench: warm {:.1} req/s p99 {:.2} ms; store {store_entries} entries, \
         {store_bytes} bytes, reopen {reopen_ms:.1} ms",
        warm.reqs_per_sec, warm.p99_ms
    );

    // ---- Phase 4: table2-vs-structural ablation on held-out programs.
    let ablation_train_n = scale.pick4(6, 12, 16, 24);
    let ablation_test_n = scale.pick4(24, 100, 200, 400);
    let ablation_iters = scale.pick4(150, 200, 300, 400);
    let ab_train: Vec<Module> = corpus
        .programs
        .iter()
        .take(ablation_train_n)
        .map(|p| p.module.clone())
        .collect();
    // Held-out slice from the far end of the corpus: never trained on.
    let ab_test: Vec<Module> = corpus
        .programs
        .iter()
        .rev()
        .take(ablation_test_n)
        .map(|p| p.module.clone())
        .collect();
    let ab_test_o3: Vec<u64> = o3.iter().rev().take(ablation_test_n).copied().collect();
    let arms: Vec<FeatureSet> = match only_features {
        Some(set) => vec![set],
        None => vec![FeatureSet::Table2, FeatureSet::Structural],
    };
    let results: Vec<AblationArm> = arms
        .into_iter()
        .map(|set| ablation_arm(set, &ab_train, &ab_test, &ab_test_o3, ablation_iters))
        .collect();
    for arm in &results {
        eprintln!(
            "corpus_bench: ablation {}: unseen improvement {:.4}, 1-compilation rate {:.3}",
            arm.set.name(),
            arm.mean_improvement,
            arm.one_compilation_rate
        );
    }

    let _ = std::fs::remove_file(&store_path);
    let _ = std::fs::remove_file(&ckpt_path);

    // ---- BENCH_corpus.json.
    let ablation_json: Vec<String> = results
        .iter()
        .map(|a| {
            format!(
                "{{ \"features\": \"{}\", \"obs_dim\": {}, \"train_secs\": {:.1}, \
                 \"unseen_mean_improvement_over_o3\": {:.6}, \"one_compilation_rate\": {:.4} }}",
                a.set.name(),
                a.obs_dim,
                a.train_secs,
                a.mean_improvement,
                a.one_compilation_rate
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"corpus_bench\",\n  \"scale\": \"{scale:?}\",\n  \
         \"corpus\": {{ \"programs\": {target}, \"generated\": {}, \"build_secs\": {build_secs:.1}, \
         \"manifest_bytes\": {manifest_bytes}, \"base_seed\": {} }},\n  \
         \"cold\": {{ \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \"reqs_per_sec\": {:.1}, \
         \"mean_improvement_over_o3\": {:.6}, \"one_compilation_rate\": {:.4}, \"dropped\": 0 }},\n  \
         \"warm\": {{ \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \"reqs_per_sec\": {:.1}, \
         \"store_misses\": {} }},\n  \
         \"stage_ns\": {stage_ns},\n  \
         \"store\": {{ \"entries\": {store_entries}, \"log_bytes\": {store_bytes}, \
         \"reopen_ms\": {reopen_ms:.1} }},\n  \
         \"ablation\": {{ \"train_programs\": {ablation_train_n}, \"test_programs\": {ablation_test_n}, \
         \"arms\": [{}] }}\n}}\n",
        corpus.generated,
        corpus.cfg.base_seed,
        cold.p50_ms,
        cold.p99_ms,
        cold.reqs_per_sec,
        cold.mean_improvement_over_o3,
        cold.one_compilation_rate,
        warm.p50_ms,
        warm.p99_ms,
        warm.reqs_per_sec,
        warm.store_misses,
        ablation_json.join(", ")
    );
    print!("{json}");
    match std::fs::write("BENCH_corpus.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_corpus.json"),
        Err(e) => eprintln!("could not write BENCH_corpus.json: {e}"),
    }
    telemetry.finish();
}
