//! Before/after benchmarks for the rollout engine's two big levers.
//!
//! **Incremental evaluation** (single worker): one environment collecting
//! serially over a medium multi-program corpus, with
//! `EnvConfig::incremental` off ("before": every step re-verifies,
//! re-extracts, and re-profiles the whole module) versus on ("after":
//! copy-on-write modules, pass-derived change sets, per-function
//! feature/schedule caches, and a content-addressed profile memo make a
//! step cost proportional to what the pass changed). The headline
//! speedup lands in `BENCH_incremental.json`, and `--min-speedup <x>`
//! turns the binary into a regression gate that fails below the floor.
//!
//! **Parallel collection + shared [`EvalCache`]**: the seed's serial
//! path versus a worker pool of environments sharing one cache, so any
//! `(program, pass-sequence)` state profiled once — by any worker, in
//! any round — is a table lookup ever after.
//!
//! In both comparisons the two paths collect the *same* episode indices
//! under the *same* seeds, and episode-indexed collection makes the
//! batches bit-identical (the binary asserts this every round), so the
//! comparison is pure throughput: identical work, measured in
//! environment steps per second.
//!
//! All statistics are recorded through the workspace telemetry layer and
//! rendered by its summary sink (`--telemetry summary`, the default for
//! this binary): per-pass timing, HLS profile costs, EvalCache hit rate,
//! worker utilization, and the headline steps/s gauges all come out of
//! one table, and a machine-readable copy lands in
//! `results/rollout_bench_telemetry.jsonl`.
//!
//! Usage: `cargo run --release -p autophase-bench --bin rollout_bench
//! [-- --scale small|medium|paper] [--telemetry summary|jsonl|prom|off]
//! [--min-speedup <x>]`.

use autophase_bench::{Scale, TelemetryMode, TelemetrySession};
use autophase_core::env::{EnvConfig, FeatureNorm, ObservationKind, PhaseOrderEnv, RewardKind};
use autophase_core::EvalCache;
use autophase_ir::Module;
use autophase_progen::{generate_valid, GenConfig};
use autophase_rl::env::Environment;
use autophase_rl::ppo::{PpoAgent, PpoConfig};
use autophase_rl::rollout::{self, Batch};
use autophase_telemetry as telemetry;
use std::sync::Arc;
use std::time::Instant;

const EPISODE_LEN: usize = 12;
const SEED: u64 = 8;

/// Parse `--min-speedup <x>` from argv (no floor when absent).
fn min_speedup_from_args() -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--min-speedup" {
            return w[1].parse().ok();
        }
    }
    None
}

/// The medium corpus for the incremental comparison: the suite's
/// multi-function programs plus generated many-helper ones, so change
/// sets routinely dirty one function out of many — the regime
/// incremental evaluation is built for. (The single-function suite
/// programs are covered by the parallel/EvalCache comparison below;
/// per-function caching is definitionally a no-op on them.)
fn incremental_corpus() -> Vec<(String, Module)> {
    let mut corpus: Vec<(String, Module)> = autophase_benchmarks::suite()
        .into_iter()
        .filter(|b| matches!(b.name, "adpcm" | "blowfish" | "dhrystone" | "sha"))
        .map(|b| (b.name.to_string(), b.module))
        .collect();
    let cfg = GenConfig {
        max_helpers: 8,
        max_stmts: 8,
        max_trip: 8,
        ..GenConfig::default()
    };
    for seed in [11u64, 94, 233, 1042, 4711] {
        corpus.push((format!("gen{seed}"), generate_valid(&cfg, seed)));
    }
    corpus
}

fn env_config() -> EnvConfig {
    EnvConfig {
        observation: ObservationKind::Combined,
        feature_norm: FeatureNorm::InstCount,
        reward: RewardKind::Log,
        episode_len: EPISODE_LEN,
        filtered_features: true,
        filtered_passes: true,
        ..EnvConfig::default()
    }
}

fn batches_equal(a: &Batch, b: &Batch) -> bool {
    a.episode_returns == b.episode_returns
        && a.transitions.len() == b.transitions.len()
        && a.transitions.iter().zip(&b.transitions).all(|(x, y)| {
            x.obs == y.obs
                && x.action == y.action
                && x.reward == y.reward
                && x.logp == y.logp
                && x.done == y.done
        })
}

fn main() {
    let telemetry = TelemetrySession::start_with_default("rollout_bench", TelemetryMode::Summary);
    let scale = Scale::from_args();
    let (warmup_iters, rounds, episodes_per_round) =
        scale.pick((16, 16, 24), (20, 16, 32), (40, 30, 96));

    let program = autophase_benchmarks::suite()
        .into_iter()
        .find(|b| b.name == "gsm")
        .expect("gsm benchmark present")
        .module;

    // Warm up a policy so the benchmark measures the steady state of
    // training, where the policy has sharpened and revisits good
    // sequences — exactly the regime the cache is built for.
    let mut warm_env = PhaseOrderEnv::single(program.clone(), env_config());
    let ppo = PpoConfig {
        hidden: vec![32, 32],
        horizon: 96,
        minibatch: 32,
        max_episode_len: EPISODE_LEN,
        ..PpoConfig::default()
    };
    let mut agent = PpoAgent::new(
        warm_env.observation_dim(),
        warm_env.num_actions(),
        &ppo,
        SEED,
    );
    eprintln!("warming up policy ({warmup_iters} serial PPO iterations on gsm)...");
    agent.train(&mut warm_env, warmup_iters);

    // ---- Incremental evaluation: full recompute vs. change-set driven ----
    // Single worker, serial collection, no shared EvalCache on either
    // side: the measured speedup is the incremental machinery's alone.
    let corpus = incremental_corpus();
    let corpus_names: Vec<&str> = corpus.iter().map(|(n, _)| n.as_str()).collect();
    let inc_rounds = scale.pick(6, 16, 32);
    let inc_eps = scale.pick(12, 24, 64);
    eprintln!(
        "incremental comparison: {inc_rounds} rounds x {inc_eps} episodes over {} programs...",
        corpus.len()
    );
    let run_serial = |env: &mut PhaseOrderEnv| -> (Vec<Batch>, f64, u64) {
        let t = Instant::now();
        let mut batches = Vec::with_capacity(inc_rounds);
        for r in 0..inc_rounds {
            batches.push(rollout::collect_episodes(
                env,
                &agent.policy,
                &agent.value,
                inc_eps,
                (r * inc_eps) as u64,
                EPISODE_LEN,
                rollout::episode_seed(0xFACE, r as u64),
            ));
        }
        (batches, t.elapsed().as_secs_f64(), env.samples())
    };
    let modules: Vec<Module> = corpus.iter().map(|(_, m)| m.clone()).collect();
    let mut full_env = PhaseOrderEnv::new(
        modules.clone(),
        EnvConfig {
            incremental: false,
            ..env_config()
        },
    );
    let (full_batches, full_secs, full_samples) = run_serial(&mut full_env);
    let mut inc_env = PhaseOrderEnv::new(modules, env_config());
    let (inc_batches, inc_secs, inc_samples) = run_serial(&mut inc_env);
    for (r, (a, b)) in full_batches.iter().zip(&inc_batches).enumerate() {
        assert!(
            batches_equal(a, b),
            "round {r}: incremental batch diverged from the full-recompute one"
        );
    }
    let inc_steps: usize = inc_batches.iter().map(|b| b.transitions.len()).sum();
    let full_sps = inc_steps as f64 / full_secs;
    let inc_sps = inc_steps as f64 / inc_secs;
    let inc_speedup = inc_sps / full_sps;
    telemetry::set_gauge("bench.incremental_full_steps_per_sec", "", full_sps);
    telemetry::set_gauge("bench.incremental_steps_per_sec", "", inc_sps);
    telemetry::set_gauge("bench.incremental_speedup", "", inc_speedup);
    println!(
        "incremental evaluation on {} programs ({inc_steps} env steps per path, 1 worker)",
        corpus.len()
    );
    println!(
        "  full recompute: {full_sps:.1} steps/s ({full_samples} profiler runs)  \
         incremental: {inc_sps:.1} steps/s ({inc_samples} profiler runs)  \
         speedup: {inc_speedup:.2}x"
    );
    println!("determinism: all {inc_rounds} incremental batches bit-identical to full ones");
    let json = format!(
        "{{\n  \"benchmark\": \"rollout_bench_incremental\",\n  \"corpus\": [{}],\n  \
         \"workers\": 1,\n  \"rounds\": {inc_rounds},\n  \"episodes_per_round\": {inc_eps},\n  \
         \"episode_len\": {EPISODE_LEN},\n  \"env_steps\": {inc_steps},\n  \
         \"full_recompute\": {{ \"secs\": {full_secs:.3}, \"steps_per_sec\": {full_sps:.1}, \
         \"profiler_runs\": {full_samples} }},\n  \
         \"incremental\": {{ \"secs\": {inc_secs:.3}, \"steps_per_sec\": {inc_sps:.1}, \
         \"profiler_runs\": {inc_samples} }},\n  \"speedup\": {inc_speedup:.2},\n  \
         \"bit_identical\": true\n}}\n",
        corpus_names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    match std::fs::write("BENCH_incremental.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_incremental.json"),
        Err(e) => eprintln!("could not write BENCH_incremental.json: {e}"),
    }

    let total_eps = rounds * episodes_per_round;
    let total_steps_hint = total_eps * EPISODE_LEN;
    eprintln!(
        "collecting {rounds} rounds x {episodes_per_round} episodes (<= {total_steps_hint} steps) per path..."
    );

    // Before: the seed path — serial collection, no cache.
    let mut serial_env = PhaseOrderEnv::single(program.clone(), env_config());
    let mut serial_batches = Vec::with_capacity(rounds);
    let t0 = telemetry::maybe_now();
    for r in 0..rounds {
        serial_batches.push(rollout::collect_episodes(
            &mut serial_env,
            &agent.policy,
            &agent.value,
            episodes_per_round,
            (r * episodes_per_round) as u64,
            EPISODE_LEN,
            rollout::episode_seed(0xBEEF, r as u64),
        ));
    }
    let serial_secs = t0.map(|t| t.elapsed().as_secs_f64());
    let steps: usize = serial_batches.iter().map(|b| b.transitions.len()).sum();

    // After: the worker pool, every environment sharing one cache.
    // One worker per core (the engine is bit-identical for any count, so
    // a single-core machine honestly runs one worker and the speedup is
    // the cache's alone).
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
    let cache = Arc::new(EvalCache::default());
    let mut envs: Vec<Box<dyn Environment + Send>> = (0..workers)
        .map(|_| {
            Box::new(PhaseOrderEnv::with_cache(
                vec![program.clone()],
                env_config(),
                Arc::clone(&cache),
            )) as Box<dyn Environment + Send>
        })
        .collect();
    let t1 = telemetry::maybe_now();
    for (r, reference) in serial_batches.iter().enumerate() {
        let batch = rollout::collect_episodes_parallel(
            &mut envs,
            &agent.policy,
            &agent.value,
            episodes_per_round,
            (r * episodes_per_round) as u64,
            EPISODE_LEN,
            rollout::episode_seed(0xBEEF, r as u64),
        );
        assert!(
            batches_equal(reference, &batch),
            "round {r}: parallel+cached batch diverged from the serial one"
        );
    }
    let cached_secs = t1.map(|t| t.elapsed().as_secs_f64());

    // Publish the headline gauges; the summary sink renders everything
    // (per-pass timing, HLS costs, cache hit rate, worker utilization,
    // and these steps/s numbers) in one table.
    telemetry::set_gauge("bench.env_steps", "", steps as f64);
    telemetry::set_gauge("bench.workers", "", workers as f64);
    if let (Some(s), Some(c)) = (serial_secs, cached_secs) {
        let serial_sps = steps as f64 / s;
        let cached_sps = steps as f64 / c;
        telemetry::set_gauge("bench.serial_steps_per_sec", "", serial_sps);
        telemetry::set_gauge("bench.cached_steps_per_sec", "", cached_sps);
        telemetry::set_gauge("bench.speedup", "", cached_sps / serial_sps);
    }
    cache.publish_telemetry();

    println!("rollout throughput on gsm ({steps} env steps per path, {workers} workers)");
    println!("determinism: all {rounds} parallel batches bit-identical to serial ones");
    telemetry.finish();

    if let Some(floor) = min_speedup_from_args() {
        if inc_speedup < floor {
            eprintln!("FAIL: incremental speedup {inc_speedup:.2}x is below the {floor}x floor");
            std::process::exit(1);
        }
        println!("incremental speedup {inc_speedup:.2}x meets the {floor}x floor");
    }
}
