//! Before/after benchmark for the parallel rollout engine and the
//! memoized evaluation cache.
//!
//! "Before" is the seed's collection path: one environment, serial
//! episode collection, every `cycles()` a fresh compile + profile.
//! "After" is the engine this PR adds: a worker pool of environments
//! sharing one [`EvalCache`], so any `(program, pass-sequence)` state
//! profiled once — by any worker, in any round — is a table lookup ever
//! after.
//!
//! Both paths collect the *same* episode indices under the *same* seeds,
//! and episode-indexed collection makes the batches bit-identical (the
//! binary asserts this every round), so the comparison is pure
//! throughput: identical work, measured in environment steps per second.
//!
//! All statistics are recorded through the workspace telemetry layer and
//! rendered by its summary sink (`--telemetry summary`, the default for
//! this binary): per-pass timing, HLS profile costs, EvalCache hit rate,
//! worker utilization, and the headline steps/s gauges all come out of
//! one table, and a machine-readable copy lands in
//! `results/rollout_bench_telemetry.jsonl`.
//!
//! Usage: `cargo run --release -p autophase-bench --bin rollout_bench
//! [-- --scale small|medium|paper] [--telemetry summary|jsonl|prom|off]`.

use autophase_bench::{telemetry_finish, telemetry_init, Scale, TelemetryMode};
use autophase_core::env::{EnvConfig, FeatureNorm, ObservationKind, PhaseOrderEnv, RewardKind};
use autophase_core::EvalCache;
use autophase_rl::env::Environment;
use autophase_rl::ppo::{PpoAgent, PpoConfig};
use autophase_rl::rollout::{self, Batch};
use autophase_telemetry as telemetry;
use std::sync::Arc;

const EPISODE_LEN: usize = 12;
const SEED: u64 = 8;

fn env_config() -> EnvConfig {
    EnvConfig {
        observation: ObservationKind::Combined,
        feature_norm: FeatureNorm::InstCount,
        reward: RewardKind::Log,
        episode_len: EPISODE_LEN,
        filtered_features: true,
        filtered_passes: true,
        ..EnvConfig::default()
    }
}

fn batches_equal(a: &Batch, b: &Batch) -> bool {
    a.episode_returns == b.episode_returns
        && a.transitions.len() == b.transitions.len()
        && a.transitions.iter().zip(&b.transitions).all(|(x, y)| {
            x.obs == y.obs
                && x.action == y.action
                && x.reward == y.reward
                && x.logp == y.logp
                && x.done == y.done
        })
}

fn main() {
    let tmode = TelemetryMode::from_args_or(TelemetryMode::Summary);
    telemetry_init(tmode);
    let scale = Scale::from_args();
    let (warmup_iters, rounds, episodes_per_round) =
        scale.pick((16, 16, 24), (20, 16, 32), (40, 30, 96));

    let program = autophase_benchmarks::suite()
        .into_iter()
        .find(|b| b.name == "gsm")
        .expect("gsm benchmark present")
        .module;

    // Warm up a policy so the benchmark measures the steady state of
    // training, where the policy has sharpened and revisits good
    // sequences — exactly the regime the cache is built for.
    let mut warm_env = PhaseOrderEnv::single(program.clone(), env_config());
    let ppo = PpoConfig {
        hidden: vec![32, 32],
        horizon: 96,
        minibatch: 32,
        max_episode_len: EPISODE_LEN,
        ..PpoConfig::default()
    };
    let mut agent = PpoAgent::new(
        warm_env.observation_dim(),
        warm_env.num_actions(),
        &ppo,
        SEED,
    );
    eprintln!("warming up policy ({warmup_iters} serial PPO iterations on gsm)...");
    agent.train(&mut warm_env, warmup_iters);

    let total_eps = rounds * episodes_per_round;
    let total_steps_hint = total_eps * EPISODE_LEN;
    eprintln!(
        "collecting {rounds} rounds x {episodes_per_round} episodes (<= {total_steps_hint} steps) per path..."
    );

    // Before: the seed path — serial collection, no cache.
    let mut serial_env = PhaseOrderEnv::single(program.clone(), env_config());
    let mut serial_batches = Vec::with_capacity(rounds);
    let t0 = telemetry::maybe_now();
    for r in 0..rounds {
        serial_batches.push(rollout::collect_episodes(
            &mut serial_env,
            &agent.policy,
            &agent.value,
            episodes_per_round,
            (r * episodes_per_round) as u64,
            EPISODE_LEN,
            rollout::episode_seed(0xBEEF, r as u64),
        ));
    }
    let serial_secs = t0.map(|t| t.elapsed().as_secs_f64());
    let steps: usize = serial_batches.iter().map(|b| b.transitions.len()).sum();

    // After: the worker pool, every environment sharing one cache.
    // One worker per core (the engine is bit-identical for any count, so
    // a single-core machine honestly runs one worker and the speedup is
    // the cache's alone).
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
    let cache = Arc::new(EvalCache::default());
    let mut envs: Vec<Box<dyn Environment + Send>> = (0..workers)
        .map(|_| {
            Box::new(PhaseOrderEnv::with_cache(
                vec![program.clone()],
                env_config(),
                Arc::clone(&cache),
            )) as Box<dyn Environment + Send>
        })
        .collect();
    let t1 = telemetry::maybe_now();
    for (r, reference) in serial_batches.iter().enumerate() {
        let batch = rollout::collect_episodes_parallel(
            &mut envs,
            &agent.policy,
            &agent.value,
            episodes_per_round,
            (r * episodes_per_round) as u64,
            EPISODE_LEN,
            rollout::episode_seed(0xBEEF, r as u64),
        );
        assert!(
            batches_equal(reference, &batch),
            "round {r}: parallel+cached batch diverged from the serial one"
        );
    }
    let cached_secs = t1.map(|t| t.elapsed().as_secs_f64());

    // Publish the headline gauges; the summary sink renders everything
    // (per-pass timing, HLS costs, cache hit rate, worker utilization,
    // and these steps/s numbers) in one table.
    telemetry::set_gauge("bench.env_steps", "", steps as f64);
    telemetry::set_gauge("bench.workers", "", workers as f64);
    if let (Some(s), Some(c)) = (serial_secs, cached_secs) {
        let serial_sps = steps as f64 / s;
        let cached_sps = steps as f64 / c;
        telemetry::set_gauge("bench.serial_steps_per_sec", "", serial_sps);
        telemetry::set_gauge("bench.cached_steps_per_sec", "", cached_sps);
        telemetry::set_gauge("bench.speedup", "", cached_sps / serial_sps);
    }
    cache.publish_telemetry();

    println!("rollout throughput on gsm ({steps} env steps per path, {workers} workers)");
    println!("determinism: all {rounds} parallel batches bit-identical to serial ones");
    telemetry_finish("rollout_bench", tmode);
}
