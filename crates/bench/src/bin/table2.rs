//! Regenerates Table 2 (the 56 program features).
fn main() {
    print!("{}", autophase_core::report::table2());
}
