//! Regenerates Table 2 (the 56 program features).
use autophase_bench::TelemetrySession;

fn main() {
    let telemetry = TelemetrySession::start("table2");
    print!("{}", autophase_core::report::table2());
    telemetry.finish();
}
