//! Regenerates Table 2 (the 56 program features).
use autophase_bench::{telemetry_finish, telemetry_init, TelemetryMode};

fn main() {
    let tmode = TelemetryMode::from_args();
    telemetry_init(tmode);
    print!("{}", autophase_core::report::table2());
    telemetry_finish("table2", tmode);
}
