//! Figure 7: circuit speedup and sample size comparison on the nine
//! benchmarks, all eleven algorithms.
use autophase_bench::{named_suite, Scale, TelemetrySession};
use autophase_core::algorithms::Budget;

fn main() {
    let telemetry = TelemetrySession::start("fig7");
    let scale = Scale::from_args();
    let budget = match scale {
        Scale::Small => Budget {
            rl_iterations: 4,
            rl_horizon: 32,
            episode_len: 12,
            es_generations: 3,
            greedy_budget: 150,
            opentuner_budget: 250,
            genetic_budget: 300,
            random_budget: 400,
            multi_iterations: 4,
        },
        // No corpus-scale knob here: `large` runs the medium budget.
        Scale::Medium | Scale::Large => Budget::default(),
        Scale::Paper => Budget {
            rl_iterations: 30,
            rl_horizon: 88,
            episode_len: 45,
            es_generations: 20,
            greedy_budget: 2484,
            opentuner_budget: 4000,
            genetic_budget: 6080,
            random_budget: 8400,
            multi_iterations: 40,
        },
    };
    let r = autophase_core::experiment::fig7(&named_suite(), &budget, 7);
    print!("{}", autophase_core::report::fig7_table(&r));
    telemetry.finish();
}
