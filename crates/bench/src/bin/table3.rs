//! Regenerates Table 3 (deep-RL observation/action spaces).
fn main() {
    print!("{}", autophase_core::report::table3());
}
