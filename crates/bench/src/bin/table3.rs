//! Regenerates Table 3 (deep-RL observation/action spaces).
use autophase_bench::TelemetrySession;

fn main() {
    let telemetry = TelemetrySession::start("table3");
    print!("{}", autophase_core::report::table3());
    telemetry.finish();
}
