//! Regenerates Table 3 (deep-RL observation/action spaces).
use autophase_bench::{telemetry_finish, telemetry_init, TelemetryMode};

fn main() {
    let tmode = TelemetryMode::from_args();
    telemetry_init(tmode);
    print!("{}", autophase_core::report::table3());
    telemetry_finish("table3", tmode);
}
