//! Figure 6: random-forest importance of previously applied passes.
use autophase_bench::{Scale, TelemetrySession};

fn main() {
    let telemetry = TelemetrySession::start("fig6");
    let scale = Scale::from_args();
    let n_programs = scale.pick(6, 30, 100);
    let analysis = autophase_core::experiment::fig5_fig6(n_programs, 6);
    print!(
        "{}",
        autophase_core::report::heatmap(&analysis.history_importance, "pass", "previous pass")
    );
    println!("\nMost impactful passes:");
    for p in analysis.impactful_passes(16) {
        println!("  {:>2}  {}", p, autophase_passes::registry::pass_name(p));
    }
    telemetry.finish();
}
