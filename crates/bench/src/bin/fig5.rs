//! Figure 5: random-forest importance of program features per pass.
use autophase_bench::{Scale, TelemetrySession};

fn main() {
    let telemetry = TelemetrySession::start("fig5");
    let scale = Scale::from_args();
    let n_programs = scale.pick(6, 30, 100);
    let analysis = autophase_core::experiment::fig5_fig6(n_programs, 5);
    print!(
        "{}",
        autophase_core::report::heatmap(&analysis.feature_importance, "pass", "feature")
    );
    println!("\nTop features overall:");
    for f in analysis.impactful_features(16) {
        println!("  {:>2}  {}", f, autophase_features::feature_names()[f]);
    }
    telemetry.finish();
}
