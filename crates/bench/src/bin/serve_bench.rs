//! Load generator for the compile service (`autophase-serve`).
//!
//! One run tells the whole serving story end to end:
//!
//! 1. **Train** a small PPO policy under the serving configuration
//!    (`serve_env_config()`), checkpoint it, and reload it — the daemon
//!    runs off the reloaded weights, so the save/load path is on the
//!    critical path of every number below.
//! 2. **Seed** the store with one cold compile per corpus program.
//! 3. **Warm phase** — concurrent clients replay the corpus; every
//!    answer must come from the persistent store. Headline:
//!    `warm_reqs_per_sec` (target: ≥ 5k req/s).
//! 4. **Cold phase** — every request is a program the store has never
//!    seen (fresh fingerprints via module renaming), so every answer
//!    runs the full policy path: batched inference rollout plus two
//!    profiles. Headline: `cold_p99_ms` (target: < 100 ms at
//!    `--scale medium`).
//! 5. **Chaos phase** — injected policy faults mid-load; every request
//!    must still be answered (degraded to the baseline ordering), with
//!    zero errors.
//!
//! Results land in `BENCH_serve.json`; the server's own telemetry
//! (queue depth, per-stage latency, store hit rate, batch sizes) renders
//! through `--telemetry summary` (the default here).
//!
//! Usage: `cargo run --release -p autophase-bench --bin serve_bench
//! [-- --scale small|medium|paper] [--telemetry summary|jsonl|prom|off]`.

use autophase_bench::{Scale, TelemetryMode, TelemetrySession};
use autophase_ir::printer::print_module;
use autophase_rl::checkpoint::PolicyCheckpoint;
use autophase_rl::ppo::{PpoAgent, PpoConfig};
use autophase_serve::client::Client;
use autophase_serve::engine::{serve_env, serve_num_actions, serve_obs_dim};
use autophase_serve::protocol::Source;
use autophase_serve::server::{Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SEED: u64 = 20;
/// Generous per-request deadline: the bench measures latency honestly
/// rather than engineering drops, and "zero dropped in-deadline
/// requests" is an assertion, not an aspiration.
const DEADLINE_MS: u64 = 10_000;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "autophase_serve_bench_{}_{name}",
        std::process::id()
    ))
}

/// The corpus: the paper's nine-benchmark suite, as wire-format IR.
fn corpus() -> Vec<(String, String)> {
    autophase_benchmarks::suite()
        .into_iter()
        .map(|b| (b.name.to_string(), print_module(&b.module)))
        .collect()
}

/// `program` with a fresh module name — a fresh fingerprint, so the
/// store treats it as never seen while the compile work is unchanged.
fn renamed(ir: &str, tag: &str) -> String {
    let mut m = autophase_ir::parser::parse_module(ir).expect("corpus IR parses");
    m.name = format!("{}__{tag}", m.name);
    print_module(&m)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

fn connect(addr: SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect to daemon");
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set read timeout");
    client
}

fn main() {
    let telemetry = TelemetrySession::start_with_default("serve_bench", TelemetryMode::Summary);
    let scale = Scale::from_args();

    // ---- 1. Train under the serving configuration, checkpoint, reload.
    let train_iters = scale.pick(2, 10, 60);
    let programs: Vec<_> = autophase_benchmarks::suite()
        .into_iter()
        .map(|b| b.module)
        .collect();
    let mut env = serve_env(programs);
    let mut agent = PpoAgent::new(
        serve_obs_dim(),
        serve_num_actions(),
        &PpoConfig::small(),
        SEED,
    );
    eprintln!("serve_bench: training PPO for {train_iters} iterations under serve_env_config()");
    let t0 = Instant::now();
    let curve = agent.train(&mut env, train_iters);
    let train_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "serve_bench: trained in {train_secs:.1}s (reward {:.3} -> {:.3})",
        curve.first().copied().unwrap_or(0.0),
        curve.last().copied().unwrap_or(0.0)
    );

    let ckpt_path = tmp_path("policy.ckpt");
    PolicyCheckpoint::from_ppo(&agent)
        .save(&ckpt_path)
        .expect("save checkpoint");
    let policy = PolicyCheckpoint::load(&ckpt_path)
        .expect("reload checkpoint")
        .policy;

    // ---- Daemon, chaos-capable, on a fresh store.
    let store_path = tmp_path("store.log");
    let _ = std::fs::remove_file(&store_path);
    let server = Server::start(
        policy,
        ServerConfig {
            store_path: store_path.clone(),
            chaos: true,
            workers: 8,
            queue_cap: 256,
            ..ServerConfig::default()
        },
    )
    .expect("daemon starts");
    let addr = server.addr();
    let corpus = corpus();

    // ---- 2. Seed: one cold compile per program populates the store.
    {
        let mut client = connect(addr);
        for (name, ir) in &corpus {
            let reply = client
                .compile(ir, Some(DEADLINE_MS), false)
                .unwrap_or_else(|e| panic!("seeding {name}: {e}"));
            assert_eq!(reply.source, Source::Policy, "{name} seeded twice?");
        }
    }
    assert_eq!(server.store_len(), corpus.len());

    // ---- 3. Warm phase: concurrent clients, every answer off the store.
    let warm_threads = 8usize;
    let warm_reqs_per_thread = scale.pick(100, 1500, 10_000);
    eprintln!("serve_bench: warm phase, {warm_threads} clients x {warm_reqs_per_thread} requests");
    let t0 = Instant::now();
    let handles: Vec<_> = (0..warm_threads)
        .map(|t| {
            let corpus = corpus.clone();
            std::thread::spawn(move || {
                let mut client = connect(addr);
                let mut non_store = 0usize;
                for i in 0..warm_reqs_per_thread {
                    let (name, ir) = &corpus[(t + i) % corpus.len()];
                    let reply = client
                        .compile(ir, Some(DEADLINE_MS), false)
                        .unwrap_or_else(|e| panic!("warm {name}: {e}"));
                    if reply.source != Source::Store {
                        non_store += 1;
                    }
                }
                non_store
            })
        })
        .collect();
    let mut warm_non_store = 0usize;
    for h in handles {
        warm_non_store += h.join().expect("warm client panicked");
    }
    let warm_secs = t0.elapsed().as_secs_f64();
    let warm_total = warm_threads * warm_reqs_per_thread;
    let warm_rps = warm_total as f64 / warm_secs;
    assert_eq!(warm_non_store, 0, "warm request missed the store");
    eprintln!("serve_bench: warm {warm_total} requests in {warm_secs:.2}s = {warm_rps:.0} req/s");

    // ---- 4. Cold phase: unique fingerprints, full policy path, p99.
    let cold_reqs = scale.pick(30, 300, 2000);
    eprintln!("serve_bench: cold phase, {cold_reqs} never-seen programs");
    let mut client = connect(addr);
    let mut latencies_ms = Vec::with_capacity(cold_reqs);
    for i in 0..cold_reqs {
        let (_, ir) = &corpus[i % corpus.len()];
        let fresh = renamed(ir, &format!("cold{i}"));
        let t = Instant::now();
        let reply = client
            .compile(&fresh, Some(DEADLINE_MS), false)
            .unwrap_or_else(|e| panic!("cold {i}: {e}"));
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(reply.source, Source::Policy, "cold {i} was not cold");
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cold_p50 = percentile(&latencies_ms, 0.50);
    let cold_p99 = percentile(&latencies_ms, 0.99);
    eprintln!("serve_bench: cold p50 {cold_p50:.2} ms, p99 {cold_p99:.2} ms");

    // ---- 5. Chaos phase: faults mid-load, zero errors.
    let chaos_reqs = scale.pick(10, 100, 500);
    client.chaos(chaos_reqs as u32).expect("arm chaos");
    let mut baseline_answers = 0usize;
    for i in 0..chaos_reqs {
        let (_, ir) = &corpus[i % corpus.len()];
        let fresh = renamed(ir, &format!("chaos{i}"));
        let reply = client
            .compile(&fresh, Some(DEADLINE_MS), false)
            .unwrap_or_else(|e| panic!("chaos {i} dropped: {e}"));
        if reply.source == Source::Baseline {
            baseline_answers += 1;
        }
    }
    assert!(baseline_answers > 0, "chaos faults never reached a request");
    eprintln!(
        "serve_bench: chaos {chaos_reqs} requests, {baseline_answers} degraded to baseline, 0 dropped"
    );

    // Per-stage latency breakdown, straight off the daemon's STATS verb:
    // the before/after baseline future inference/profiling work will be
    // measured against.
    let stage_ns = autophase_bench::stage_breakdown_json(&client.stats().expect("daemon stats"));

    let store_len = server.store_len();
    server.shutdown();
    let _ = std::fs::remove_file(&store_path);
    let _ = std::fs::remove_file(&ckpt_path);

    let corpus_names: Vec<String> = corpus.iter().map(|(n, _)| format!("\"{n}\"")).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"serve_bench\",\n  \"scale\": \"{scale:?}\",\n  \
         \"corpus\": [{}],\n  \"train_iters\": {train_iters},\n  \"train_secs\": {train_secs:.1},\n  \
         \"warm\": {{ \"clients\": {warm_threads}, \"requests\": {warm_total}, \"secs\": {warm_secs:.3}, \
         \"reqs_per_sec\": {warm_rps:.0}, \"store_misses\": {warm_non_store} }},\n  \
         \"cold\": {{ \"requests\": {cold_reqs}, \"p50_ms\": {cold_p50:.2}, \"p99_ms\": {cold_p99:.2} }},\n  \
         \"chaos\": {{ \"requests\": {chaos_reqs}, \"degraded_to_baseline\": {baseline_answers}, \"dropped\": 0 }},\n  \
         \"stage_ns\": {stage_ns},\n  \
         \"store_entries_final\": {store_len}\n}}\n",
        corpus_names.join(", ")
    );
    print!("{json}");
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
    telemetry.finish();
}
