//! Durability drill for the serve store: kill -9 a real writer process
//! at random moments and prove no acknowledged record is ever lost (and
//! no phantom ever appears), then measure that reopen time stays flat as
//! append history grows — compaction bounds recovery to live entries.
//!
//! Two pieces:
//!
//! 1. **Kill drill** — this binary re-execs itself as a writer child
//!    (`--writer`) that appends deterministic, strictly-improving
//!    records in a tight fsync loop and logs an ack line (synced) after
//!    every store-acknowledged insert. The parent SIGKILLs it after a
//!    seeded-random delay, reopens the store, and checks every acked
//!    record is present and byte-deterministic. The same store survives
//!    the whole drill, so late kills hit a store that has lived through
//!    dozens of crashes (and eager-policy compactions) already.
//! 2. **Reopen scaling** — build stores whose append history is 1×, 3×,
//!    and 10× the live set, with and without compaction, and time
//!    reopen. The compacted store's reopen must not grow with history.
//!
//! Results land in `BENCH_durability.json`. Usage:
//! `cargo run --release -p autophase-bench --bin durability_bench
//! [-- --smoke]` (`--smoke`: ~12 kills instead of 50, for CI).

use autophase_bench::{TelemetryMode, TelemetrySession};
use autophase_serve::store::{BestEntry, BestStore, CompactionPolicy};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Distinct fingerprints the writer churns over.
const FPS: u64 = 8;
/// Rounds start high and count cycles down so every round's record is
/// strictly better — each insert must be acknowledged.
const CYCLE_BASE: u64 = 1_000_000;

/// Eager compaction so the drill crashes into snapshot/truncate windows
/// too, not only mid-append.
fn drill_policy() -> CompactionPolicy {
    CompactionPolicy {
        min_tail_bytes: 4096,
        tail_factor: 1.0,
        dead_ratio: 0.3,
    }
}

/// The one record the writer may store for `(fp, round)` — fully
/// deterministic, so the parent can detect any corruption or phantom by
/// recomputation.
fn planned(fp: u64, round: u64) -> BestEntry {
    let len = ((fp + round) % 12) as u16;
    BestEntry {
        cycles: CYCLE_BASE - round,
        baseline_cycles: 2 * CYCLE_BASE,
        seq: (0..len)
            .map(|i| (fp as u16 * 7 + round as u16 + i) % 46)
            .collect(),
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Writer child: append planned records forever (until SIGKILLed),
/// syncing an ack line after every store-acknowledged insert. Rejected
/// inserts (already present after a restart) are silently skipped.
fn writer_main(store_path: &Path, ack_path: &Path, start_round: u64) -> ! {
    let mut store = BestStore::open_with(store_path, drill_policy()).expect("writer opens store");
    let mut ack = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(ack_path)
        .expect("writer opens ack log");
    let mut round = start_round;
    loop {
        for fp in 0..FPS {
            if store.record(fp, planned(fp, round)).expect("writer append") {
                // Ack only after the store's own fsync acknowledged: a
                // kill between the two under-reports acks, never the
                // reverse.
                writeln!(ack, "{fp} {round}").expect("ack write");
                ack.flush().expect("ack flush");
                ack.sync_data().expect("ack sync");
            }
        }
        round += 1;
    }
}

/// Complete (newline-terminated) ack lines → highest acked round per fp.
fn read_acks(ack_path: &Path) -> HashMap<u64, u64> {
    let mut acked = HashMap::new();
    let Ok(raw) = std::fs::read_to_string(ack_path) else {
        return acked;
    };
    let complete = match raw.rfind('\n') {
        Some(i) => &raw[..i],
        None => return acked,
    };
    for line in complete.lines() {
        let mut it = line.split_whitespace();
        let (Some(fp), Some(round)) = (it.next(), it.next()) else {
            continue;
        };
        let (Ok(fp), Ok(round)) = (fp.parse::<u64>(), round.parse::<u64>()) else {
            continue;
        };
        let e = acked.entry(fp).or_insert(round);
        *e = (*e).max(round);
    }
    acked
}

fn wipe(path: &Path) {
    for suffix in ["", ".snap", ".snap.tmp", ".snap.corrupt", ".tmp"] {
        let _ = std::fs::remove_file(PathBuf::from(format!("{}{suffix}", path.display())));
    }
}

/// Reopen the drill store and verify it against the ack log. Returns
/// `(max_round_in_store, records_checked)`; panics on any lost ack or
/// phantom/corrupt record.
fn verify_store(store_path: &Path, acked: &HashMap<u64, u64>, kill: usize) -> (u64, usize) {
    let store = BestStore::open_with(store_path, drill_policy())
        .unwrap_or_else(|e| panic!("kill {kill}: reopen after SIGKILL failed: {e}"));
    let mut max_round = 0u64;
    let mut checked = 0usize;
    for fp in 0..FPS {
        let entry = store.lookup(fp);
        // No phantoms and no corruption: whatever the store holds must
        // be exactly a planned record for this fingerprint.
        if let Some(e) = entry {
            assert!(
                e.cycles <= CYCLE_BASE,
                "kill {kill}: fp {fp} has impossible cycles {}",
                e.cycles
            );
            let round = CYCLE_BASE - e.cycles;
            assert_eq!(
                e,
                &planned(fp, round),
                "kill {kill}: fp {fp} round {round} does not match its planned record"
            );
            max_round = max_round.max(round);
            checked += 1;
        }
        // No lost acks: an acknowledged round must be served at least
        // that well (the store may hold a later, better, un-acked one).
        if let Some(&ack_round) = acked.get(&fp) {
            let e = entry.unwrap_or_else(|| {
                panic!("kill {kill}: fp {fp} acked at round {ack_round} but missing")
            });
            assert!(
                CYCLE_BASE - e.cycles >= ack_round,
                "kill {kill}: fp {fp} acked round {ack_round}, store only has {}",
                CYCLE_BASE - e.cycles
            );
        }
    }
    (max_round, checked)
}

fn entry_for(fp: u64, round: u64) -> BestEntry {
    BestEntry {
        cycles: 100_000 - round,
        baseline_cycles: 500_000,
        seq: vec![(fp % 46) as u16; 6],
    }
}

/// Build a store with `live` entries overwritten `rounds` times, then
/// time a reopen. Returns (reopen_ms, on_disk_bytes).
fn reopen_timing(path: &Path, live: u64, rounds: u64, policy: CompactionPolicy) -> (f64, u64) {
    wipe(path);
    {
        let mut s = BestStore::open_with(path, policy).expect("build store");
        for round in 0..rounds {
            for fp in 0..live {
                s.record(fp, entry_for(fp, round)).expect("append");
            }
        }
    }
    let mut bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let snap = PathBuf::from(format!("{}.snap", path.display()));
    bytes += std::fs::metadata(&snap).map(|m| m.len()).unwrap_or(0);

    let t = Instant::now();
    let s = BestStore::open_with(path, policy).expect("timed reopen");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(s.len() as u64, live, "timed store must be complete");
    wipe(path);
    (ms, bytes)
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "autophase_durability_bench_{}_{name}",
        std::process::id()
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    // Child mode: `--writer <store> --ack <file> --start <round>`.
    if let Some(i) = args.iter().position(|a| a == "--writer") {
        let store = PathBuf::from(&args[i + 1]);
        let ack_at = args.iter().position(|a| a == "--ack").expect("--ack");
        let start_at = args.iter().position(|a| a == "--start").expect("--start");
        let start: u64 = args[start_at + 1].parse().expect("--start round");
        writer_main(&store, PathBuf::from(&args[ack_at + 1]).as_path(), start);
    }

    let telemetry =
        TelemetrySession::start_with_default("durability_bench", TelemetryMode::Summary);
    let smoke = args.iter().any(|a| a == "--smoke");
    let kills: usize = if smoke { 12 } else { 50 };

    // ---- 1. Kill drill.
    let store_path = tmp_path("drill.log");
    let ack_path = tmp_path("drill.ack");
    wipe(&store_path);
    let _ = std::fs::remove_file(&ack_path);
    let exe = std::env::current_exe().expect("current_exe");

    eprintln!("durability_bench: kill drill, {kills} SIGKILLs at seeded-random points");
    let mut rng = 0x00D1_D00Du64;
    let mut next_start = 0u64;
    let mut total_checked = 0usize;
    let drill_t0 = Instant::now();
    for kill in 0..kills {
        let mut child = std::process::Command::new(&exe)
            .arg("--writer")
            .arg(&store_path)
            .arg("--ack")
            .arg(&ack_path)
            .arg("--start")
            .arg(next_start.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .expect("spawn writer child");
        // 1..=45 ms: long enough to land mid-append, mid-fsync, and
        // (with the eager policy) mid-compaction; short enough for 50
        // kills to finish well inside the CI budget.
        let delay = Duration::from_millis(splitmix(&mut rng) % 45 + 1);
        std::thread::sleep(delay);
        child.kill().expect("SIGKILL writer");
        child.wait().expect("reap writer");

        let acked = read_acks(&ack_path);
        let (max_round, checked) = verify_store(&store_path, &acked, kill);
        total_checked += checked;
        next_start = max_round + 1;
    }
    let drill_secs = drill_t0.elapsed().as_secs_f64();
    let final_store = BestStore::open_with(&store_path, drill_policy()).expect("final reopen");
    let final_stats = final_store.stats();
    eprintln!(
        "durability_bench: {kills} kills in {drill_secs:.1}s, 0 acked records lost, 0 phantoms \
         ({} live entries, snapshot generation {} across crashes)",
        final_stats.entries, final_stats.generation
    );
    drop(final_store);
    wipe(&store_path);
    let _ = std::fs::remove_file(&ack_path);

    // ---- 2. Reopen scaling: history 1×, 3×, 10× the live set.
    let live: u64 = if smoke { 1_000 } else { 4_000 };
    let growth = [1u64, 3, 10];
    eprintln!("durability_bench: reopen scaling, {live} live entries, history x{growth:?}");
    let bench_path = tmp_path("scaling.log");
    let mut compacted = Vec::new();
    let mut unbounded = Vec::new();
    for &g in &growth {
        let (ms_c, bytes_c) = reopen_timing(&bench_path, live, g, CompactionPolicy::default());
        let (ms_u, bytes_u) = reopen_timing(&bench_path, live, g, CompactionPolicy::never());
        eprintln!(
            "durability_bench: history {g:>2}x  compacted {ms_c:7.2} ms / {bytes_c:>9} B   \
             unbounded {ms_u:7.2} ms / {bytes_u:>9} B"
        );
        compacted.push((ms_c, bytes_c));
        unbounded.push((ms_u, bytes_u));
    }
    // The headline invariant: the compacted store's recovery cost does
    // not follow history. Generous slack — wall-clock on shared CI is
    // noisy at millisecond scale — but a linear 10x would blow past it.
    assert!(
        compacted[2].0 < compacted[0].0 * 4.0 + 10.0,
        "compacted reopen grew with history: {:.2} ms at 1x -> {:.2} ms at 10x",
        compacted[0].0,
        compacted[2].0
    );
    assert!(
        compacted[2].1 < unbounded[2].1,
        "compaction must keep disk below the unbounded history"
    );

    let fmt = |v: &[(f64, u64)], f: fn(&(f64, u64)) -> String| -> String {
        v.iter().map(f).collect::<Vec<_>>().join(", ")
    };
    let json = format!(
        "{{\n  \"benchmark\": \"durability_bench\",\n  \"smoke\": {smoke},\n  \
         \"kill_drill\": {{ \"kills\": {kills}, \"secs\": {drill_secs:.1}, \
         \"acked_records_lost\": 0, \"phantom_records\": 0, \"verified_lookups\": {total_checked}, \
         \"final_live_entries\": {}, \"snapshot_generation\": {} }},\n  \
         \"reopen\": {{ \"live_entries\": {live}, \"history_factors\": [1, 3, 10],\n    \
         \"compacted_ms\": [{}],\n    \"compacted_bytes\": [{}],\n    \
         \"unbounded_ms\": [{}],\n    \"unbounded_bytes\": [{}] }}\n}}\n",
        final_stats.entries,
        final_stats.generation,
        fmt(&compacted, |p| format!("{:.2}", p.0)),
        fmt(&compacted, |p| p.1.to_string()),
        fmt(&unbounded, |p| format!("{:.2}", p.0)),
        fmt(&unbounded, |p| p.1.to_string()),
    );
    print!("{json}");
    match std::fs::write("BENCH_durability.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_durability.json"),
        Err(e) => eprintln!("could not write BENCH_durability.json: {e}"),
    }
    telemetry.finish();
}
