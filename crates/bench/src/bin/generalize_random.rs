//! §6.2 closing result: the filtered-norm2 generalist on unseen random
//! programs (the paper: +6% vs -O3 on 12,874 programs).
use autophase_bench::{Scale, TelemetrySession};
use autophase_progen::{program_batch, GenConfig};

fn main() {
    let telemetry = TelemetrySession::start("generalize_random");
    let scale = Scale::from_args();
    let (n_train, iters, n_test) = scale.pick((4, 4, 20), (12, 40, 120), (100, 160, 12874));
    let train = program_batch(&GenConfig::default(), 42, n_train);
    let imp = autophase_core::experiment::generalize_random(&train, n_test, iters, 10);
    println!(
        "filtered-norm2 generalist on {n_test} unseen random programs: {:+.1}% vs -O3",
        imp * 100.0
    );
    telemetry.finish();
}
