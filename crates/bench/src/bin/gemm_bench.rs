//! Micro-benchmarks for the SIMD inference kernels (DESIGN.md §4k).
//!
//! Two comparisons, both on the serving policy's layer shapes:
//!
//! **Single-op GEMV** — the scalar AoS baseline ([`Matrix::matvec`],
//! one dot product per output row, a serial add chain each) versus the
//! SoA kernel ([`autophase_nn::simd::gemv_kt`], k-major weights, lanes
//! spanning outputs, independent accumulation chains). The headline
//! speedup is the geometric mean across the layer shapes and
//! `--min-speedup <x>` turns it into a regression gate.
//!
//! **Batched forward** — one [`SoaMlp::forward_batch`] per gathered
//! batch versus per-observation [`Mlp::forward`], at the batch sizes the
//! serving engine actually sees ({1, 8, 64}); reported as observations
//! per second plus the per-batch amortization factor.
//!
//! Results land in `BENCH_gemm.json`. The kernels are bit-identical to
//! the scalar reference by construction (pinned by the nn crate's
//! differential suite); this binary re-checks every output it times, so
//! the numbers can never come from a kernel that drifted.
//!
//! Usage: `cargo run --release -p autophase-bench --bin gemm_bench
//! [-- --min-speedup <x>]`.

use autophase_nn::matrix::Matrix;
use autophase_nn::mlp::{Activation, Mlp};
use autophase_nn::{simd, BatchWorkspace, SoaMlp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The serving policy's layer shapes (56-wide observations, two hidden
/// layers, 46 actions) plus the training value head.
const SHAPES: [(usize, usize); 4] = [(56, 256), (256, 256), (256, 46), (256, 1)];

/// Batch sizes the engine's batching window actually produces.
const BATCHES: [usize; 3] = [1, 8, 64];

fn min_speedup_from_args() -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--min-speedup" {
            return w[1].parse().ok();
        }
    }
    None
}

/// Time `f` over enough repetitions to dominate timer noise, returning
/// seconds per call.
fn time_per_call(mut f: impl FnMut(), calls: usize) -> f64 {
    // Warm-up: page in buffers, settle the frequency governor.
    for _ in 0..calls / 10 + 1 {
        f();
    }
    let t = Instant::now();
    for _ in 0..calls {
        f();
    }
    t.elapsed().as_secs_f64() / calls as f64
}

struct GemvResult {
    rows: usize,
    cols: usize,
    scalar_ns: f64,
    simd_ns: f64,
    speedup: f64,
}

/// Scalar AoS `matvec` vs SoA `gemv_kt` on one `rows x cols` layer.
fn bench_gemv(rows: usize, cols: usize, rng: &mut StdRng) -> GemvResult {
    let mut w = Matrix::zeros(rows, cols);
    for v in w.data_mut() {
        *v = rng.gen::<f64>() - 0.5;
    }
    let x: Vec<f64> = (0..cols).map(|_| rng.gen::<f64>() - 0.5).collect();
    // k-major transpose of the same weights, as SoaMlp lays them out.
    let mut wt = vec![0.0; rows * cols];
    for n in 0..rows {
        for k in 0..cols {
            wt[k * rows + n] = w.get(n, k);
        }
    }
    let width = simd::picked();

    // The kernels must agree bitwise before anything is timed.
    let reference = w.matvec(&x);
    let mut y = vec![0.0; rows];
    simd::gemv_kt(&wt, &x, &mut y, width);
    assert_eq!(
        reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "{rows}x{cols}: SIMD gemv diverged from scalar matvec"
    );

    let calls = (20_000_000 / (rows * cols)).max(200);
    let mut sink = 0.0f64;
    let scalar_s = time_per_call(
        || {
            let out = w.matvec(&x);
            sink += out[0];
        },
        calls,
    );
    let mut y = vec![0.0; rows];
    let simd_s = time_per_call(
        || {
            simd::gemv_kt(&wt, &x, &mut y, width);
            sink += y[0];
        },
        calls,
    );
    std::hint::black_box(sink);
    GemvResult {
        rows,
        cols,
        scalar_ns: scalar_s * 1e9,
        simd_ns: simd_s * 1e9,
        speedup: scalar_s / simd_s,
    }
}

struct BatchResult {
    batch: usize,
    scalar_obs_per_sec: f64,
    batched_obs_per_sec: f64,
    speedup: f64,
}

/// Per-observation `Mlp::forward` vs one `forward_batch` on the serving
/// policy shape, at engine batch size `batch`.
fn bench_batched_forward(net: &Mlp, soa: &SoaMlp, batch: usize, rng: &mut StdRng) -> BatchResult {
    let obs: Vec<Vec<f64>> = (0..batch)
        .map(|_| {
            (0..net.input_dim())
                .map(|_| rng.gen::<f64>() - 0.5)
                .collect()
        })
        .collect();
    let mut ws = BatchWorkspace::new();

    // Bit-identity check on the exact inputs being timed.
    ws.begin(soa);
    for o in &obs {
        ws.push_input(o);
    }
    soa.forward_batch(&mut ws);
    for (b, o) in obs.iter().enumerate() {
        let want: Vec<u64> = net.forward(o).iter().map(|v| v.to_bits()).collect();
        let got: Vec<u64> = ws.logits(b).iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "batch {batch} row {b}: batched forward diverged");
    }

    let calls = (2_000 / batch).max(30);
    let mut sink = 0.0f64;
    let scalar_s = time_per_call(
        || {
            for o in &obs {
                sink += net.forward(o)[0];
            }
        },
        calls,
    );
    let batched_s = time_per_call(
        || {
            ws.begin(soa);
            for o in &obs {
                ws.push_input(o);
            }
            soa.forward_batch(&mut ws);
            sink += ws.logits(0)[0];
        },
        calls,
    );
    std::hint::black_box(sink);
    BatchResult {
        batch,
        scalar_obs_per_sec: batch as f64 / scalar_s,
        batched_obs_per_sec: batch as f64 / batched_s,
        speedup: scalar_s / batched_s,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let width = simd::picked();
    println!("kernel width: {} ({} lanes)", width.name(), width.lanes());

    println!("single-op GEMV (scalar AoS matvec vs SoA gemv_kt):");
    let mut gemv: Vec<GemvResult> = Vec::new();
    for &(rows, cols) in &SHAPES {
        let r = bench_gemv(rows, cols, &mut rng);
        println!(
            "  {:>3}x{:<3}  scalar {:>8.1} ns  simd {:>8.1} ns  speedup {:>5.2}x",
            r.rows, r.cols, r.scalar_ns, r.simd_ns, r.speedup
        );
        gemv.push(r);
    }
    let gemv_speedup = (gemv.iter().map(|r| r.speedup.ln()).sum::<f64>() / gemv.len() as f64).exp();
    println!("  geometric-mean GEMV speedup: {gemv_speedup:.2}x");

    let net = Mlp::new(&[56, 256, 256, 46], Activation::Tanh, 7);
    let soa = SoaMlp::from_mlp(&net);
    println!("batched forward on the 56-256-256-46 policy:");
    let mut fwd: Vec<BatchResult> = Vec::new();
    for &b in &BATCHES {
        let r = bench_batched_forward(&net, &soa, b, &mut rng);
        println!(
            "  batch {:>2}  per-obs {:>9.0} obs/s  batched {:>9.0} obs/s  speedup {:>5.2}x",
            r.batch, r.scalar_obs_per_sec, r.batched_obs_per_sec, r.speedup
        );
        fwd.push(r);
    }

    let gemv_json = gemv
        .iter()
        .map(|r| {
            format!(
                "    {{ \"shape\": \"{}x{}\", \"scalar_ns\": {:.1}, \"simd_ns\": {:.1}, \"speedup\": {:.2} }}",
                r.rows, r.cols, r.scalar_ns, r.simd_ns, r.speedup
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let fwd_json = fwd
        .iter()
        .map(|r| {
            format!(
                "    {{ \"batch\": {}, \"per_obs_forward_obs_per_sec\": {:.0}, \
                 \"batched_forward_obs_per_sec\": {:.0}, \"speedup\": {:.2} }}",
                r.batch, r.scalar_obs_per_sec, r.batched_obs_per_sec, r.speedup
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"gemm_bench\",\n  \"kernel_width\": \"{}\",\n  \
         \"bit_identical\": true,\n  \"gemv\": [\n{gemv_json}\n  ],\n  \
         \"gemv_speedup_geomean\": {gemv_speedup:.2},\n  \"batched_forward\": [\n{fwd_json}\n  ]\n}}\n",
        width.name()
    );
    match std::fs::write("BENCH_gemm.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_gemm.json"),
        Err(e) => eprintln!("could not write BENCH_gemm.json: {e}"),
    }

    if let Some(floor) = min_speedup_from_args() {
        if gemv_speedup < floor {
            eprintln!("FAIL: GEMV speedup {gemv_speedup:.2}x is below the {floor}x floor");
            std::process::exit(1);
        }
        println!("GEMV speedup {gemv_speedup:.2}x meets the {floor}x floor");
    }
}
