//! Figure 8: episode reward mean vs. step for filtered-norm1,
//! filtered-norm2, and original-norm2 on random programs.
use autophase_bench::{Scale, TelemetrySession};

fn main() {
    let telemetry = TelemetrySession::start("fig8");
    let scale = Scale::from_args();
    let (n_programs, iterations) = scale.pick((4, 6), (20, 50), (100, 170));
    let curves = autophase_core::experiment::fig8(n_programs, iterations, 8);
    print!("{}", autophase_core::report::fig8_table(&curves));
    println!("\nConvergence (steps to 80% of final level):");
    for c in &curves {
        println!("  {:<16} {:?}", c.label, c.steps_to_reach(0.8));
    }
    telemetry.finish();
}
