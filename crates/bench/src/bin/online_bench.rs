//! Online-learning drill for the compile service: measure what the
//! in-daemon learner actually buys, and what a live policy hot-swap
//! actually costs.
//!
//! Three phases against real daemons:
//!
//! 1. **Online improvement** — a daemon boots on a *random* policy with
//!    the learner on (`auto_promote`). An unseen mini-corpus (the suite
//!    programs under fresh module names) is compiled once before any
//!    swap ("pre"), the learner trains on streamed experience until it
//!    has published and auto-promoted at least one version, and the
//!    same corpus — renamed again, so every fingerprint is fresh — is
//!    compiled "post". Per-program cycle deltas and the daemon's own
//!    per-version improvement-over-`-O3` accounting are reported.
//! 2. **Swap drill** — four background clients hammer cold compiles
//!    while the admin client performs 20 `PROMOTE` round-trips
//!    alternating two healthy versions. Headline: swap-latency p99 and
//!    **zero** dropped or failed background requests across all swaps.
//! 3. **Corrupt-candidate leg** — `CHAOS swap=1` destroys the next
//!    candidate's bytes mid-promotion; the promotion must refuse, the
//!    candidate quarantines, and the background load keeps answering.
//!
//! Results land in `BENCH_online.json`. Usage:
//! `cargo run --release -p autophase-bench --bin online_bench
//! [-- --smoke]` (`--smoke`: shorter training deadline, for CI).

use autophase_bench::{TelemetryMode, TelemetrySession};
use autophase_ir::printer::print_module;
use autophase_nn::mlp::{Activation, Mlp};
use autophase_rl::checkpoint::{Algo, PolicyCheckpoint};
use autophase_rl::registry::ModelRegistry;
use autophase_serve::client::Client;
use autophase_serve::engine::{serve_num_actions, serve_obs_dim};
use autophase_serve::learner::LearnerConfig;
use autophase_serve::server::{Server, ServerConfig};
use autophase_serve::SERVE_EPISODE_LEN;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 0x0B11_BEEF;
const DEADLINE_MS: u64 = 60_000;
const SWAPS: usize = 20;
const WORKERS: usize = 4;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "autophase_online_bench_{}_{name}",
        std::process::id()
    ))
}

fn wipe(path: &PathBuf) {
    let _ = std::fs::remove_dir_all(path);
    let _ = std::fs::remove_file(path);
}

/// The unseen mini-corpus: the paper suite as wire IR. Every phase
/// renames these, so the daemon never sees a fingerprint twice.
fn corpus() -> Vec<String> {
    autophase_benchmarks::suite()
        .into_iter()
        .map(|b| print_module(&b.module))
        .collect()
}

fn renamed(ir: &str, tag: &str) -> String {
    let mut m = autophase_ir::parser::parse_module(ir).expect("corpus IR parses");
    m.name = format!("{}__{tag}", m.name);
    print_module(&m)
}

fn random_policy(seed: u64) -> Mlp {
    Mlp::new(
        &[serve_obs_dim(), 32, serve_num_actions()],
        Activation::Tanh,
        seed,
    )
}

fn healthy_ckpt(seed: u64) -> PolicyCheckpoint {
    PolicyCheckpoint {
        algo: Algo::Ppo,
        policy: random_policy(seed),
        value: Mlp::new(&[serve_obs_dim(), 8, 1], Activation::Tanh, seed ^ 0xF00),
    }
}

fn connect(addr: SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect to daemon");
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set read timeout");
    client
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Compile every corpus program under fresh names; return per-program
/// cycles (in corpus order).
fn compile_round(client: &mut Client, corpus: &[String], tag: &str) -> Vec<u64> {
    corpus
        .iter()
        .enumerate()
        .map(|(i, ir)| {
            let reply = client
                .compile(&renamed(ir, &format!("{tag}{i}")), Some(DEADLINE_MS), false)
                .unwrap_or_else(|e| panic!("{tag} p{i}: compile failed: {e}"));
            reply.cycles
        })
        .collect()
}

/// Phase 1: the learner closes the loop on a live daemon. Returns
/// (pre cycles, post cycles, swaps, per-version JSON fragments).
#[allow(clippy::type_complexity)]
fn improvement_phase(train_deadline: Duration) -> (Vec<u64>, Vec<u64>, u64, Vec<String>) {
    let store = tmp_path("learn.log");
    let registry_dir = tmp_path("learn_registry");
    wipe(&store);
    wipe(&registry_dir);
    let cfg = ServerConfig {
        store_path: store.clone(),
        registry_dir: Some(registry_dir.clone()),
        learner: Some(LearnerConfig {
            min_batch: SERVE_EPISODE_LEN,
            publish_every: 1,
            auto_promote: true,
            ..LearnerConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = Server::start(random_policy(SEED), cfg).expect("learner daemon starts");
    let mut client = connect(server.addr());
    let corpus = corpus();

    eprintln!(
        "online_bench: phase 1 — pre-swap compile of {} unseen programs",
        corpus.len()
    );
    let pre = compile_round(&mut client, &corpus, "pre");

    eprintln!("online_bench: training on streamed experience until auto-promotion");
    let deadline = Instant::now() + train_deadline;
    let mut round = 0u32;
    loop {
        if Instant::now() >= deadline {
            eprintln!("online_bench: WARNING — no auto-promotion within the deadline");
            break;
        }
        let _ = compile_round(&mut client, &corpus, &format!("tr{round}_"));
        round += 1;
        let snap = client.models().expect("MODEL answers");
        if snap.serving.is_some_and(|v| v > 0) {
            break;
        }
    }

    eprintln!("online_bench: post-swap compile of the corpus under fresh fingerprints");
    let post = compile_round(&mut client, &corpus, "post");

    let snap = client.models().expect("MODEL answers");
    let versions: Vec<String> = snap
        .versions
        .iter()
        .filter(|v| v.requests > 0)
        .map(|v| {
            format!(
                "{{ \"version\": {}, \"samples\": {}, \"requests\": {}, \"wins\": {}, \
                 \"store_inserts\": {}, \"mean_improvement_vs_o3\": {:.6} }}",
                v.version, v.samples, v.requests, v.wins, v.store_inserts, v.mean_improvement
            )
        })
        .collect();
    let swaps = snap.swaps;
    assert!(swaps >= 1, "learner must have hot-swapped at least once");

    server.shutdown();
    wipe(&store);
    wipe(&registry_dir);
    (pre, post, swaps, versions)
}

/// Phases 2+3: swap latency under live load, then the corrupt-candidate
/// leg. Returns (sorted swap latencies ms, answered, quarantined path
/// existed).
fn swap_drill() -> (Vec<f64>, u64, bool) {
    let store = tmp_path("swap.log");
    let registry_dir = tmp_path("swap_registry");
    wipe(&store);
    wipe(&registry_dir);
    {
        let mut reg = ModelRegistry::open(&registry_dir).expect("registry opens");
        reg.publish(&healthy_ckpt(1), 100, 1).expect("publish v1");
        reg.publish(&healthy_ckpt(2), 200, 2).expect("publish v2");
        reg.publish(&healthy_ckpt(3), 300, 3).expect("publish v3");
    }
    let cfg = ServerConfig {
        store_path: store.clone(),
        registry_dir: Some(registry_dir.clone()),
        admin: true,
        chaos: true,
        ..ServerConfig::default()
    };
    let server = Server::start(random_policy(SEED), cfg).expect("swap daemon starts");
    let addr = server.addr();

    // Background load: cold compiles only (fresh names per iteration),
    // so every request crosses the engine while swaps land.
    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let corpus = corpus();
                let mut client = connect(addr);
                let mut it = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for (i, ir) in corpus.iter().enumerate() {
                        let fresh = renamed(ir, &format!("w{w}i{it}p{i}"));
                        client
                            .compile(&fresh, Some(DEADLINE_MS), false)
                            .unwrap_or_else(|e| {
                                panic!("worker {w} iter {it} p{i}: request dropped: {e}")
                            });
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                    it += 1;
                }
            })
        })
        .collect();

    eprintln!("online_bench: phase 2 — {SWAPS} PROMOTE round-trips under {WORKERS} live clients");
    let mut admin = connect(addr);
    let mut latencies_ms = Vec::with_capacity(SWAPS);
    for s in 0..SWAPS {
        let v = 1 + (s as u64 & 1); // alternate v1 / v2
        let t = Instant::now();
        admin
            .promote(v)
            .unwrap_or_else(|e| panic!("swap {s} to v{v} failed: {e}"));
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        std::thread::sleep(Duration::from_millis(5));
    }

    eprintln!("online_bench: phase 3 — corrupt candidate injected mid-promotion");
    admin.chaos_swap(1).expect("arm swap corruption");
    assert!(
        admin.promote(3).is_err(),
        "corrupt candidate must refuse promotion"
    );
    let quarantined = registry_dir.join("v3.ckpt.quarantined").exists();
    assert!(
        quarantined,
        "corrupt candidate must quarantine for forensics"
    );
    // The old policy is still the one serving: the drill's own probe.
    let snap = admin.models().expect("MODEL answers");
    assert_eq!(
        snap.serving,
        Some(2),
        "corruption must not change the serving version"
    );

    // Let the load run a beat past the failed promotion, then stop.
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker thread survives the drill");
    }
    let answered = answered.load(Ordering::Relaxed);
    assert!(answered > 0, "background load must have run");

    server.shutdown();
    wipe(&store);
    wipe(&registry_dir);
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (latencies_ms, answered, quarantined)
}

fn main() {
    let telemetry = TelemetrySession::start_with_default("online_bench", TelemetryMode::Summary);
    let smoke = std::env::args().any(|a| a == "--smoke");
    let train_deadline = Duration::from_secs(if smoke { 20 } else { 120 });

    let (pre, post, learn_swaps, versions) = improvement_phase(train_deadline);
    let improved = pre.iter().zip(&post).filter(|(a, b)| b < a).count();
    let regressed = pre.iter().zip(&post).filter(|(a, b)| b > a).count();
    let ties = pre.len() - improved - regressed;
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
    eprintln!(
        "online_bench: online learning over {} programs: {improved} improved, {ties} unchanged, \
         {regressed} regressed (mean cycles {:.0} -> {:.0}, {learn_swaps} hot-swaps)",
        pre.len(),
        mean(&pre),
        mean(&post),
    );

    let (latencies_ms, answered, quarantined) = swap_drill();
    let p99 = percentile(&latencies_ms, 0.99);
    let p50 = percentile(&latencies_ms, 0.50);
    eprintln!(
        "online_bench: {SWAPS} hot-swaps under load: p50 {p50:.2} ms, p99 {p99:.2} ms; \
         {answered} background requests answered, 0 dropped; corrupt candidate quarantined"
    );

    let fmt_u64 = |v: &[u64]| {
        v.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"benchmark\": \"online_bench\",\n  \"smoke\": {smoke},\n  \
         \"online_learning\": {{\n    \"programs\": {},\n    \
         \"pre_swap_cycles\": [{}],\n    \"post_swap_cycles\": [{}],\n    \
         \"improved_programs\": {improved},\n    \"unchanged_programs\": {ties},\n    \
         \"regressed_programs\": {regressed},\n    \"pre_mean_cycles\": {:.1},\n    \
         \"post_mean_cycles\": {:.1},\n    \"hot_swaps\": {learn_swaps},\n    \
         \"versions\": [{}]\n  }},\n  \
         \"swap_drill\": {{\n    \"promotions\": {SWAPS},\n    \
         \"background_workers\": {WORKERS},\n    \
         \"background_requests_answered\": {answered},\n    \
         \"background_requests_dropped\": 0,\n    \
         \"swap_p50_ms\": {p50:.3},\n    \"swap_p99_ms\": {p99:.3},\n    \
         \"corrupt_candidate_refused\": true,\n    \
         \"corrupt_candidate_quarantined\": {quarantined}\n  }}\n}}\n",
        pre.len(),
        fmt_u64(&pre),
        fmt_u64(&post),
        mean(&pre),
        mean(&post),
        versions.join(", "),
    );
    print!("{json}");
    match std::fs::write("BENCH_online.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_online.json"),
        Err(e) => eprintln!("could not write BENCH_online.json: {e}"),
    }
    telemetry.finish();
}
