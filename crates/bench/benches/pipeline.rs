//! Criterion micro-benchmarks of the framework's hot paths: the cost of
//! one RL environment step decomposed into its parts (pass application,
//! scheduling, profiling, feature extraction), plus ablations called out
//! in DESIGN.md (chaining on/off, filtered vs. full observations).

use autophase_benchmarks::suite;
use autophase_core::env::{sequence_cycles, EnvConfig, PhaseOrderEnv};
use autophase_features::extract;
use autophase_hls::{profile::profile_module, schedule::schedule_function, HlsConfig};
use autophase_rl::env::Environment;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_passes(c: &mut Criterion) {
    let gsm = suite()
        .into_iter()
        .find(|b| b.name == "gsm")
        .unwrap()
        .module;
    c.bench_function("pass/mem2reg on gsm", |b| {
        b.iter(|| {
            let mut m = gsm.clone();
            autophase_passes::mem2reg::run(&mut m);
            black_box(m.num_insts())
        })
    });
    c.bench_function("pass/O3 pipeline on gsm", |b| {
        b.iter(|| {
            let mut m = gsm.clone();
            autophase_passes::o3::o3(&mut m);
            black_box(m.num_insts())
        })
    });
}

fn bench_hls(c: &mut Criterion) {
    let cfg = HlsConfig::default();
    let matmul = suite()
        .into_iter()
        .find(|b| b.name == "matmul")
        .unwrap()
        .module;
    c.bench_function("hls/schedule matmul", |b| {
        b.iter(|| {
            let fid = matmul.main().unwrap();
            black_box(schedule_function(matmul.func(fid), &cfg).total_states)
        })
    });
    c.bench_function("hls/profile matmul (trace + schedule)", |b| {
        b.iter(|| black_box(profile_module(&matmul, &cfg).unwrap().cycles))
    });
    // Ablation: operator chaining off (tiny clock period forces one op per
    // state) vs. the default 5 ns budget.
    let no_chain = HlsConfig {
        clock_period_ns: 0.1,
        ..HlsConfig::default()
    };
    c.bench_function("hls/profile matmul without chaining", |b| {
        b.iter(|| black_box(profile_module(&matmul, &no_chain).unwrap().cycles))
    });
}

fn bench_features(c: &mut Criterion) {
    let aes = suite()
        .into_iter()
        .find(|b| b.name == "aes")
        .unwrap()
        .module;
    c.bench_function("features/extract aes", |b| {
        b.iter(|| black_box(extract(&aes)))
    });
}

fn bench_env(c: &mut Criterion) {
    let gsm = suite()
        .into_iter()
        .find(|b| b.name == "gsm")
        .unwrap()
        .module;
    c.bench_function("env/reset+3 steps on gsm", |b| {
        b.iter(|| {
            let mut env = PhaseOrderEnv::single(gsm.clone(), EnvConfig::default());
            env.reset();
            env.step(38);
            env.step(23);
            env.step(31);
            black_box(env.last_cycles())
        })
    });
    // Ablation: filtered observation/action spaces vs. the full ones.
    let filtered = EnvConfig {
        filtered_features: true,
        filtered_passes: true,
        ..EnvConfig::default()
    };
    c.bench_function("env/reset+3 steps on gsm (filtered spaces)", |b| {
        b.iter(|| {
            let mut env = PhaseOrderEnv::single(gsm.clone(), filtered.clone());
            env.reset();
            env.step(16); // -mem2reg in the filtered list
            env.step(6);
            env.step(13);
            black_box(env.last_cycles())
        })
    });
    let hls = HlsConfig::default();
    c.bench_function("env/sequence_cycles 12-pass gsm", |b| {
        b.iter(|| {
            black_box(sequence_cycles(
                &gsm,
                &[38, 29, 23, 36, 30, 31, 7, 28, 32, 33, 30, 31],
                &hls,
            ))
        })
    });
}

fn bench_progen(c: &mut Criterion) {
    c.bench_function("progen/generate_valid", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(autophase_progen::generate_valid(
                &autophase_progen::GenConfig::default(),
                seed,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_passes,
    bench_hls,
    bench_features,
    bench_env,
    bench_progen
);
criterion_main!(benches);
