//! Concurrency stress for the flight recorder: many producers completing
//! traces while readers poll `recent`/`render_recent` (the `TRACE` wire
//! path). Asserts no torn traces, the capacity bound, and id continuity.

use autophase_telemetry::{FlightConfig, FlightRecorder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const PRODUCERS: usize = 8;
const PER_PRODUCER: usize = 2_000;
const CAPACITY: usize = 64;

#[test]
fn concurrent_producers_and_readers_never_tear() {
    let rec = Arc::new(FlightRecorder::new(FlightConfig {
        capacity: CAPACITY,
        ..FlightConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));

    // Readers hammer the ring exactly the way the TRACE verb does.
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let rec = Arc::clone(&rec);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut polls = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for t in rec.recent(CAPACITY) {
                        // A torn trace would violate the builder's
                        // invariants: stages sum exactly to total, and
                        // the outcome/note pair written together must be
                        // observed together.
                        let sum: u64 = t.stages.iter().map(|&(_, d)| d).sum();
                        assert_eq!(sum, t.total_ns, "torn trace id={}", t.id);
                        assert_eq!(t.stages.len(), 3, "torn stages id={}", t.id);
                        let tag = t.note("tag").expect("note missing");
                        assert_eq!(
                            t.outcome,
                            format!("ok:{tag}"),
                            "outcome/note mismatch id={}",
                            t.id
                        );
                    }
                    let rendered = rec.render_recent(8);
                    for line in rendered.lines() {
                        assert!(line.starts_with("{\"type\":\"trace\""), "bad line: {line}");
                        assert!(line.ends_with('}'), "truncated line: {line}");
                    }
                    polls += 1;
                }
                polls
            })
        })
        .collect();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut t = rec.begin();
                    t.mark("parse");
                    t.mark("rollout");
                    t.mark("reply_write");
                    t.note("tag", format!("p{p}i{i}"));
                    t.set_outcome(format!("ok:p{p}i{i}"));
                    rec.complete(t.finish());
                }
            })
        })
        .collect();

    for p in producers {
        p.join().expect("producer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_polls = 0;
    for r in readers {
        total_polls += r.join().expect("reader panicked");
    }
    assert!(total_polls > 0, "readers never ran");

    // Every completion was counted, ids were unique and dense.
    assert_eq!(rec.completed(), (PRODUCERS * PER_PRODUCER) as u64);

    // Capacity bound: the ring never returns more than CAPACITY traces,
    // and after quiescence all slots hold distinct recent ids.
    let recent = rec.recent(usize::MAX);
    assert_eq!(recent.len(), CAPACITY);
    let mut ids: Vec<u64> = recent.iter().map(|t| t.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), CAPACITY, "duplicate traces in ring");
}
