//! Property tests of the telemetry instruments: histogram buckets and
//! quantiles against a brute-force reference, and exact concurrent
//! counter sums (the "N threads × M increments loses nothing" contract).

use autophase_telemetry::metrics::{bucket_index, DEFAULT_BOUNDS};
use autophase_telemetry::{Counter, Histogram};
use proptest::prelude::*;
use std::sync::Arc;

/// Values that exercise every bucket regime: small, boundary-adjacent,
/// and overflow (beyond the last bound).
fn values() -> impl Strategy<Value = Vec<u64>> {
    collection::vec(
        prop_oneof![
            0u64..10,
            90u64..110,
            999u64..1_002,
            0u64..100_000,
            9_999_999_990u64..10_000_000_020,
        ],
        1..60,
    )
}

proptest! {
    /// Every value lands in the first bucket whose bound is ≥ it, and the
    /// histogram's bucket counts agree with a brute-force recount.
    #[test]
    fn buckets_match_reference(vs in values()) {
        let h = Histogram::default();
        let mut reference = vec![0u64; DEFAULT_BOUNDS.len() + 1];
        for &v in &vs {
            h.record(v);
            let i = bucket_index(v);
            if i < DEFAULT_BOUNDS.len() {
                prop_assert!(DEFAULT_BOUNDS[i] >= v);
                if i > 0 {
                    prop_assert!(DEFAULT_BOUNDS[i - 1] < v);
                }
            } else {
                prop_assert!(v > *DEFAULT_BOUNDS.last().unwrap());
            }
            reference[i] += 1;
        }
        prop_assert_eq!(h.bucket_counts(), reference);
        prop_assert_eq!(h.count(), vs.len() as u64);
        prop_assert_eq!(h.sum(), vs.iter().sum::<u64>());
        prop_assert_eq!(h.min(), *vs.iter().min().unwrap());
        prop_assert_eq!(h.max(), *vs.iter().max().unwrap());
    }

    /// `quantile(q)` covers at least `ceil(q·n)` of the recorded values,
    /// never exceeds the recorded maximum, and is monotone in `q`.
    #[test]
    fn quantile_covers_and_is_monotone(vs in values(), qi in 0usize..=20) {
        let q = qi as f64 / 20.0;
        let h = Histogram::default();
        for &v in &vs {
            h.record(v);
        }
        let b = h.quantile(q);
        let covered = vs.iter().filter(|&&v| v <= b).count() as u64;
        let target = ((q * vs.len() as f64).ceil() as u64).max(1);
        prop_assert!(
            covered >= target,
            "quantile({q}) = {b} covers {covered} of {} values, needs {target}",
            vs.len()
        );
        prop_assert!(b <= h.max());
        let mut prev = 0u64;
        for i in 0..=10 {
            let cur = h.quantile(i as f64 / 10.0);
            prop_assert!(cur >= prev, "quantile not monotone at {i}/10");
            prev = cur;
        }
    }

    /// The quantile answer is tight at bucket granularity: no smaller
    /// bucket bound (that is ≥ some value) also covers the target mass.
    #[test]
    fn quantile_is_bucket_tight(vs in values(), qi in 1usize..=20) {
        let q = qi as f64 / 20.0;
        let h = Histogram::default();
        for &v in &vs {
            h.record(v);
        }
        let b = h.quantile(q);
        let target = ((q * vs.len() as f64).ceil() as u64).max(1);
        // Any strictly smaller bucket bound must cover less than target.
        for &bound in DEFAULT_BOUNDS.iter().filter(|&&x| x < b) {
            let covered = vs.iter().filter(|&&v| v <= bound).count() as u64;
            prop_assert!(
                covered < target,
                "bound {bound} < quantile({q}) = {b} already covers {covered} >= {target}"
            );
        }
    }
}

/// N threads × M increments sum exactly — no lost updates.
#[test]
fn concurrent_counter_increments_sum_exactly() {
    for (threads, increments) in [(2usize, 10_000u64), (4, 25_000), (8, 50_000)] {
        let c = Arc::new(Counter::default());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..increments {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), threads as u64 * increments);
    }
}

/// Concurrent histogram recording loses no samples and keeps the count,
/// sum, and bucket totals consistent with each other.
#[test]
fn concurrent_histogram_records_sum_exactly() {
    let h = Arc::new(Histogram::default());
    let threads = 8usize;
    let per_thread = 20_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let h = Arc::clone(&h);
            scope.spawn(move || {
                for i in 0..per_thread {
                    h.record((t as u64 * per_thread + i) % 5_000);
                }
            });
        }
    });
    let total = threads as u64 * per_thread;
    assert_eq!(h.count(), total);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), total);
    // Each residue 0..5000 is hit total/5000 times; the sum is exact.
    assert_eq!(h.sum(), (0..5_000u64).sum::<u64>() * (total / 5_000));
}
