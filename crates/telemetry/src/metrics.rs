//! The instrument registry: counters, gauges, and fixed-bucket histograms.
//!
//! Instruments are keyed by a `'static` name plus a dynamic label and are
//! registered on first use. Handles are `Arc`s: fetch once, record with
//! relaxed atomics forever after. [`Registry::reset`] zeroes values in
//! place, so cached handles survive resets.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins measurement (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Adjust the gauge by `delta` (negative to decrement). Lock-free
    /// CAS loop over the f64 bits, so concurrent adjusters never lose an
    /// update — the primitive behind level-style gauges (queue depth,
    /// in-flight requests) that `set` cannot maintain across threads.
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// Upper bounds of the default histogram buckets: a 1–2–5 ladder from 1
/// to 10^10, wide enough for nanosecond timings (1 ns – 10 s), cycle
/// counts, and FSM-state counts alike. Values above the last bound land
/// in an overflow bucket whose effective bound is the observed maximum.
pub const DEFAULT_BOUNDS: [u64; 31] = [
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// A fixed-bucket histogram over `u64` values.
///
/// Recording is a bucket lookup (binary search over 31 static bounds)
/// plus five relaxed atomic RMWs — no locks, no allocation. Quantiles are
/// answered from the bucket counts: `quantile(q)` returns the smallest
/// bucket upper bound `b` such that at least `ceil(q · count)` recorded
/// values are ≤ `b` (for the overflow bucket, the observed maximum).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>, // one per bound + overflow
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..=DEFAULT_BOUNDS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket a value falls into (the first bound ≥ value, or
/// the overflow bucket).
pub fn bucket_index(value: u64) -> usize {
    DEFAULT_BOUNDS.partition_point(|&b| b < value)
}

impl Histogram {
    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Upper bound covering quantile `q ∈ [0, 1]`: the smallest bucket
    /// bound `b` with `#(values ≤ b) ≥ ceil(q · count)`. Returns 0 on an
    /// empty histogram; the overflow bucket answers with the recorded
    /// maximum, so the result is always a value that was actually
    /// reachable.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return if i < DEFAULT_BOUNDS.len() {
                    DEFAULT_BOUNDS[i].min(self.max())
                } else {
                    self.max()
                };
            }
        }
        self.max()
    }

    /// Quantile estimate with linear interpolation inside the covering
    /// bucket: where [`Histogram::quantile`] answers with a bucket upper
    /// bound (exact coverage semantics, coarse on a 1-2-5 ladder),
    /// `quantile_interp` assumes values are uniformly distributed within
    /// their bucket and interpolates between the bucket's bounds — the
    /// standard Prometheus-style estimator, and what latency dashboards
    /// want (a p50 of "somewhere around 7.3 ms", not "≤ 10 ms").
    ///
    /// The answer is clamped to the observed `[min, max]`, so it is
    /// always a value that was actually reachable; an empty histogram
    /// answers 0.
    pub fn quantile_interp(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        // Continuous rank (0-based): the value below which q of the
        // probability mass sits.
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let in_bucket = b.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if (cum + in_bucket) as f64 >= rank {
                let lower = if i == 0 { 0 } else { DEFAULT_BOUNDS[i - 1] };
                let upper = if i < DEFAULT_BOUNDS.len() {
                    DEFAULT_BOUNDS[i]
                } else {
                    // Overflow bucket: its effective upper bound is the
                    // observed maximum.
                    self.max()
                };
                let frac = ((rank - cum as f64) / in_bucket as f64).clamp(0.0, 1.0);
                let est = lower as f64 + frac * (upper.saturating_sub(lower)) as f64;
                return est.clamp(self.min() as f64, self.max() as f64);
            }
            cum += in_bucket;
        }
        self.max() as f64
    }

    /// Per-bucket counts aligned with [`DEFAULT_BOUNDS`] plus the
    /// overflow bucket as the last element.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Instrument name.
    pub name: &'static str,
    /// Instrument label.
    pub label: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Instrument name.
    pub name: &'static str,
    /// Instrument label.
    pub label: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: &'static str,
    /// Instrument label.
    pub label: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median estimate, interpolated (see [`Histogram::quantile_interp`]).
    pub p50: u64,
    /// 90th-percentile estimate, interpolated.
    pub p90: u64,
    /// 95th-percentile estimate, interpolated.
    pub p95: u64,
    /// 99th-percentile estimate, interpolated.
    pub p99: u64,
    /// Non-cumulative `(bucket upper bound, count)` pairs for non-empty
    /// buckets; the overflow bucket reports bound `u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
}

/// Everything the registry holds, sorted by `(name, label)`.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

type Shelf<T> = RwLock<HashMap<&'static str, HashMap<String, Arc<T>>>>;

/// The thread-safe instrument registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Shelf<Counter>,
    gauges: Shelf<Gauge>,
    histograms: Shelf<Histogram>,
}

fn fetch<T: Default>(shelf: &Shelf<T>, name: &'static str, label: &str) -> Arc<T> {
    if let Some(found) = shelf
        .read()
        .expect("telemetry registry poisoned")
        .get(name)
        .and_then(|m| m.get(label))
    {
        return Arc::clone(found);
    }
    let mut map = shelf.write().expect("telemetry registry poisoned");
    Arc::clone(
        map.entry(name)
            .or_default()
            .entry(label.to_string())
            .or_default(),
    )
}

impl Registry {
    /// Fetch (registering on first use) a counter.
    pub fn counter(&self, name: &'static str, label: &str) -> Arc<Counter> {
        fetch(&self.counters, name, label)
    }

    /// Fetch (registering on first use) a gauge.
    pub fn gauge(&self, name: &'static str, label: &str) -> Arc<Gauge> {
        fetch(&self.gauges, name, label)
    }

    /// Fetch (registering on first use) a histogram.
    pub fn histogram(&self, name: &'static str, label: &str) -> Arc<Histogram> {
        fetch(&self.histograms, name, label)
    }

    /// Zero every instrument in place. Cached handles stay valid.
    pub fn reset(&self) {
        for m in self.counters.read().expect("poisoned").values() {
            m.values().for_each(|c| c.reset());
        }
        for m in self.gauges.read().expect("poisoned").values() {
            m.values().for_each(|g| g.reset());
        }
        for m in self.histograms.read().expect("poisoned").values() {
            m.values().for_each(|h| h.reset());
        }
    }

    /// Snapshot every instrument, sorted by `(name, label)`.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (&name, m) in self.counters.read().expect("poisoned").iter() {
            for (label, c) in m {
                snap.counters.push(CounterSnapshot {
                    name,
                    label: label.clone(),
                    value: c.value(),
                });
            }
        }
        for (&name, m) in self.gauges.read().expect("poisoned").iter() {
            for (label, g) in m {
                snap.gauges.push(GaugeSnapshot {
                    name,
                    label: label.clone(),
                    value: g.value(),
                });
            }
        }
        for (&name, m) in self.histograms.read().expect("poisoned").iter() {
            for (label, h) in m {
                let counts = h.bucket_counts();
                let buckets = counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| (DEFAULT_BOUNDS.get(i).copied().unwrap_or(u64::MAX), c))
                    .collect();
                snap.histograms.push(HistogramSnapshot {
                    name,
                    label: label.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    p50: h.quantile_interp(0.5).round() as u64,
                    p90: h.quantile_interp(0.9).round() as u64,
                    p95: h.quantile_interp(0.95).round() as u64,
                    p99: h.quantile_interp(0.99).round() as u64,
                    buckets,
                });
            }
        }
        snap.counters
            .sort_by(|a, b| (a.name, &a.label).cmp(&(b.name, &b.label)));
        snap.gauges
            .sort_by(|a, b| (a.name, &a.label).cmp(&(b.name, &b.label)));
        snap.histograms
            .sort_by(|a, b| (a.name, &a.label).cmp(&(b.name, &b.label)));
        snap
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::default();
        let c = r.counter("m.count", "a");
        c.add(3);
        c.add(4);
        assert_eq!(r.counter("m.count", "a").value(), 7);
        assert_eq!(r.counter("m.count", "b").value(), 0);
        let g = r.gauge("m.gauge", "");
        g.set(-1.5);
        assert_eq!(r.gauge("m.gauge", "").value(), -1.5);
    }

    #[test]
    fn histogram_basic_stats() {
        let h = Histogram::default();
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1111);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 1111.0 / 4.0);
        // Two of four values ≤ 10 → the median bucket bound is 10.
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let h = Histogram::default();
        let big = *DEFAULT_BOUNDS.last().unwrap() + 123;
        h.record(big);
        assert_eq!(h.quantile(0.5), big);
        assert_eq!(h.max(), big);
    }

    #[test]
    fn bucket_index_is_first_bound_geq() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(10_000_000_000), DEFAULT_BOUNDS.len() - 1);
        assert_eq!(bucket_index(10_000_000_001), DEFAULT_BOUNDS.len());
    }

    #[test]
    fn interpolated_quantiles_track_a_uniform_distribution() {
        // Uniform 1..=10_000: the true quantile q sits at ~q·10_000.
        // Interpolation inside 1-2-5 buckets must land within one bucket
        // width of the truth — far tighter than the bucket-bound answer.
        let h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, truth) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let est = h.quantile_interp(q);
            let err = (est - truth).abs() / truth;
            assert!(
                err < 0.05,
                "quantile_interp({q}) = {est}, want ~{truth} (err {err:.3})"
            );
        }
        // Exact at the distribution edges.
        assert_eq!(h.quantile_interp(0.0), 1.0);
        assert_eq!(h.quantile_interp(1.0), 10_000.0);
    }

    #[test]
    fn interpolated_quantiles_on_point_masses_are_exact() {
        // All mass at one value: every quantile is that value (the
        // clamp to [min, max] pins it even mid-bucket).
        let h = Histogram::default();
        for _ in 0..1000 {
            h.record(700);
        }
        for q in [0.01, 0.5, 0.95, 0.99] {
            assert_eq!(h.quantile_interp(q), 700.0, "q={q}");
        }
        // Two point masses 10 and 1000, 90/10 split: p50 lives in the
        // bucket holding 10, p99 in the bucket holding 1000.
        let h = Histogram::default();
        for _ in 0..900 {
            h.record(10);
        }
        for _ in 0..100 {
            h.record(1000);
        }
        assert!(h.quantile_interp(0.5) <= 10.0, "{}", h.quantile_interp(0.5));
        assert!(
            h.quantile_interp(0.99) > 500.0,
            "{}",
            h.quantile_interp(0.99)
        );
        assert!(h.quantile_interp(0.99) <= 1000.0);
    }

    #[test]
    fn interpolated_quantiles_are_monotone_and_bounded() {
        let h = Histogram::default();
        for v in [3u64, 17, 17, 40, 999, 2_000_000, 12_345_678_901] {
            h.record(v);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let est = h.quantile_interp(q);
            assert!(est >= prev, "not monotone at q={q}: {est} < {prev}");
            assert!(est >= h.min() as f64 && est <= h.max() as f64);
            prev = est;
        }
        // Overflow-bucket values interpolate up to the observed max.
        assert_eq!(h.quantile_interp(1.0), 12_345_678_901.0);
    }

    #[test]
    fn empty_histogram_interp_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_interp(0.5), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::default();
        r.counter("z.last", "").add(1);
        r.counter("a.first", "y").add(2);
        r.counter("a.first", "x").add(3);
        let s = r.snapshot();
        let keys: Vec<(&str, &str)> = s
            .counters
            .iter()
            .map(|c| (c.name, c.label.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![("a.first", "x"), ("a.first", "y"), ("z.last", "")]
        );
    }
}
