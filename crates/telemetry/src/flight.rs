//! The flight recorder: request-scoped traces, a fixed-capacity ring of
//! the most recent ones, and crash/slow-path dump artifacts.
//!
//! A [`TraceBuilder`] rides along with one request and records a linear
//! timeline of *stage marks*: `mark("parse")` means "the phase named
//! `parse` just ended (it began at the previous mark, or at the trace's
//! start)". Because stages are consecutive segments of one timeline, the
//! per-stage durations of a finished [`RequestTrace`] sum **exactly** to
//! its total — per-stage histograms built from traces decompose
//! end-to-end latency with nothing missing and nothing counted twice.
//!
//! Completed traces land in a [`FlightRecorder`]: a fixed-capacity ring
//! whose memory bound is `capacity × (one Arc + one trace)` — the ring
//! holds `Arc`s, so readers never copy a trace and writers never block
//! on readers. Slot claiming is a single `fetch_add` (wait-free); each
//! slot is guarded by its own micro-mutex held only for a pointer swap
//! or clone, so there is no global lock and no tearing: a reader sees
//! either the old trace or the new one, always whole.
//!
//! When a completed trace looks like trouble — it recorded a fault, its
//! outcome is on the configured dump list (deadline refusals, sheds), or
//! it exceeded the slow threshold — the recorder snapshots the offending
//! trace plus the recent ring contents to a JSONL artifact, so the
//! post-mortem for "why was request 48211 slow at 03:12" needs no repro:
//! the evidence is already on disk. Dumps are rate-limited by
//! [`FlightConfig::max_dumps`] so a failure flood cannot fill the disk.

use crate::sink::json_escape;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A request trace under construction. Created by
/// [`FlightRecorder::begin`]; finished with [`TraceBuilder::finish`].
#[derive(Debug)]
pub struct TraceBuilder {
    id: u64,
    start: Instant,
    start_unix_ms: u64,
    /// Nanoseconds from `start` to the last mark (the next segment's
    /// starting offset).
    last_ns: u64,
    stages: Vec<(&'static str, u64)>,
    notes: Vec<(&'static str, String)>,
    fault_stage: Option<&'static str>,
    outcome: Option<String>,
}

impl TraceBuilder {
    fn new(id: u64) -> TraceBuilder {
        TraceBuilder {
            id,
            start: Instant::now(),
            start_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            last_ns: 0,
            stages: Vec::with_capacity(8),
            notes: Vec::new(),
            fault_stage: None,
            outcome: None,
        }
    }

    /// The trace's monotonic request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The instant the trace began — callers that need a deadline
    /// anchored to "request accepted" use this rather than a second
    /// clock read.
    pub fn start(&self) -> Instant {
        self.start
    }

    /// Close the current segment: the phase named `stage` ran from the
    /// previous mark (or the start) until now.
    pub fn mark(&mut self, stage: &'static str) {
        let now_ns = self.start.elapsed().as_nanos() as u64;
        self.stages
            .push((stage, now_ns.saturating_sub(self.last_ns)));
        self.last_ns = now_ns;
    }

    /// Attach a key/value annotation (batch size, pass id, source, …).
    pub fn note(&mut self, key: &'static str, value: impl std::fmt::Display) {
        self.notes.push((key, value.to_string()));
    }

    /// Record that a fault surfaced while `stage` was running. The first
    /// fault wins — it is the one that knocked the request off its happy
    /// path.
    pub fn fault(&mut self, stage: &'static str) {
        self.fault_stage.get_or_insert(stage);
    }

    /// Whether a fault has been recorded.
    pub fn faulted(&self) -> bool {
        self.fault_stage.is_some()
    }

    /// Set the request outcome (`ok:store`, `refused:deadline`, …). Last
    /// write wins; unset finishes as `"unknown"`.
    pub fn set_outcome(&mut self, outcome: impl Into<String>) {
        self.outcome = Some(outcome.into());
    }

    /// Seal the trace. Total time is the sum of the recorded segments
    /// (i.e. up to the last mark), so stage durations always decompose
    /// the total exactly.
    pub fn finish(self) -> RequestTrace {
        RequestTrace {
            id: self.id,
            start_unix_ms: self.start_unix_ms,
            total_ns: self.last_ns,
            outcome: self.outcome.unwrap_or_else(|| "unknown".to_string()),
            stages: self.stages,
            notes: self.notes,
            fault_stage: self.fault_stage,
        }
    }
}

/// A completed, immutable request trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Monotonic request id (assigned at [`FlightRecorder::begin`]).
    pub id: u64,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub start_unix_ms: u64,
    /// Total nanoseconds across all stages (exactly the sum of
    /// `stages[..].1`).
    pub total_ns: u64,
    /// What became of the request (`ok:store`, `ok:policy`,
    /// `ok:baseline`, `refused:<kind>`, …).
    pub outcome: String,
    /// Consecutive `(stage, duration_ns)` segments, in timeline order.
    pub stages: Vec<(&'static str, u64)>,
    /// Free-form `(key, value)` annotations.
    pub notes: Vec<(&'static str, String)>,
    /// The stage a fault surfaced in, if any.
    pub fault_stage: Option<&'static str>,
}

impl RequestTrace {
    /// Duration of the named stage, if it was recorded (first match).
    pub fn stage_ns(&self, stage: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|&(_, d)| d)
    }

    /// Value of the named note, if recorded (first match).
    pub fn note(&self, key: &str) -> Option<&str> {
        self.notes
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// One JSON object, no trailing newline:
    /// `{"type":"trace","id":…,"stages":[["parse",1234],…],…}`.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"type\":\"trace\",\"id\":{},\"start_unix_ms\":{},\"total_ns\":{},\"outcome\":\"{}\"",
            self.id,
            self.start_unix_ms,
            self.total_ns,
            json_escape(&self.outcome)
        );
        match self.fault_stage {
            Some(s) => {
                let _ = write!(out, ",\"fault_stage\":\"{}\"", json_escape(s));
            }
            None => out.push_str(",\"fault_stage\":null"),
        }
        out.push_str(",\"stages\":[");
        for (i, (stage, ns)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[\"{}\",{ns}]", json_escape(stage));
        }
        out.push_str("],\"notes\":[");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[\"{}\",\"{}\"]", json_escape(k), json_escape(v));
        }
        out.push_str("]}");
        out
    }
}

/// Flight-recorder knobs.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Ring capacity: how many recent traces are kept (the memory bound
    /// is `capacity` traces, each a few hundred bytes).
    pub capacity: usize,
    /// A completed trace slower than this triggers a dump (`None`
    /// disables the slow trigger).
    pub slow_threshold: Option<Duration>,
    /// Where dump artifacts are written (`None` disables dumps
    /// entirely; the ring still records).
    pub dump_dir: Option<PathBuf>,
    /// Hard cap on dump artifacts per recorder lifetime — a failure
    /// flood must not fill the disk.
    pub max_dumps: usize,
    /// Rotation: at most this many `flight-*.jsonl` files are kept in
    /// the dump directory; writing a new one deletes the oldest beyond
    /// the cap. Unlike [`max_dumps`](FlightConfig::max_dumps) (which
    /// bounds one recorder's lifetime), this bounds the *directory*
    /// across daemon restarts. 0 disables rotation.
    pub max_dump_files: usize,
    /// Outcomes that trigger a dump on sight (e.g. `refused:deadline`,
    /// `refused:overloaded`). Matched exactly.
    pub dump_outcomes: Vec<String>,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            capacity: 256,
            slow_threshold: None,
            dump_dir: None,
            max_dumps: 32,
            max_dump_files: 64,
            dump_outcomes: Vec::new(),
        }
    }
}

/// Why a dump artifact was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpTrigger {
    /// The trace recorded a fault (`fault_stage` is set).
    Fault,
    /// The trace's outcome is on [`FlightConfig::dump_outcomes`].
    Outcome,
    /// The trace exceeded [`FlightConfig::slow_threshold`].
    Slow,
}

impl DumpTrigger {
    fn as_str(self) -> &'static str {
        match self {
            DumpTrigger::Fault => "fault",
            DumpTrigger::Outcome => "outcome",
            DumpTrigger::Slow => "slow",
        }
    }
}

/// The ring of recent traces plus the dump machinery (see module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    next_id: AtomicU64,
    /// Total completed traces (the ring write head; slot = head % cap).
    head: AtomicU64,
    slots: Vec<Mutex<Option<Arc<RequestTrace>>>>,
    dumps_written: AtomicUsize,
}

impl FlightRecorder {
    /// Build a recorder. Capacity is clamped to at least 1.
    pub fn new(cfg: FlightConfig) -> FlightRecorder {
        let capacity = cfg.capacity.max(1);
        FlightRecorder {
            next_id: AtomicU64::new(0),
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            dumps_written: AtomicUsize::new(0),
            cfg: FlightConfig { capacity, ..cfg },
        }
    }

    /// Start a trace with the next monotonic request id.
    pub fn begin(&self) -> TraceBuilder {
        TraceBuilder::new(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Number of traces completed over the recorder's lifetime.
    pub fn completed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Dump artifacts written so far.
    pub fn dumps_written(&self) -> usize {
        self.dumps_written.load(Ordering::Relaxed)
    }

    /// Record a completed trace into the ring and fire any dump trigger
    /// it matches. Returns the shared trace (and the dump path, when one
    /// was written).
    pub fn complete(&self, trace: RequestTrace) -> (Arc<RequestTrace>, Option<PathBuf>) {
        let trigger = if trace.fault_stage.is_some() {
            Some(DumpTrigger::Fault)
        } else if self.cfg.dump_outcomes.contains(&trace.outcome) {
            Some(DumpTrigger::Outcome)
        } else if self
            .cfg
            .slow_threshold
            .is_some_and(|t| trace.total_ns > t.as_nanos() as u64)
        {
            Some(DumpTrigger::Slow)
        } else {
            None
        };
        let trace = Arc::new(trace);
        let idx = (self.head.fetch_add(1, Ordering::AcqRel) as usize) % self.cfg.capacity;
        *self.slots[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&trace));
        crate::incr("flight.completed", "", 1);
        let path = trigger.and_then(|t| self.dump(t, &trace));
        (trace, path)
    }

    /// The most recent completed traces, newest first, at most
    /// `min(k, capacity)` of them.
    pub fn recent(&self, k: usize) -> Vec<Arc<RequestTrace>> {
        let head = self.head.load(Ordering::Acquire);
        let want = k.min(self.cfg.capacity).min(head as usize);
        let mut out = Vec::with_capacity(want);
        for back in 1..=want as u64 {
            let idx = ((head - back) as usize) % self.cfg.capacity;
            let slot = self.slots[idx].lock().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = slot.as_ref() {
                out.push(Arc::clone(t));
            }
        }
        out
    }

    /// The most recent `k` traces rendered as JSONL, newest first.
    pub fn render_recent(&self, k: usize) -> String {
        let mut out = String::new();
        for t in self.recent(k) {
            out.push_str(&t.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Write a dump artifact: a header line naming the trigger, the
    /// offending trace, then the recent ring contents (newest first).
    /// Returns the path, or `None` when dumps are disabled, the cap is
    /// reached, or the write failed (dumping must never take the
    /// service down).
    fn dump(&self, trigger: DumpTrigger, offending: &Arc<RequestTrace>) -> Option<PathBuf> {
        let dir = self.cfg.dump_dir.as_ref()?;
        // Rate limit: claim a dump slot, give it back on any failure.
        let claimed = self
            .dumps_written
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.cfg.max_dumps).then_some(n + 1)
            })
            .is_ok();
        if !claimed {
            crate::incr("flight.dump_suppressed", trigger.as_str(), 1);
            return None;
        }
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{{\"type\":\"flight_dump\",\"trigger\":\"{}\",\"offending_id\":{},\"fault_stage\":{},\"unix_ms\":{}}}",
            trigger.as_str(),
            offending.id,
            match offending.fault_stage {
                Some(s) => format!("\"{}\"", json_escape(s)),
                None => "null".to_string(),
            },
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0)
        );
        body.push_str(&offending.to_json_line());
        body.push('\n');
        for t in self.recent(self.cfg.capacity) {
            if t.id != offending.id {
                body.push_str(&t.to_json_line());
                body.push('\n');
            }
        }
        let file = format!("flight-{:08}-{}.jsonl", offending.id, trigger.as_str());
        let path = crate::sink::write_artifact(dir.to_str()?, &file, &body)?;
        crate::incr("flight.dump", trigger.as_str(), 1);
        rotate_dumps(dir, self.cfg.max_dump_files);
        Some(path)
    }
}

/// Keep the newest `keep` `flight-*.jsonl` artifacts in `dir`, deleting
/// the rest (oldest first, by modification time with the file name as a
/// deterministic tie-break). Deleted files land in the
/// `flight.dump_rotated` counter. Every error is swallowed — rotation is
/// hygiene, and hygiene must never take the service down.
fn rotate_dumps(dir: &std::path::Path, keep: usize) {
    if keep == 0 {
        return;
    }
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut dumps: Vec<(std::time::SystemTime, String, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_str()?.to_string();
            if !(name.starts_with("flight-") && name.ends_with(".jsonl")) {
                return None;
            }
            let mtime = e
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(UNIX_EPOCH);
            Some((mtime, name, e.path()))
        })
        .collect();
    if dumps.len() <= keep {
        return;
    }
    dumps.sort();
    let excess = dumps.len() - keep;
    let mut rotated = 0u64;
    for (_, _, path) in dumps.into_iter().take(excess) {
        if std::fs::remove_file(path).is_ok() {
            rotated += 1;
        }
    }
    if rotated > 0 {
        crate::incr("flight.dump_rotated", "", rotated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(
        rec: &FlightRecorder,
        outcome: &str,
        stages: &[(&'static str, u64)],
    ) -> RequestTrace {
        let mut t = rec.begin();
        for &(s, _) in stages {
            t.mark(s);
        }
        t.set_outcome(outcome);
        t.finish()
    }

    #[test]
    fn stage_durations_sum_exactly_to_total() {
        let rec = FlightRecorder::new(FlightConfig::default());
        let mut t = rec.begin();
        std::thread::sleep(Duration::from_millis(1));
        t.mark("parse");
        std::thread::sleep(Duration::from_millis(1));
        t.mark("store");
        t.mark("reply_write");
        t.set_outcome("ok:store");
        let done = t.finish();
        let sum: u64 = done.stages.iter().map(|&(_, d)| d).sum();
        assert_eq!(sum, done.total_ns);
        assert_eq!(done.stages.len(), 3);
        assert!(done.stage_ns("parse").unwrap() >= 1_000_000);
    }

    #[test]
    fn ring_keeps_the_newest_capacity_traces() {
        let rec = FlightRecorder::new(FlightConfig {
            capacity: 4,
            ..FlightConfig::default()
        });
        for i in 0..10 {
            let done = finished(&rec, &format!("ok:{i}"), &[("a", 0)]);
            rec.complete(done);
        }
        let recent = rec.recent(100);
        assert_eq!(recent.len(), 4, "capacity bound violated");
        let ids: Vec<u64> = recent.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![9, 8, 7, 6], "not newest-first");
        assert_eq!(rec.completed(), 10);
        // A smaller ask returns exactly that many.
        assert_eq!(rec.recent(2).len(), 2);
    }

    #[test]
    fn json_lines_are_escaped_and_shaped() {
        let rec = FlightRecorder::new(FlightConfig::default());
        let mut t = rec.begin();
        t.mark("parse");
        t.note("detail", "quote\" and \\slash\nnewline");
        t.fault("parse");
        t.set_outcome("refused:parse");
        let line = t.finish().to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(!line.contains('\n'), "{line}");
        assert!(line.contains("\"fault_stage\":\"parse\""), "{line}");
        assert!(line.contains("quote\\\" and \\\\slash\\nnewline"), "{line}");
    }

    #[test]
    fn fault_first_wins_and_triggers_a_dump() {
        let dir = std::env::temp_dir().join(format!("autophase_flight_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(FlightConfig {
            dump_dir: Some(dir.clone()),
            ..FlightConfig::default()
        });
        // Some context traffic first.
        for _ in 0..3 {
            let done = finished(&rec, "ok:policy", &[("a", 0)]);
            rec.complete(done);
        }
        let mut t = rec.begin();
        t.mark("rollout");
        t.fault("rollout");
        t.fault("profile"); // later fault must not overwrite the first
        t.set_outcome("ok:baseline");
        let (_, path) = rec.complete(t.finish());
        let path = path.expect("fault must dump");
        let body = std::fs::read_to_string(&path).unwrap();
        let mut lines = body.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"trigger\":\"fault\""), "{header}");
        assert!(header.contains("\"fault_stage\":\"rollout\""), "{header}");
        // Offending trace first, then the ring context.
        assert!(lines
            .next()
            .unwrap()
            .contains("\"fault_stage\":\"rollout\""));
        assert!(body.lines().count() >= 5, "ring context missing:\n{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_and_outcome_triggers_fire_and_rate_limit_holds() {
        let dir = std::env::temp_dir().join(format!("autophase_flight_rl_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(FlightConfig {
            dump_dir: Some(dir.clone()),
            slow_threshold: Some(Duration::from_nanos(1)),
            dump_outcomes: vec!["refused:deadline".to_string()],
            max_dumps: 2,
            ..FlightConfig::default()
        });
        // Outcome trigger.
        let mut t = rec.begin();
        t.mark("queue_wait");
        t.set_outcome("refused:deadline");
        let (_, p1) = rec.complete(t.finish());
        assert!(p1.is_some(), "outcome trigger did not dump");
        // Slow trigger (1 ns threshold: any real trace exceeds it).
        let mut t = rec.begin();
        std::thread::sleep(Duration::from_millis(1));
        t.mark("rollout");
        t.set_outcome("ok:policy");
        let (_, p2) = rec.complete(t.finish());
        assert!(p2.is_some(), "slow trigger did not dump");
        // Cap reached: further triggers are suppressed, service goes on.
        let mut t = rec.begin();
        std::thread::sleep(Duration::from_millis(1));
        t.mark("rollout");
        t.set_outcome("ok:policy");
        let (_, p3) = rec.complete(t.finish());
        assert!(p3.is_none(), "max_dumps not enforced");
        assert_eq!(rec.dumps_written(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_rotation_keeps_only_the_newest_files() {
        let dir = std::env::temp_dir().join(format!("autophase_flight_rot_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(FlightConfig {
            dump_dir: Some(dir.clone()),
            max_dumps: 16,
            max_dump_files: 3,
            ..FlightConfig::default()
        });
        for _ in 0..6 {
            let mut t = rec.begin();
            t.mark("rollout");
            t.fault("rollout");
            t.set_outcome("ok:baseline");
            let (_, path) = rec.complete(t.finish());
            assert!(path.is_some(), "fault must dump");
        }
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .filter(|n| n.starts_with("flight-") && n.ends_with(".jsonl"))
            .collect();
        names.sort();
        assert_eq!(names.len(), 3, "rotation cap violated: {names:?}");
        // Zero-padded ids sort lexicographically: the survivors are the
        // three newest dumps.
        assert!(
            names[0].starts_with("flight-00000003"),
            "oldest kept was {names:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dumps_disabled_without_a_dir() {
        let rec = FlightRecorder::new(FlightConfig {
            slow_threshold: Some(Duration::from_nanos(1)),
            ..FlightConfig::default()
        });
        let mut t = rec.begin();
        std::thread::sleep(Duration::from_millis(1));
        t.mark("a");
        t.set_outcome("ok:policy");
        let (_, path) = rec.complete(t.finish());
        assert!(path.is_none());
        assert_eq!(rec.dumps_written(), 0);
    }
}
