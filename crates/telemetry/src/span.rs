//! Hierarchical timing spans with a RAII guard.
//!
//! A span names a region of work. Spans opened while another span is
//! live on the same thread nest under it: the guard pushes the name onto
//! a thread-local stack at entry and pops it at drop, and the span's
//! *path* is the stack joined with `/` (e.g.
//! `rollout.batch/rollout.worker/rollout.episode` — the worker pool's
//! three levels). Each close records the duration into the `span_ns`
//! histogram labelled with the path, and appends a [`SpanEvent`] to a
//! bounded in-memory log (for the JSONL sink and the nesting tests).
//!
//! Spans are for episode-granularity regions and coarser; per-pass timing
//! uses plain histograms to stay lock-free.

use crate::metrics;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Cap on retained span events; beyond it closes are counted, not stored.
pub const EVENT_CAP: usize = 1 << 16;

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// `/`-joined names from the thread's outermost live span to this one.
    pub path: String,
    /// This span's own name (the path's last segment).
    pub name: &'static str,
    /// Nesting depth (1 = no enclosing span).
    pub depth: usize,
    /// Telemetry-assigned id of the recording thread (stable within a
    /// process, dense from 0).
    pub thread: u64,
    /// Start offset from the telemetry epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

static EVENTS: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Pin the epoch all span start offsets are measured from. Idempotent;
/// called by [`crate::enable`].
pub(crate) fn init_epoch() {
    EPOCH.get_or_init(Instant::now);
}

/// Open a span. When telemetry is disabled this is a no-op guard (one
/// relaxed load, no clock read).
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    init_epoch();
    let (path, depth) = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        (s.join("/"), s.len())
    });
    SpanGuard {
        live: Some(LiveSpan {
            start: Instant::now(),
            path,
            name,
            depth,
        }),
    }
}

struct LiveSpan {
    start: Instant,
    path: String,
    name: &'static str,
    depth: usize,
}

/// RAII guard returned by [`span`]; records the span when dropped.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur_ns = live.start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        // Record even if telemetry was disabled mid-span: the stack must
        // stay balanced either way, and a half-measured region is still a
        // real measurement.
        metrics::global()
            .histogram("span_ns", &live.path)
            .record(dur_ns);
        let epoch = *EPOCH.get_or_init(Instant::now);
        let start_ns = live.start.duration_since(epoch).as_nanos() as u64;
        let event = SpanEvent {
            path: live.path,
            name: live.name,
            depth: live.depth,
            thread: THREAD_ID.with(|&id| id),
            start_ns,
            dur_ns,
        };
        let mut events = EVENTS.lock().expect("span event log poisoned");
        if events.len() < EVENT_CAP {
            events.push(event);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// All retained span events, in close order.
pub fn span_events() -> Vec<SpanEvent> {
    EVENTS.lock().expect("span event log poisoned").clone()
}

/// How many span closes were discarded after [`EVENT_CAP`] filled up.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Drop all retained events (used by [`crate::reset`]).
pub(crate) fn clear_events() {
    EVENTS.lock().expect("span event log poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
            }
            {
                let _c = span("inner");
            }
        }
        crate::disable();
        let events = span_events();
        let inner: Vec<&SpanEvent> = events.iter().filter(|e| e.name == "inner").collect();
        let outer: Vec<&SpanEvent> = events.iter().filter(|e| e.name == "outer").collect();
        assert_eq!(inner.len(), 2);
        assert_eq!(outer.len(), 1);
        assert!(inner
            .iter()
            .all(|e| e.path == "outer/inner" && e.depth == 2));
        assert_eq!(outer[0].path, "outer");
        assert_eq!(outer[0].depth, 1);
        // Children close before the parent and fit inside its interval.
        for e in inner {
            assert!(e.start_ns >= outer[0].start_ns);
            assert!(e.start_ns + e.dur_ns <= outer[0].start_ns + outer[0].dur_ns);
        }
        crate::reset();
    }

    #[test]
    fn disabled_spans_are_noops() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::disable();
        {
            let _a = span("never");
        }
        assert!(span_events().iter().all(|e| e.name != "never"));
    }

    #[test]
    fn sibling_threads_do_not_nest() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        let _outer = span("parent");
        let handle = std::thread::spawn(|| {
            let _s = span("child-thread");
        });
        handle.join().unwrap();
        drop(_outer);
        crate::disable();
        let events = span_events();
        let child = events
            .iter()
            .find(|e| e.name == "child-thread")
            .expect("recorded");
        // A fresh thread has its own empty stack: no inherited parent.
        assert_eq!(child.path, "child-thread");
        assert_eq!(child.depth, 1);
        crate::reset();
    }
}
