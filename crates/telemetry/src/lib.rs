//! Workspace-wide telemetry: spans, counters, gauges, and histograms.
//!
//! Every layer of the reproduction — pass application, HLS profiling, the
//! evaluation cache, RL training — reports into one global, thread-safe
//! registry through this crate. The design constraints, in order:
//!
//! 1. **Observational only.** Nothing recorded here may feed back into
//!    behaviour. Instruments are write-only from the instrumented code's
//!    point of view; only sinks read them. The workspace's determinism
//!    suites run with telemetry on and off and assert bit-identical
//!    results.
//! 2. **True no-op when disabled.** The hot path pays exactly one relaxed
//!    atomic load ([`enabled`]) and an untaken branch. No clocks are read,
//!    no locks taken, no allocation happens.
//! 3. **Lock-free when enabled (hot instruments).** Counters, gauges, and
//!    histogram recording are a handful of relaxed atomic RMWs. Only span
//!    *events* (episode granularity and coarser) and first-time instrument
//!    registration take a lock.
//! 4. **Self-contained.** The workspace builds offline against vendored
//!    crates only, so this crate uses nothing beyond `std` atomics and
//!    `std::time`.
//!
//! # Naming conventions
//!
//! Instrument names are static `layer.metric[_unit]` strings — e.g.
//! `pass.apply_ns`, `hls.cycles`, `evalcache.lookups`, `rl.steps` — and
//! the dynamic dimension (pass name, algorithm, worker index) goes in the
//! label: `pass.apply_ns{-gvn}`. Durations are nanoseconds and end in
//! `_ns` (sinks render them human-readable).
//!
//! # Usage
//!
//! ```
//! use autophase_telemetry as telemetry;
//!
//! telemetry::enable();
//! // Cold paths: record through the registry by name.
//! telemetry::incr("demo.requests", "", 1);
//! let t = telemetry::maybe_now();
//! // ... work ...
//! telemetry::observe_since("demo.work_ns", "", t);
//! // Hot paths: fetch the instrument once, then it is a few atomics.
//! let hits = telemetry::counter("demo.hits", "");
//! hits.add(1);
//! // Spans nest via a RAII guard and a thread-local stack.
//! {
//!     let _outer = telemetry::span("demo.batch");
//!     let _inner = telemetry::span("demo.episode"); // path demo.batch/demo.episode
//! }
//! println!("{}", telemetry::render_summary());
//! telemetry::reset();
//! telemetry::disable();
//! ```
#![warn(missing_docs)]

pub mod faultfs;
pub mod flight;
pub mod metrics;
pub mod sink;
pub mod span;

pub use flight::{DumpTrigger, FlightConfig, FlightRecorder, RequestTrace, TraceBuilder};
pub use metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, Registry,
    Snapshot,
};
pub use sink::{
    render_jsonl, render_metrics_jsonl_from, render_prometheus, render_summary, write_artifact,
};
pub use span::{span, span_events, SpanEvent, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The global on/off switch. Relaxed is correct: readers only need *a*
/// recent value, never ordering against other memory.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when telemetry is recording. One relaxed atomic load — this is
/// the entire disabled-path cost of every instrumented call site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on (also pins the span-event epoch on first call).
pub fn enable() {
    span::init_epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn recording off. Instruments keep their values until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// `Some(Instant::now())` when enabled, `None` otherwise. The standard
/// idiom for timing a region without paying for the clock when disabled.
#[inline]
pub fn maybe_now() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// The global registry (created on first use, lives for the process).
pub fn registry() -> &'static Registry {
    metrics::global()
}

/// Fetch (registering on first use) a counter. Call sites on hot paths
/// should fetch once and cache the handle.
pub fn counter(name: &'static str, label: &str) -> Arc<Counter> {
    registry().counter(name, label)
}

/// Fetch (registering on first use) a gauge.
pub fn gauge(name: &'static str, label: &str) -> Arc<Gauge> {
    registry().gauge(name, label)
}

/// Fetch (registering on first use) a histogram.
pub fn histogram(name: &'static str, label: &str) -> Arc<Histogram> {
    registry().histogram(name, label)
}

/// Add `n` to a counter by name. No-op when disabled.
pub fn incr(name: &'static str, label: &str, n: u64) {
    if enabled() {
        counter(name, label).add(n);
    }
}

/// Set a gauge by name. No-op when disabled.
pub fn set_gauge(name: &'static str, label: &str, value: f64) {
    if enabled() {
        gauge(name, label).set(value);
    }
}

/// Adjust a gauge by `delta` (negative to decrement). No-op when
/// disabled. Use for level-style gauges maintained concurrently (queue
/// depth, in-flight work), where `set` from multiple threads would lose
/// updates.
pub fn add_gauge(name: &'static str, label: &str, delta: f64) {
    if enabled() {
        gauge(name, label).add(delta);
    }
}

/// Record a value into a histogram by name. No-op when disabled.
pub fn observe(name: &'static str, label: &str, value: u64) {
    if enabled() {
        histogram(name, label).record(value);
    }
}

/// Record the nanoseconds elapsed since `start` (from [`maybe_now`]) into
/// a histogram. No-op when `start` is `None` or telemetry is disabled.
pub fn observe_since(name: &'static str, label: &str, start: Option<Instant>) {
    if let Some(t) = start {
        if enabled() {
            histogram(name, label).record(t.elapsed().as_nanos() as u64);
        }
    }
}

/// Zero every instrument and drop all recorded span events. Registered
/// instruments (and handles call sites cached) stay valid — their values
/// restart from zero. Meant for test isolation and run boundaries.
pub fn reset() {
    registry().reset();
    span::clear_events();
}

/// Snapshot every instrument's current value, sorted by `(name, label)`.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The crate's unit tests share one process and one global registry;
    // serialize the ones that toggle the enable flag.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_helpers_record_nothing() {
        let _g = lock();
        reset();
        disable();
        incr("test.lib.count", "", 5);
        set_gauge("test.lib.gauge", "", 1.0);
        observe("test.lib.hist", "", 42);
        assert!(maybe_now().is_none());
        let snap = snapshot();
        assert!(snap
            .counters
            .iter()
            .all(|c| c.name != "test.lib.count" || c.value == 0));
    }

    #[test]
    fn enabled_helpers_record() {
        let _g = lock();
        reset();
        enable();
        incr("test.lib.count2", "x", 2);
        incr("test.lib.count2", "x", 3);
        set_gauge("test.lib.gauge2", "", 2.5);
        observe("test.lib.hist2", "", 10);
        let t = maybe_now();
        assert!(t.is_some());
        observe_since("test.lib.hist2_ns", "", t);
        disable();
        let snap = snapshot();
        let c = snap
            .counters
            .iter()
            .find(|c| c.name == "test.lib.count2")
            .expect("counter registered");
        assert_eq!(c.value, 5);
        assert_eq!(c.label, "x");
        let g = snap
            .gauges
            .iter()
            .find(|g| g.name == "test.lib.gauge2")
            .expect("gauge registered");
        assert_eq!(g.value, 2.5);
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.lib.hist2")
            .expect("histogram registered");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 10);
        reset();
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_valid() {
        let _g = lock();
        reset();
        enable();
        let c = counter("test.lib.reset", "");
        c.add(7);
        assert_eq!(c.value(), 7);
        reset();
        assert_eq!(c.value(), 0);
        c.add(1); // the cached handle still feeds the registry
        let snap = snapshot();
        let found = snap
            .counters
            .iter()
            .find(|x| x.name == "test.lib.reset")
            .expect("still registered");
        assert_eq!(found.value, 1);
        disable();
        reset();
    }
}
