//! Injectable disk I/O for durability chaos testing.
//!
//! Every write the serving stack must survive losing — best-ordering
//! store appends, snapshot compactions, policy checkpoint saves — is
//! routed through the thin wrappers in this module instead of calling
//! `std::fs`/`std::io` directly. In production builds the wrappers are
//! zero-cost passthroughs. Under `cfg(any(test, feature =
//! "fault-injection"))` an armed [`DiskFaultPlan`] can make any tagged
//! operation fail deterministically: torn writes (a prefix lands, then
//! an error), `ENOSPC`, fsync failure, and short reads — the four
//! failure shapes the durability suite drills.
//!
//! The plan machinery mirrors `autophase_passes::fault`: a process-wide
//! slot armed by [`install_plan`], a relaxed-atomic fast path when idle,
//! per-spec match counters so "the Nth append" is well defined, and a
//! [`test_guard`] mutex because the slot is process-global. Plans are
//! reproducible from a single `u64` via [`DiskFaultPlan::seeded`].
//!
//! Call sites name themselves with a static `tag` (`"store.append"`,
//! `"store.snapshot"`, `"ckpt.write"`, ...) so a plan can target one
//! logical stream of I/O without disturbing the others.

use std::fs::File;
use std::io::{self, Write as _};
use std::path::Path;

/// The disk operations the layer can intercept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskOp {
    /// A buffered or direct write of bytes ([`write_all`]).
    Write,
    /// A durability barrier ([`sync_data`] / [`sync_all`]).
    Sync,
    /// A whole-file read ([`read`]).
    Read,
    /// An atomic rename ([`rename`]).
    Rename,
}

/// What goes wrong with one intercepted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// A strict prefix of the buffer reaches the file, then the write
    /// errors — the on-disk state a crash mid-append leaves behind.
    TornWrite,
    /// The operation fails with `ENOSPC` (raw OS error 28) and writes
    /// nothing.
    Enospc,
    /// The sync (or other operation) reports an I/O error; any buffered
    /// data may or may not be durable.
    SyncFail,
    /// The read returns a strict prefix of the file.
    ShortRead,
}

/// `write_all` through the fault layer. `tag` names the call site.
pub fn write_all(file: &mut File, buf: &[u8], tag: &'static str) -> io::Result<()> {
    match poll(DiskOp::Write, tag) {
        None => file.write_all(buf),
        Some((DiskFaultKind::Enospc, _)) => Err(io::Error::from_raw_os_error(28)),
        Some((DiskFaultKind::TornWrite, salt)) => {
            if !buf.is_empty() {
                let keep = (salt % buf.len() as u64) as usize;
                file.write_all(&buf[..keep])?;
                let _ = file.sync_data();
            }
            Err(io::Error::other("injected torn write"))
        }
        Some((_, _)) => Err(io::Error::other("injected write failure")),
    }
}

/// `File::sync_data` through the fault layer.
pub fn sync_data(file: &File, tag: &'static str) -> io::Result<()> {
    match poll(DiskOp::Sync, tag) {
        None => file.sync_data(),
        Some((DiskFaultKind::Enospc, _)) => Err(io::Error::from_raw_os_error(28)),
        Some((_, _)) => Err(io::Error::other("injected fsync failure")),
    }
}

/// `File::sync_all` through the fault layer.
pub fn sync_all(file: &File, tag: &'static str) -> io::Result<()> {
    match poll(DiskOp::Sync, tag) {
        None => file.sync_all(),
        Some((DiskFaultKind::Enospc, _)) => Err(io::Error::from_raw_os_error(28)),
        Some((_, _)) => Err(io::Error::other("injected fsync failure")),
    }
}

/// `std::fs::read` through the fault layer. A planned [`ShortRead`]
/// returns a strict prefix of the file, exactly what a torn mirror or a
/// failing disk hands back.
///
/// [`ShortRead`]: DiskFaultKind::ShortRead
pub fn read(path: &Path, tag: &'static str) -> io::Result<Vec<u8>> {
    match poll(DiskOp::Read, tag) {
        None => std::fs::read(path),
        Some((DiskFaultKind::ShortRead, salt)) => {
            let mut bytes = std::fs::read(path)?;
            if !bytes.is_empty() {
                bytes.truncate((salt % bytes.len() as u64) as usize);
            }
            Ok(bytes)
        }
        Some((DiskFaultKind::Enospc, _)) => Err(io::Error::from_raw_os_error(28)),
        Some((_, _)) => Err(io::Error::other("injected read failure")),
    }
}

/// `std::fs::rename` through the fault layer. An injected fault fails
/// the rename without moving anything (the commit point never happens).
pub fn rename(from: &Path, to: &Path, tag: &'static str) -> io::Result<()> {
    match poll(DiskOp::Rename, tag) {
        None => std::fs::rename(from, to),
        Some((DiskFaultKind::Enospc, _)) => Err(io::Error::from_raw_os_error(28)),
        Some((_, _)) => Err(io::Error::other("injected rename failure")),
    }
}

/// True when `e` means the disk is full — the one I/O failure the
/// server degrades through rather than merely counting.
pub fn is_disk_full(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28) || matches!(e.kind(), io::ErrorKind::StorageFull)
}

#[cfg(not(any(test, feature = "fault-injection")))]
#[inline(always)]
fn poll(_op: DiskOp, _tag: &str) -> Option<(DiskFaultKind, u64)> {
    None
}

#[cfg(any(test, feature = "fault-injection"))]
use inject::poll;

/// The plan machinery: compiled only for tests and the
/// `fault-injection` feature, exactly like `autophase_passes::fault`.
#[cfg(any(test, feature = "fault-injection"))]
pub mod inject {
    use super::{DiskFaultKind, DiskOp};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

    /// One planned disk fault: the `nth` (1-based; 0 = every) matching
    /// operation fails with `kind`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct DiskFaultSpec {
        /// Which operation class to sabotage.
        pub op: DiskOp,
        /// Restrict to one call-site tag (`None` matches any tag).
        pub tag: Option<String>,
        /// Which matching operation fails, 1-based. `0` means *every*
        /// matching operation fails — the "disk stays full" mode.
        pub nth: u64,
        /// What goes wrong.
        pub kind: DiskFaultKind,
        /// Deterministic entropy for the fault shape (how many bytes a
        /// torn write keeps, where a short read cuts).
        pub salt: u64,
    }

    /// A set of planned disk faults plus a fired-count for assertions.
    #[derive(Debug)]
    pub struct DiskFaultPlan {
        specs: Vec<DiskFaultSpec>,
        seen: Vec<AtomicU64>,
        fired: AtomicU64,
    }

    impl DiskFaultPlan {
        /// A plan from explicit specs.
        pub fn new(specs: Vec<DiskFaultSpec>) -> DiskFaultPlan {
            let seen = specs.iter().map(|_| AtomicU64::new(0)).collect();
            DiskFaultPlan {
                specs,
                seen,
                fired: AtomicU64::new(0),
            }
        }

        /// A reproducible plan derived from `seed`: one fault per
        /// `(op, tag)` target, with an op-appropriate kind, a
        /// pseudo-random `nth` in `1..=3`, and pseudo-random salt.
        pub fn seeded(seed: u64, targets: &[(DiskOp, &str)]) -> DiskFaultPlan {
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let specs = targets
                .iter()
                .map(|&(op, tag)| DiskFaultSpec {
                    op,
                    tag: Some(tag.to_string()),
                    nth: next() % 3 + 1,
                    kind: match op {
                        DiskOp::Write => {
                            if next() % 2 == 0 {
                                DiskFaultKind::TornWrite
                            } else {
                                DiskFaultKind::Enospc
                            }
                        }
                        DiskOp::Sync => DiskFaultKind::SyncFail,
                        DiskOp::Read => DiskFaultKind::ShortRead,
                        DiskOp::Rename => DiskFaultKind::Enospc,
                    },
                    salt: next(),
                })
                .collect();
            DiskFaultPlan::new(specs)
        }

        /// The planned faults.
        pub fn specs(&self) -> &[DiskFaultSpec] {
            &self.specs
        }

        /// How many planned faults have fired so far.
        pub fn fired(&self) -> u64 {
            self.fired.load(Ordering::Relaxed)
        }
    }

    static ACTIVE: AtomicBool = AtomicBool::new(false);

    fn plan_slot() -> &'static Mutex<Option<Arc<DiskFaultPlan>>> {
        static SLOT: Mutex<Option<Arc<DiskFaultPlan>>> = Mutex::new(None);
        &SLOT
    }

    fn lock_slot() -> MutexGuard<'static, Option<Arc<DiskFaultPlan>>> {
        plan_slot().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arm `plan` process-wide; returns the shared handle for
    /// [`DiskFaultPlan::fired`] assertions. Replaces any previous plan.
    pub fn install_plan(plan: DiskFaultPlan) -> Arc<DiskFaultPlan> {
        let plan = Arc::new(plan);
        *lock_slot() = Some(Arc::clone(&plan));
        ACTIVE.store(true, Ordering::Release);
        plan
    }

    /// Disarm the harness (subsequent polls see no faults).
    pub fn clear_plan() {
        ACTIVE.store(false, Ordering::Release);
        *lock_slot() = None;
    }

    /// Serialize tests that install plans: the slot is process-global.
    pub fn test_guard() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(super) fn poll(op: DiskOp, tag: &str) -> Option<(DiskFaultKind, u64)> {
        if !ACTIVE.load(Ordering::Acquire) {
            return None;
        }
        let plan = lock_slot().clone()?;
        for (i, s) in plan.specs.iter().enumerate() {
            if s.op != op || s.tag.as_deref().is_some_and(|t| t != tag) {
                continue;
            }
            let seen = plan.seen[i].fetch_add(1, Ordering::Relaxed) + 1;
            if s.nth == 0 || s.nth == seen {
                plan.fired.fetch_add(1, Ordering::Relaxed);
                return Some((s.kind, s.salt));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::inject::{clear_plan, install_plan, test_guard, DiskFaultPlan, DiskFaultSpec};
    use super::*;
    use std::io::Read as _;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("autophase_faultfs_{}_{name}", std::process::id()))
    }

    #[test]
    fn passthrough_when_idle() {
        let _g = test_guard();
        clear_plan();
        let path = tmp("idle");
        let mut f = File::create(&path).unwrap();
        write_all(&mut f, b"hello", "t.write").unwrap();
        sync_data(&f, "t.sync").unwrap();
        sync_all(&f, "t.sync").unwrap();
        drop(f);
        assert_eq!(read(&path, "t.read").unwrap(), b"hello");
        let to = tmp("idle2");
        rename(&path, &to, "t.rename").unwrap();
        assert_eq!(read(&to, "t.read").unwrap(), b"hello");
        let _ = std::fs::remove_file(&to);
    }

    #[test]
    fn torn_write_keeps_a_strict_prefix() {
        let _g = test_guard();
        let plan = install_plan(DiskFaultPlan::new(vec![DiskFaultSpec {
            op: DiskOp::Write,
            tag: Some("t.torn".into()),
            nth: 2,
            kind: DiskFaultKind::TornWrite,
            salt: 3,
        }]));
        let path = tmp("torn");
        let mut f = File::create(&path).unwrap();
        write_all(&mut f, b"aaaa", "t.torn").unwrap(); // 1st: clean
        let err = write_all(&mut f, b"bbbb", "t.torn").unwrap_err(); // 2nd: torn
        assert!(err.to_string().contains("torn"));
        drop(f);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes, b"aaaabbb", "salt=3 tears after 3 of 4 bytes");
        assert_eq!(plan.fired(), 1);
        clear_plan();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn enospc_every_matching_write_until_cleared() {
        let _g = test_guard();
        install_plan(DiskFaultPlan::new(vec![DiskFaultSpec {
            op: DiskOp::Write,
            tag: Some("t.full".into()),
            nth: 0,
            kind: DiskFaultKind::Enospc,
            salt: 0,
        }]));
        let path = tmp("full");
        let mut f = File::create(&path).unwrap();
        for _ in 0..3 {
            let err = write_all(&mut f, b"x", "t.full").unwrap_err();
            assert!(is_disk_full(&err), "{err}");
        }
        // Other tags are untouched.
        write_all(&mut f, b"y", "t.other").unwrap();
        clear_plan();
        write_all(&mut f, b"z", "t.full").unwrap();
        drop(f);
        let mut s = String::new();
        File::open(&path).unwrap().read_to_string(&mut s).unwrap();
        assert_eq!(s, "yz", "faulted writes left no bytes behind");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn short_read_returns_strict_prefix() {
        let _g = test_guard();
        let path = tmp("short");
        std::fs::write(&path, b"0123456789").unwrap();
        install_plan(DiskFaultPlan::new(vec![DiskFaultSpec {
            op: DiskOp::Read,
            tag: None,
            nth: 1,
            kind: DiskFaultKind::ShortRead,
            salt: 14, // 14 % 10 = 4
        }]));
        assert_eq!(read(&path, "t.read").unwrap(), b"0123");
        assert_eq!(read(&path, "t.read").unwrap(), b"0123456789");
        clear_plan();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_and_rename_faults_fire_deterministically() {
        let _g = test_guard();
        let plan = install_plan(DiskFaultPlan::seeded(
            42,
            &[(DiskOp::Sync, "t.s"), (DiskOp::Rename, "t.r")],
        ));
        let again = DiskFaultPlan::seeded(42, &[(DiskOp::Sync, "t.s"), (DiskOp::Rename, "t.r")]);
        assert_eq!(plan.specs(), again.specs(), "seeded plans reproduce");
        let path = tmp("syncfault");
        let f = File::create(&path).unwrap();
        let nth = plan.specs()[0].nth;
        for i in 1..=nth {
            let r = sync_data(&f, "t.s");
            assert_eq!(r.is_err(), i == nth, "sync {i}/{nth}");
        }
        assert_eq!(plan.fired(), 1);
        clear_plan();
        let _ = std::fs::remove_file(&path);
    }
}
