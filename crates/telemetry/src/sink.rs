//! Text sinks: JSONL event log, Prometheus text format, human summary.
//!
//! Sinks are pure renderers over a registry [`crate::Snapshot`] plus the
//! span-event log — they read instruments, never mutate them, and can be
//! called any number of times. The JSON is emitted by hand (this crate is
//! dependency-free); instrument names and labels are short identifier-like
//! strings, but escaping is complete anyway.

use crate::metrics::{Snapshot, DEFAULT_BOUNDS};
use crate::span;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Escape a string for a JSON string literal (without the quotes).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a finite `f64` for JSON (NaN/inf become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// `name{label}` or bare `name` when the label is empty.
fn display_key(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{label}}}")
    }
}

/// Human formatting for a value: durations (names ending in `_ns`) get
/// time units, everything else thousands separators are skipped in favour
/// of plain integers.
fn fmt_value(name: &str, v: u64) -> String {
    if !name.ends_with("_ns") {
        return v.to_string();
    }
    let ns = v as f64;
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

fn fmt_mean(name: &str, v: f64) -> String {
    if name.ends_with("_ns") {
        fmt_value(name, v.round() as u64)
    } else {
        format!("{v:.1}")
    }
}

/// Render the end-of-run human summary table from the live registry.
pub fn render_summary() -> String {
    render_summary_from(&crate::snapshot())
}

/// Render the summary table from an explicit snapshot.
///
/// Instruments that never fired (zero-valued counters, zero-count
/// histograms) are omitted — e.g. the pass registry eagerly registers all
/// 46 passes, but a run that only touched a dozen should print a dozen
/// rows. The Prometheus and JSONL sinks keep everything.
pub fn render_summary_from(snap: &Snapshot) -> String {
    let mut out = String::from("== telemetry summary ==\n");
    let counters: Vec<_> = snap.counters.iter().filter(|c| c.value > 0).collect();
    let histograms: Vec<_> = snap.histograms.iter().filter(|h| h.count > 0).collect();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for c in &counters {
            let _ = writeln!(
                out,
                "  {:<44} {:>12}",
                display_key(c.name, &c.label),
                c.value
            );
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for g in &snap.gauges {
            let _ = writeln!(
                out,
                "  {:<44} {:>12.3}",
                display_key(g.name, &g.label),
                g.value
            );
        }
    }
    if !histograms.is_empty() {
        let _ = writeln!(
            out,
            "histograms: {:<32} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "", "count", "mean", "p50", "p95", "p99", "max"
        );
        for h in &histograms {
            let _ = writeln!(
                out,
                "  {:<42} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                display_key(h.name, &h.label),
                h.count,
                fmt_mean(h.name, h.sum as f64 / h.count as f64),
                fmt_value(h.name, h.p50),
                fmt_value(h.name, h.p95),
                fmt_value(h.name, h.p99),
                fmt_value(h.name, h.max),
            );
        }
    }
    if counters.is_empty() && snap.gauges.is_empty() && histograms.is_empty() {
        out.push_str("(no instruments recorded)\n");
    }
    out
}

/// Sanitize an instrument name or label for Prometheus (`[a-zA-Z0-9_]`,
/// non-conforming characters become `_`, leading digits get a prefix).
fn prom_name(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escape a label *value* per the Prometheus text exposition format:
/// exactly backslash, double-quote, and line-feed are escaped (`\\`,
/// `\"`, `\n`) — nothing else. JSON escaping is close but wrong here
/// (`\uXXXX` and `\t` are not exposition-format escapes, and an
/// unescaped newline would split the sample line in two).
fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_label(label: &str) -> String {
    if label.is_empty() {
        String::new()
    } else {
        format!("{{label=\"{}\"}}", prom_escape(label))
    }
}

/// Render every instrument in the Prometheus text exposition format.
pub fn render_prometheus() -> String {
    render_prometheus_from(&crate::snapshot())
}

/// Prometheus text format from an explicit snapshot.
pub fn render_prometheus_from(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}\n");
        if line != last_type_line {
            out.push_str(&line);
            last_type_line = line;
        }
    };
    for c in &snap.counters {
        let name = prom_name(c.name);
        type_line(&mut out, &name, "counter");
        let _ = writeln!(out, "{name}{} {}", prom_label(&c.label), c.value);
    }
    for g in &snap.gauges {
        let name = prom_name(g.name);
        type_line(&mut out, &name, "gauge");
        let _ = writeln!(out, "{name}{} {}", prom_label(&g.label), g.value);
    }
    for h in &snap.histograms {
        let name = prom_name(h.name);
        type_line(&mut out, &name, "histogram");
        let inner = if h.label.is_empty() {
            String::new()
        } else {
            format!("label=\"{}\",", prom_escape(&h.label))
        };
        let mut cum = 0u64;
        let counts: std::collections::HashMap<u64, u64> = h.buckets.iter().copied().collect();
        for &bound in DEFAULT_BOUNDS.iter() {
            cum += counts.get(&bound).copied().unwrap_or(0);
            let _ = writeln!(out, "{name}_bucket{{{inner}le=\"{bound}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_bucket{{{inner}le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum{} {}", prom_label(&h.label), h.sum);
        let _ = writeln!(out, "{name}_count{} {}", prom_label(&h.label), h.count);
        // Interpolated quantile estimates as an auxiliary gauge family
        // (`_q` suffix, summary-style `quantile` label): scrapers that
        // want percentiles without re-aggregating buckets read these.
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.95, h.p95), (0.99, h.p99)] {
            let _ = writeln!(out, "{name}_q{{{inner}quantile=\"{q}\"}} {v}");
        }
    }
    out
}

/// Render the JSONL event log: one JSON object per line — every retained
/// span event, then every counter, gauge, and histogram, then a trailer
/// with the dropped-event count. Machine-readable without parsing stdout.
pub fn render_jsonl() -> String {
    render_jsonl_from(&crate::snapshot())
}

/// JSONL from an explicit snapshot (span events still come from the
/// global log).
pub fn render_jsonl_from(snap: &Snapshot) -> String {
    let mut out = String::new();
    for e in span::span_events() {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"path\":\"{}\",\"name\":\"{}\",\"depth\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{}}}",
            json_escape(&e.path),
            json_escape(e.name),
            e.depth,
            e.thread,
            e.start_ns,
            e.dur_ns
        );
    }
    out.push_str(&render_metrics_jsonl_from(snap));
    let _ = writeln!(
        out,
        "{{\"type\":\"dropped_events\",\"count\":{}}}",
        span::dropped_events()
    );
    out
}

/// JSONL of the registry instruments only — one `counter`/`gauge`/
/// `histogram` object per line, no span events and no trailer. This is
/// the wire body a live service answers stats queries with: pure
/// snapshot, same line shapes as [`render_jsonl_from`].
pub fn render_metrics_jsonl_from(snap: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"label\":\"{}\",\"value\":{}}}",
            json_escape(c.name),
            json_escape(&c.label),
            c.value
        );
    }
    for g in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"label\":\"{}\",\"value\":{}}}",
            json_escape(g.name),
            json_escape(&g.label),
            json_f64(g.value)
        );
    }
    for h in &snap.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|(bound, count)| format!("[{bound},{count}]"))
            .collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"label\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
            json_escape(h.name),
            json_escape(&h.label),
            h.count,
            h.sum,
            h.min,
            h.max,
            h.p50,
            h.p90,
            h.p95,
            h.p99,
            buckets.join(",")
        );
    }
    out
}

/// Write `contents` to `dir/file`, creating `dir` if needed. Returns the
/// written path. Errors are reported, not fatal — telemetry must never
/// take a run down.
pub fn write_artifact(dir: &str, file: &str, contents: &str) -> Option<PathBuf> {
    let dir = Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("telemetry: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(file);
    match std::fs::write(&path, contents) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("telemetry: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot};

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![CounterSnapshot {
                name: "pass.invocations",
                label: "-gvn".to_string(),
                value: 3,
            }],
            gauges: vec![GaugeSnapshot {
                name: "evalcache.hit_rate",
                label: String::new(),
                value: 0.75,
            }],
            histograms: vec![HistogramSnapshot {
                name: "pass.apply_ns",
                label: "-gvn".to_string(),
                count: 2,
                sum: 3_000,
                min: 1_000,
                max: 2_000,
                p50: 1_000,
                p90: 2_000,
                p95: 2_000,
                p99: 2_000,
                buckets: vec![(1_000, 1), (2_000, 1)],
            }],
        }
    }

    #[test]
    fn summary_lists_every_section() {
        let s = render_summary_from(&sample_snapshot());
        assert!(s.contains("pass.invocations{-gvn}"), "{s}");
        assert!(s.contains("evalcache.hit_rate"), "{s}");
        assert!(s.contains("pass.apply_ns{-gvn}"), "{s}");
        assert!(s.contains("1.5us"), "mean should be humanized: {s}");
    }

    #[test]
    fn summary_omits_instruments_that_never_fired() {
        let mut snap = sample_snapshot();
        snap.counters.push(CounterSnapshot {
            name: "pass.invocations",
            label: "-sccp".to_string(),
            value: 0,
        });
        snap.histograms.push(HistogramSnapshot {
            name: "pass.apply_ns",
            label: "-sccp".to_string(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            p50: 0,
            p90: 0,
            p95: 0,
            p99: 0,
            buckets: vec![],
        });
        let s = render_summary_from(&snap);
        assert!(!s.contains("-sccp"), "{s}");
        assert!(s.contains("pass.invocations{-gvn}"), "{s}");
    }

    #[test]
    fn prometheus_is_well_formed() {
        let p = render_prometheus_from(&sample_snapshot());
        assert!(p.contains("# TYPE pass_invocations counter"), "{p}");
        assert!(p.contains("pass_invocations{label=\"-gvn\"} 3"), "{p}");
        assert!(p.contains("# TYPE evalcache_hit_rate gauge"), "{p}");
        assert!(
            p.contains("pass_apply_ns_bucket{label=\"-gvn\",le=\"1000\"} 1"),
            "{p}"
        );
        assert!(
            p.contains("pass_apply_ns_bucket{label=\"-gvn\",le=\"+Inf\"} 2"),
            "{p}"
        );
        assert!(p.contains("pass_apply_ns_sum{label=\"-gvn\"} 3000"), "{p}");
    }

    #[test]
    fn jsonl_lines_parse_shapewise() {
        let j = render_jsonl_from(&sample_snapshot());
        for line in j.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":\""), "{line}");
        }
        assert!(j.contains("\"type\":\"histogram\""));
        assert!(j.contains("\"buckets\":[[1000,1],[2000,1]]"), "{j}");
        assert!(j.contains("\"type\":\"dropped_events\""));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn prom_names_sanitized() {
        assert_eq!(prom_name("pass.apply_ns"), "pass_apply_ns");
        assert_eq!(prom_name("-gvn"), "_gvn");
        assert_eq!(prom_name("9lives"), "_9lives");
    }

    /// Inverse of the exposition-format label-value escaping: exactly
    /// `\\`, `\"`, and `\n` are escape sequences; everything else is
    /// literal. This is what a conforming Prometheus scraper applies.
    fn prom_unescape(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('n') => out.push('\n'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other);
                    }
                    None => out.push('\\'),
                }
            } else {
                out.push(c);
            }
        }
        out
    }

    #[test]
    fn prom_label_values_roundtrip_hostile_strings() {
        for hostile in [
            "back\\slash",
            "quo\"te",
            "new\nline",
            "\\\"\n",
            "tab\tand\rcr stay literal",
            "unicode λ→∞ survives",
            "trailing backslash\\",
            "\\n is two chars, not a newline",
        ] {
            let escaped = prom_escape(hostile);
            // The escaped value must be line- and quote-safe…
            assert!(!escaped.contains('\n'), "{hostile:?} -> {escaped:?}");
            let mut prev = ' ';
            for c in escaped.chars() {
                assert!(
                    c != '"' || prev == '\\',
                    "unescaped quote in {escaped:?} (from {hostile:?})"
                );
                // Two backslashes in a row consume each other.
                prev = if prev == '\\' && c == '\\' { ' ' } else { c };
            }
            // …and a conforming scraper must recover the original.
            assert_eq!(prom_unescape(&escaped), hostile, "via {escaped:?}");
        }
    }

    #[test]
    fn prom_sink_emits_escaped_labels_and_quantiles() {
        let mut snap = sample_snapshot();
        snap.counters[0].label = "evil\"quote\nand\\slash".to_string();
        let p = render_prometheus_from(&snap);
        for line in p.lines() {
            assert!(!line.is_empty());
        }
        assert!(
            p.contains("pass_invocations{label=\"evil\\\"quote\\nand\\\\slash\"} 3"),
            "{p}"
        );
        // Interpolated quantile estimates ride along as a _q family.
        assert!(
            p.contains("pass_apply_ns_q{label=\"-gvn\",quantile=\"0.5\"} 1000"),
            "{p}"
        );
        assert!(
            p.contains("pass_apply_ns_q{label=\"-gvn\",quantile=\"0.95\"} 2000"),
            "{p}"
        );
    }

    #[test]
    fn metrics_jsonl_has_no_spans_or_trailer() {
        let j = render_metrics_jsonl_from(&sample_snapshot());
        assert!(!j.contains("\"type\":\"span\""));
        assert!(!j.contains("\"type\":\"dropped_events\""));
        assert!(j.contains("\"type\":\"counter\""));
        assert!(j.contains("\"p95\":"), "{j}");
    }
}
