//! The compile-service daemon and its introspection CLI.
//!
//! ```text
//! serve --checkpoint policy.ckpt [--addr 127.0.0.1:7463] [--store serve_store.log]
//!       [--workers 4] [--queue-cap 64] [--deadline-ms 1000] [--chaos]
//!       [--flight-dir results/flight_dumps] [--slow-ms 250] [--flight-capacity 256]
//!       [--registry models/] [--learn] [--auto-promote] [--admin]
//! serve stats --addr 127.0.0.1:7463            # one dashboard snapshot
//! serve top --addr 127.0.0.1:7463 [--interval-ms 1000] [--count N]
//! serve trace --addr 127.0.0.1:7463 [--n 16]   # recent traces, raw JSONL
//! serve models --addr 127.0.0.1:7463           # registry + per-version win rates
//! serve promote --addr 127.0.0.1:7463 --version 3 [--ab]
//! ```
//!
//! Daemon mode loads the policy from an
//! `autophase_rl::checkpoint::PolicyCheckpoint` (train one with
//! `serve_bench` or any experiment that saves checkpoints), binds,
//! prints the address, and serves until a client sends `SHUTDOWN`.
//! Without `--checkpoint` a freshly initialized (untrained) policy is
//! used — handy for smoke tests, useless for quality.
//!
//! `--registry <dir>` turns on the online-learning subsystem (versioned
//! model registry + `PROMOTE` accounting); `--learn` additionally runs
//! the in-daemon background learner, and `--auto-promote` lets it
//! hot-swap each validated version it publishes. `--admin` accepts the
//! `PROMOTE` verb from clients.
//!
//! `stats` renders one dashboard from a live daemon's `STATS` reply;
//! `top` polls it and refreshes in place (rates are deltas between
//! polls); `trace` prints the flight recorder's recent request traces;
//! `models` lists registry versions with per-version win rates;
//! `promote` hot-swaps a registry version into the live engine.

use autophase_nn::mlp::{Activation, Mlp};
use autophase_rl::checkpoint::{ArmoredLoad, PolicyCheckpoint};
use autophase_serve::client::Client;
use autophase_serve::engine::{serve_num_actions, serve_obs_dim};
use autophase_serve::learner::LearnerConfig;
use autophase_serve::server::{Server, ServerConfig};
use autophase_serve::stats::StatsSnapshot;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == key).map(|w| w[1].clone())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: serve [--checkpoint <path>] [--addr <host:port>] [--store <path>] \
             [--workers <n>] [--queue-cap <n>] [--deadline-ms <ms>] [--retry-hint-ms <ms>] \
             [--chaos] [--flight-dir <dir>] [--slow-ms <ms>] [--flight-capacity <n>] \
             [--max-dump-files <n>] [--registry <dir>] [--learn] [--auto-promote] [--admin]\n\
             \x20      serve stats --addr <host:port>\n\
             \x20      serve top --addr <host:port> [--interval-ms <ms>] [--count <n>]\n\
             \x20      serve trace --addr <host:port> [--n <k>]\n\
             \x20      serve models --addr <host:port>\n\
             \x20      serve promote --addr <host:port> --version <n> [--ab]"
        );
        return;
    }
    match args.get(1).map(String::as_str) {
        Some("stats") => run_stats(&args),
        Some("top") => run_top(&args),
        Some("trace") => run_trace(&args),
        Some("models") => run_models(&args),
        Some("promote") => run_promote(&args),
        _ => run_daemon(&args),
    }
}

fn daemon_cfg(args: &[String]) -> ServerConfig {
    let mut cfg = ServerConfig::default();
    if let Some(addr) = arg_value(args, "--addr") {
        cfg.addr = addr;
    }
    if let Some(store) = arg_value(args, "--store") {
        cfg.store_path = PathBuf::from(store);
    }
    if let Some(w) = arg_value(args, "--workers").and_then(|v| v.parse().ok()) {
        cfg.workers = w;
    }
    if let Some(q) = arg_value(args, "--queue-cap").and_then(|v| v.parse().ok()) {
        cfg.queue_cap = q;
    }
    if let Some(d) = arg_value(args, "--deadline-ms").and_then(|v| v.parse().ok()) {
        cfg.default_deadline = Duration::from_millis(d);
    }
    if let Some(ms) = arg_value(args, "--retry-hint-ms").and_then(|v| v.parse().ok()) {
        cfg.retry_hint_ms = ms;
    }
    cfg.chaos = args.iter().any(|a| a == "--chaos");
    if let Some(dir) = arg_value(args, "--flight-dir") {
        cfg.flight.dump_dir = Some(PathBuf::from(dir));
    }
    if let Some(ms) = arg_value(args, "--slow-ms").and_then(|v| v.parse().ok()) {
        cfg.flight.slow_threshold = Some(Duration::from_millis(ms));
    }
    if let Some(n) = arg_value(args, "--flight-capacity").and_then(|v| v.parse().ok()) {
        cfg.flight.capacity = n;
    }
    if let Some(n) = arg_value(args, "--max-dump-files").and_then(|v| v.parse().ok()) {
        cfg.flight.max_dump_files = n;
    }
    cfg.admin = args.iter().any(|a| a == "--admin");
    if let Some(dir) = arg_value(args, "--registry") {
        cfg.registry_dir = Some(PathBuf::from(dir));
    }
    if args.iter().any(|a| a == "--learn") {
        cfg.learner = Some(LearnerConfig {
            auto_promote: args.iter().any(|a| a == "--auto-promote"),
            ..LearnerConfig::default()
        });
    }
    cfg
}

fn run_daemon(args: &[String]) {
    let cfg = daemon_cfg(args);

    // Checkpoint armor: a *corrupt* checkpoint is quarantined (renamed
    // aside) and the daemon comes up baseline-only — availability over
    // policy quality. A *missing* checkpoint is a configuration error
    // and still refuses to start: there is nothing to quarantine and
    // silently serving without the ordering the operator asked for
    // would hide a typo forever.
    let policy = match arg_value(args, "--checkpoint") {
        Some(path) => {
            let path = PathBuf::from(path);
            match PolicyCheckpoint::load_armored(&path) {
                ArmoredLoad::Loaded(ckpt) => {
                    eprintln!(
                        "serve: loaded {:?} checkpoint {}",
                        ckpt.algo,
                        path.display()
                    );
                    Some(ckpt.policy)
                }
                ArmoredLoad::Quarantined { error, moved_to } => {
                    eprintln!("serve: checkpoint {} is corrupt: {error}", path.display());
                    match moved_to {
                        Some(q) => eprintln!("serve: quarantined to {}", q.display()),
                        None => eprintln!("serve: quarantine rename failed; left in place"),
                    }
                    eprintln!("serve: continuing BASELINE-ONLY (no policy)");
                    None
                }
                ArmoredLoad::Unreadable(e) => {
                    eprintln!("serve: cannot read checkpoint: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!("serve: no --checkpoint, using an UNTRAINED policy");
            Some(Mlp::new(
                &[serve_obs_dim(), 32, serve_num_actions()],
                Activation::Tanh,
                7,
            ))
        }
    };

    let started = match policy {
        Some(policy) => Server::start(policy, cfg).or_else(|e| {
            // A checkpoint of the wrong shape is as unusable as a corrupt
            // one: say why, then keep the service up without it.
            eprintln!("serve: {e}");
            eprintln!("serve: continuing BASELINE-ONLY (no policy)");
            Server::start_baseline_only(daemon_cfg(args))
        }),
        None => Server::start_baseline_only(cfg),
    };
    match started {
        Ok(server) => {
            if server.is_baseline_only() {
                eprintln!("serve: baseline-only mode: every reply degrades to store/baseline");
            }
            println!("serve: listening on {}", server.addr());
            server.wait();
            if autophase_telemetry::enabled() {
                print!("{}", autophase_telemetry::render_summary());
            }
            eprintln!("serve: clean shutdown");
        }
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}

fn require_addr(args: &[String]) -> String {
    match arg_value(args, "--addr") {
        Some(a) => a,
        None => {
            eprintln!("serve: --addr <host:port> is required for this subcommand");
            std::process::exit(2);
        }
    }
}

fn fetch_stats(addr: &str) -> StatsSnapshot {
    let result = Client::connect(addr).and_then(|mut c| {
        c.set_read_timeout(Some(Duration::from_secs(5)))?;
        c.stats()
    });
    match result {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}

fn run_stats(args: &[String]) {
    let addr = require_addr(args);
    print!("{}", render_dashboard(&fetch_stats(&addr), None));
}

fn run_top(args: &[String]) {
    let addr = require_addr(args);
    let interval = Duration::from_millis(
        arg_value(args, "--interval-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1000),
    );
    let count: Option<u64> = arg_value(args, "--count").and_then(|v| v.parse().ok());
    let mut prev: Option<(StatsSnapshot, Instant)> = None;
    let mut iterations = 0u64;
    loop {
        let snap = fetch_stats(&addr);
        let now = Instant::now();
        let rates = prev
            .as_ref()
            .map(|(p, t)| (p, now.duration_since(*t).as_secs_f64()));
        // Clear + home, then one dashboard frame.
        print!("\x1b[2J\x1b[H{}", render_dashboard(&snap, rates));
        use std::io::Write;
        let _ = std::io::stdout().flush();
        prev = Some((snap, now));
        iterations += 1;
        if count.is_some_and(|c| iterations >= c) {
            return;
        }
        std::thread::sleep(interval);
    }
}

fn run_models(args: &[String]) {
    let addr = require_addr(args);
    let result = Client::connect(&addr).and_then(|mut c| {
        c.set_read_timeout(Some(Duration::from_secs(5)))?;
        c.models()
    });
    let snap = match result {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    };
    if !snap.registry {
        println!("no model registry (daemon started without --registry)");
    }
    println!(
        "serving v{}   challenger {}   swaps {}",
        snap.serving.map_or("-".into(), |v| v.to_string()),
        snap.challenger.map_or("-".into(), |v| format!("v{v}")),
        snap.swaps
    );
    if snap.versions.is_empty() {
        return;
    }
    println!(
        "{:<8} {:>8} {:>8} {:>9} {:>7} {:>8} {:>10} {:>7}",
        "version", "samples", "updates", "requests", "wins", "inserts", "mean_impr", "role"
    );
    for v in &snap.versions {
        let role = match (v.serving, v.challenger) {
            (true, _) => "serving",
            (_, true) => "B-side",
            _ => "",
        };
        println!(
            "v{:<7} {:>8} {:>8} {:>9} {:>7} {:>8} {:>9.2}% {:>7}",
            v.version,
            v.samples,
            v.updates,
            v.requests,
            v.wins,
            v.store_inserts,
            v.mean_improvement * 100.0,
            role
        );
    }
}

fn run_promote(args: &[String]) {
    let addr = require_addr(args);
    let version: u64 = match arg_value(args, "--version").and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("serve: promote needs --version <n>");
            std::process::exit(2);
        }
    };
    let ab = args.iter().any(|a| a == "--ab");
    let result = Client::connect(&addr).and_then(|mut c| {
        c.set_read_timeout(Some(Duration::from_secs(5)))?;
        if ab {
            c.promote_ab(version)
        } else {
            c.promote(version)
        }
    });
    match result {
        Ok(()) => println!(
            "promoted v{version}{}",
            if ab { " as B-side challenger" } else { "" }
        ),
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}

fn run_trace(args: &[String]) {
    let addr = require_addr(args);
    let n = arg_value(args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let result = Client::connect(&addr).and_then(|mut c| {
        c.set_read_timeout(Some(Duration::from_secs(5)))?;
        c.traces(n)
    });
    match result {
        Ok(body) => print!("{body}"),
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}

/// Nanoseconds, human-readable.
fn ns(v: u64) -> String {
    match v {
        0..=9_999 => format!("{v}ns"),
        10_000..=999_999 => format!("{:.1}us", v as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", v as f64 / 1e6),
        _ => format!("{:.2}s", v as f64 / 1e9),
    }
}

/// One text frame of the dashboard. `rates` is the previous snapshot
/// plus the seconds since it was taken — present only in `top` mode,
/// where counter deltas become rates.
fn render_dashboard(snap: &StatsSnapshot, rates: Option<(&StatsSnapshot, f64)>) -> String {
    let mut out = String::new();
    let recv = snap.counter("serve.req", "recv");
    let ok_store = snap.counter("serve.req", "ok_store");
    let ok_policy = snap.counter("serve.req", "ok_policy");
    let ok_baseline = snap.counter("serve.req", "ok_baseline");
    let degraded = snap.counter("serve.req", "degraded_to_baseline");
    let hits = snap.counter("serve.store", "hit");
    let misses = snap.counter("serve.store", "miss");
    let refused: u64 = [
        "err_overloaded",
        "err_deadline",
        "err_parse",
        "err_bad_request",
        "err_internal",
    ]
    .iter()
    .map(|l| snap.counter("serve.req", l))
    .sum();

    let _ = writeln!(out, "autophase-serve dashboard");
    match rates {
        Some((prev, dt)) if dt > 0.0 => {
            let rps = (recv.saturating_sub(prev.counter("serve.req", "recv"))) as f64 / dt;
            let _ = writeln!(out, "  req/s      {rps:10.1}   (over the last {dt:.1}s)");
        }
        _ => {
            let _ = writeln!(
                out,
                "  req/s      {:>10}   (one snapshot; use `top` for rates)",
                "-"
            );
        }
    }
    let lookups = hits + misses;
    let hit_rate = if lookups > 0 {
        hits as f64 / lookups as f64 * 100.0
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  requests   {recv:10}   ok store/policy/baseline {ok_store}/{ok_policy}/{ok_baseline}   refused {refused}"
    );
    let _ = writeln!(
        out,
        "  store      {hit_rate:9.1}%   hit rate ({hits}/{lookups} lookups)"
    );
    let _ = writeln!(
        out,
        "  queue      {:10.0}   waiting now   degraded-to-baseline {degraded}",
        snap.gauge("serve.queue_depth", "")
    );
    let _ = writeln!(
        out,
        "  flight     {:10}   traces completed   dumps {}",
        snap.counter("flight.completed", ""),
        snap.counter_family_total("flight.dump")
    );

    let stages = snap.hist_family("serve.stage_ns");
    if !stages.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  {:<18} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "stage", "count", "p50", "p95", "p99", "mean"
        );
        // `total` last: it is the sum the per-stage rows decompose.
        let (totals, mut rows): (Vec<_>, Vec<_>) =
            stages.into_iter().partition(|(l, _)| l == "total");
        rows.extend(totals);
        for (label, h) in rows {
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:<18} {:>9} {:>9} {:>9} {:>9} {:>9}",
                label,
                h.count,
                ns(h.p50),
                ns(h.p95),
                ns(h.p99),
                ns(mean)
            );
        }
    }
    if let Some(h) = snap.hist("serve.batch_size", "") {
        let mean = if h.count > 0 {
            h.sum as f64 / h.count as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "\n  inference  batches {}   mean batch {mean:.1}   forward p95 {}",
            h.count,
            ns(snap.hist("serve.engine_ns", "forward").map_or(0, |f| f.p95))
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_formatting_is_scaled() {
        assert_eq!(ns(980), "980ns");
        assert_eq!(ns(42_000), "42.0us");
        assert_eq!(ns(7_300_000), "7.3ms");
        assert_eq!(ns(12_000_000_000), "12.00s");
    }

    #[test]
    fn dashboard_renders_without_instruments() {
        let empty = StatsSnapshot::default();
        let frame = render_dashboard(&empty, None);
        assert!(frame.contains("autophase-serve dashboard"));
        // No stage table without stage histograms, no panic either.
        assert!(!frame.contains("p99 "));
    }
}
