//! The compile-service daemon.
//!
//! ```text
//! serve --checkpoint policy.ckpt [--addr 127.0.0.1:7463] [--store serve_store.log]
//!       [--workers 4] [--queue-cap 64] [--deadline-ms 1000] [--chaos]
//!       [--telemetry]
//! ```
//!
//! Loads the policy from an `autophase_rl::checkpoint::PolicyCheckpoint`
//! (train one with `serve_bench` or any experiment that saves
//! checkpoints), binds, prints the address, and serves until a client
//! sends `SHUTDOWN`. Without `--checkpoint` a freshly initialized
//! (untrained) policy is used — handy for smoke tests, useless for
//! quality.

use autophase_nn::mlp::{Activation, Mlp};
use autophase_rl::checkpoint::PolicyCheckpoint;
use autophase_serve::engine::{serve_num_actions, serve_obs_dim};
use autophase_serve::server::{Server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == key).map(|w| w[1].clone())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: serve [--checkpoint <path>] [--addr <host:port>] [--store <path>] \
             [--workers <n>] [--queue-cap <n>] [--deadline-ms <ms>] [--chaos] [--telemetry]"
        );
        return;
    }
    let mut cfg = ServerConfig::default();
    if let Some(addr) = arg_value(&args, "--addr") {
        cfg.addr = addr;
    }
    if let Some(store) = arg_value(&args, "--store") {
        cfg.store_path = PathBuf::from(store);
    }
    if let Some(w) = arg_value(&args, "--workers").and_then(|v| v.parse().ok()) {
        cfg.workers = w;
    }
    if let Some(q) = arg_value(&args, "--queue-cap").and_then(|v| v.parse().ok()) {
        cfg.queue_cap = q;
    }
    if let Some(d) = arg_value(&args, "--deadline-ms").and_then(|v| v.parse().ok()) {
        cfg.default_deadline = Duration::from_millis(d);
    }
    cfg.chaos = args.iter().any(|a| a == "--chaos");
    if args.iter().any(|a| a == "--telemetry") {
        autophase_telemetry::enable();
    }

    let policy = match arg_value(&args, "--checkpoint") {
        Some(path) => {
            let path = PathBuf::from(path);
            match PolicyCheckpoint::load(&path) {
                Ok(ckpt) => {
                    eprintln!(
                        "serve: loaded {:?} checkpoint {}",
                        ckpt.algo,
                        path.display()
                    );
                    ckpt.policy
                }
                Err(e) => {
                    eprintln!("serve: cannot load checkpoint: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!("serve: no --checkpoint, using an UNTRAINED policy");
            Mlp::new(
                &[serve_obs_dim(), 32, serve_num_actions()],
                Activation::Tanh,
                7,
            )
        }
    };

    match Server::start(policy, cfg) {
        Ok(server) => {
            println!("serve: listening on {}", server.addr());
            server.wait();
            if autophase_telemetry::enabled() {
                print!("{}", autophase_telemetry::render_summary());
            }
            eprintln!("serve: clean shutdown");
        }
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}
