//! Client-side view of a `STATS` reply.
//!
//! The wire body is the telemetry registry rendered as metrics JSONL
//! (`autophase_telemetry::render_metrics_jsonl_from`): one
//! `counter`/`gauge`/`histogram` object per line with a fixed key
//! shape. This module parses that body back into lookup tables so the
//! `serve top` dashboard, the benches, and the smoke tests can read a
//! live daemon's instruments without a JSON dependency. Unknown line
//! types and malformed lines are skipped, not fatal — a newer daemon
//! must remain introspectable by an older client.

use std::collections::HashMap;

/// Summary statistics of one histogram instrument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistStat {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Interpolated 50th percentile.
    pub p50: u64,
    /// Interpolated 90th percentile.
    pub p90: u64,
    /// Interpolated 95th percentile.
    pub p95: u64,
    /// Interpolated 99th percentile.
    pub p99: u64,
}

/// A parsed `STATS` body: instruments keyed by `(name, label)`.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Counter values.
    pub counters: HashMap<(String, String), u64>,
    /// Gauge values.
    pub gauges: HashMap<(String, String), f64>,
    /// Histogram summaries.
    pub hists: HashMap<(String, String), HistStat>,
}

impl StatsSnapshot {
    /// Parse a metrics-JSONL body. Never fails: unparseable lines are
    /// skipped.
    pub fn parse(body: &str) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        for line in body.lines() {
            let Some(ty) = get_str(line, "type") else {
                continue;
            };
            let Some(name) = get_str(line, "name") else {
                continue;
            };
            let label = get_str(line, "label").unwrap_or_default();
            let key = (name, label);
            match ty.as_str() {
                "counter" => {
                    if let Some(v) = get_u64(line, "value") {
                        snap.counters.insert(key, v);
                    }
                }
                "gauge" => {
                    if let Some(v) = get_f64(line, "value") {
                        snap.gauges.insert(key, v);
                    }
                }
                "histogram" => {
                    snap.hists.insert(
                        key,
                        HistStat {
                            count: get_u64(line, "count").unwrap_or(0),
                            sum: get_u64(line, "sum").unwrap_or(0),
                            min: get_u64(line, "min").unwrap_or(0),
                            max: get_u64(line, "max").unwrap_or(0),
                            p50: get_u64(line, "p50").unwrap_or(0),
                            p90: get_u64(line, "p90").unwrap_or(0),
                            p95: get_u64(line, "p95").unwrap_or(0),
                            p99: get_u64(line, "p99").unwrap_or(0),
                        },
                    );
                }
                _ => {}
            }
        }
        snap
    }

    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters
            .get(&(name.to_string(), label.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Gauge value, 0.0 when absent.
    pub fn gauge(&self, name: &str, label: &str) -> f64 {
        self.gauges
            .get(&(name.to_string(), label.to_string()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Histogram summary, if that instrument exists.
    pub fn hist(&self, name: &str, label: &str) -> Option<HistStat> {
        self.hists
            .get(&(name.to_string(), label.to_string()))
            .copied()
    }

    /// Every label of one histogram family (e.g. the stages of
    /// `serve.stage_ns`), sorted by label.
    pub fn hist_family(&self, name: &str) -> Vec<(String, HistStat)> {
        let mut out: Vec<(String, HistStat)> = self
            .hists
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|((_, l), h)| (l.clone(), *h))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Sum every counter of one family (e.g. all `serve.req` outcomes).
    pub fn counter_family_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| v)
            .sum()
    }
}

/// One registry (or live-serving) model version from a `MODEL` reply.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModelVersionStat {
    /// Registry version number (0 is the daemon's boot policy).
    pub version: u64,
    /// Transitions the learner had ingested when this version published.
    pub samples: u64,
    /// PPO updates behind this version.
    pub updates: u64,
    /// Whether the engine is serving this version on the A side.
    pub serving: bool,
    /// Whether this version is the B-side (challenger) of an A/B split.
    pub challenger: bool,
    /// Policy-sourced compiles this version answered.
    pub requests: u64,
    /// Of those, how many matched or beat the `-O3` cycle count.
    pub wins: u64,
    /// Of those, how many inserted/improved a persistent-store entry.
    pub store_inserts: u64,
    /// Mean relative improvement over `-O3` across this version's
    /// requests (positive = fewer cycles than `-O3`).
    pub mean_improvement: f64,
}

/// A parsed `MODEL` body: the registry's versions plus what the engine
/// is serving right now.
#[derive(Debug, Clone, Default)]
pub struct ModelsSnapshot {
    /// Every version line, in registry order.
    pub versions: Vec<ModelVersionStat>,
    /// Version currently serving on the A side, if any policy is live.
    pub serving: Option<u64>,
    /// B-side challenger version during an A/B split.
    pub challenger: Option<u64>,
    /// Lifetime hot-swaps the engine has applied.
    pub swaps: u64,
    /// Whether the daemon has a model registry at all.
    pub registry: bool,
}

impl ModelsSnapshot {
    /// Parse a `MODEL` JSONL body. Never fails: unparseable lines are
    /// skipped, so a newer daemon stays readable by an older client.
    pub fn parse(body: &str) -> ModelsSnapshot {
        let mut snap = ModelsSnapshot::default();
        for line in body.lines() {
            match get_str(line, "type").as_deref() {
                Some("model") => {
                    let Some(version) = get_u64(line, "version") else {
                        continue;
                    };
                    snap.versions.push(ModelVersionStat {
                        version,
                        samples: get_u64(line, "samples").unwrap_or(0),
                        updates: get_u64(line, "updates").unwrap_or(0),
                        serving: get_u64(line, "serving") == Some(1),
                        challenger: get_u64(line, "challenger") == Some(1),
                        requests: get_u64(line, "requests").unwrap_or(0),
                        wins: get_u64(line, "wins").unwrap_or(0),
                        store_inserts: get_u64(line, "store_inserts").unwrap_or(0),
                        mean_improvement: get_f64(line, "mean_improvement").unwrap_or(0.0),
                    });
                }
                Some("model_summary") => {
                    snap.serving = get_i64(line, "serving")
                        .filter(|&v| v >= 0)
                        .map(|v| v as u64);
                    snap.challenger = get_i64(line, "challenger")
                        .filter(|&v| v >= 0)
                        .map(|v| v as u64);
                    snap.swaps = get_u64(line, "swaps").unwrap_or(0);
                    snap.registry = get_u64(line, "registry") == Some(1);
                }
                _ => {}
            }
        }
        snap
    }

    /// The stat line for one version, if present.
    pub fn version(&self, version: u64) -> Option<&ModelVersionStat> {
        self.versions.iter().find(|v| v.version == version)
    }
}

/// Extract `"key":"string"` from a one-line JSON object, unescaping the
/// common escapes the telemetry sink emits.
fn get_str(line: &str, key: &str) -> Option<String> {
    let rest = field(line, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            _ => out.push(c),
        }
    }
    None
}

fn get_u64(line: &str, key: &str) -> Option<u64> {
    num_prefix(field(line, key)?).parse().ok()
}

fn get_i64(line: &str, key: &str) -> Option<i64> {
    num_prefix(field(line, key)?).parse().ok()
}

fn get_f64(line: &str, key: &str) -> Option<f64> {
    num_prefix(field(line, key)?).parse().ok()
}

/// The value substring starting right after `"key":`.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)?;
    Some(&line[i + pat.len()..])
}

/// Longest numeric prefix (digits, sign, dot, exponent).
fn num_prefix(s: &str) -> &str {
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(s.len());
    &s[..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_telemetry as telemetry;

    #[test]
    fn parses_what_the_sink_renders() {
        // Build a snapshot through the real registry so the parser is
        // pinned against the actual wire shape, not a hand-written copy.
        telemetry::reset();
        telemetry::enable();
        telemetry::incr("stats.test_req", "ok_store", 3);
        telemetry::incr("stats.test_req", "err_parse", 1);
        telemetry::set_gauge("stats.test_depth", "", 2.5);
        for v in [100, 200, 300, 400] {
            telemetry::observe("stats.test_ns", "parse", v);
        }
        let body = telemetry::render_metrics_jsonl_from(&telemetry::snapshot());
        telemetry::disable();
        telemetry::reset();

        let snap = StatsSnapshot::parse(&body);
        assert_eq!(snap.counter("stats.test_req", "ok_store"), 3);
        assert_eq!(snap.counter("stats.test_req", "err_parse"), 1);
        assert_eq!(snap.counter_family_total("stats.test_req"), 4);
        assert_eq!(snap.counter("stats.test_req", "nope"), 0);
        assert!((snap.gauge("stats.test_depth", "") - 2.5).abs() < 1e-9);
        let h = snap.hist("stats.test_ns", "parse").expect("histogram");
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1000);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 400);
        assert!(h.p50 > 0 && h.p50 <= h.p99);
        let fam = snap.hist_family("stats.test_ns");
        assert_eq!(fam.len(), 1);
        assert_eq!(fam[0].0, "parse");
    }

    #[test]
    fn parses_model_bodies() {
        let body = "{\"type\":\"model\",\"version\":1,\"samples\":96,\"updates\":2,\"serving\":0,\
                    \"challenger\":1,\"requests\":10,\"wins\":7,\"store_inserts\":4,\
                    \"mean_improvement\":0.125000}\n\
                    {\"type\":\"model\",\"version\":2,\"samples\":192,\"updates\":4,\"serving\":1,\
                    \"challenger\":0,\"requests\":3,\"wins\":3,\"store_inserts\":1,\
                    \"mean_improvement\":0.200000}\n\
                    garbage line\n\
                    {\"type\":\"model_summary\",\"serving\":2,\"challenger\":1,\"swaps\":5,\"registry\":1}\n";
        let snap = ModelsSnapshot::parse(body);
        assert_eq!(snap.versions.len(), 2);
        assert_eq!(snap.serving, Some(2));
        assert_eq!(snap.challenger, Some(1));
        assert_eq!(snap.swaps, 5);
        assert!(snap.registry);
        let v1 = snap.version(1).expect("v1 present");
        assert!(v1.challenger && !v1.serving);
        assert_eq!(v1.wins, 7);
        assert!((v1.mean_improvement - 0.125).abs() < 1e-9);
        assert!(snap.version(2).expect("v2 present").serving);
        assert!(snap.version(9).is_none());

        // A baseline-only daemon: no versions, serving=-1.
        let empty = ModelsSnapshot::parse(
            "{\"type\":\"model_summary\",\"serving\":-1,\"challenger\":-1,\"swaps\":0,\"registry\":0}\n",
        );
        assert!(empty.versions.is_empty());
        assert_eq!(empty.serving, None);
        assert!(!empty.registry);
    }

    #[test]
    fn hostile_and_malformed_lines_are_skipped() {
        let body = "not json\n\
                    {\"type\":\"counter\",\"name\":\"a\"}\n\
                    {\"type\":\"counter\",\"name\":\"esc\",\"label\":\"q\\\"uote\\\\\",\"value\":7}\n\
                    {\"type\":\"mystery\",\"name\":\"x\",\"value\":1}\n";
        let snap = StatsSnapshot::parse(body);
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counter("esc", "q\"uote\\"), 7);
    }
}
