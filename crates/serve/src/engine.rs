//! Batched policy inference and the greedy serving rollout.
//!
//! One dedicated thread owns the policy network. Request workers submit
//! observations and block on a result slot; the engine thread collects
//! everything that arrives within a small batching window (default
//! 100 µs, capped at [`EngineConfig::max_batch`]) and runs the gathered
//! batch through **one** SoA forward ([`SoaMlp::forward_batch`]) — one
//! wake-up, one queue-lock round, and one batched GEMM per batch instead
//! of per observation, which is where the throughput under concurrent
//! load comes from. The SoA kernels are bit-identical to
//! [`Mlp::forward`] (pinned by the nn crate's differential suite), so
//! batching never changes a served decision. Batch sizes land in the
//! `serve.batch_size` histogram, per-batch forward time in
//! `serve.engine_ns{forward}` (kept out of the `serve.stage_ns` family,
//! whose stages tile each request's timeline — a batch serves many
//! requests at once, so its time is not any single request's segment).
//!
//! The policy path is fault-isolated end to end: forward passes run
//! under `catch_unwind` (a poisoned network answers with a typed
//! [`PolicyFault`], not a dead daemon), and the rollout applies every
//! chosen pass through `apply_checked`, recording offenders in the
//! shared quarantine table so a pass that keeps faulting on a program
//! drops out of that program's action space. Injected faults
//! ([`InferenceEngine::inject_faults`]) hit the same surface the real
//! ones do, so chaos tests exercise the production degradation path.

use autophase_core::env::{
    EnvConfig, FeatureNorm, ObservationKind, PhaseOrderEnv, RewardKind, FILTERED_PASSES,
};
use autophase_core::Quarantine;
use autophase_features::{inst_count_filtered, IncrementalFeatures, FILTERED_FEATURES};
use autophase_ir::Module;
use autophase_nn::mlp::Mlp;
use autophase_nn::{BatchWorkspace, SoaMlp};
use autophase_passes::checked::{apply_checked_changeset, FuelBudget};
use autophase_telemetry as telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Panic payload of an injected engine crash
/// ([`InferenceEngine::inject_crashes`]) — lets test panic hooks
/// silence on-purpose crashes without hiding real ones.
pub const INJECTED_CRASH_MSG: &str = "injected engine crash (chaos)";

/// Install (once) a panic hook that swallows *injected* engine crashes —
/// payloads equal to [`INJECTED_CRASH_MSG`] — and delegates everything
/// else to the previous hook. Chaos tests crash the engine on purpose;
/// this keeps their stderr readable without hiding real failures.
pub fn quiet_crash_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| *s == INJECTED_CRASH_MSG);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Lock a mutex, recovering from poisoning: the engine supervisor
/// respawns after panics, and a panic mid-batch must not turn every
/// later `infer` into a second panic. All data under these locks stays
/// valid across unwinds (the batch guard answers in-flight slots).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Episode length of the serving rollout (and of the training
/// configuration a served checkpoint must come from).
pub const SERVE_EPISODE_LEN: usize = 12;

/// The environment configuration a served policy is trained under. The
/// engine reproduces this observation layout exactly at inference time;
/// a checkpoint trained under any other configuration is rejected at
/// startup by the shape check.
pub fn serve_env_config() -> EnvConfig {
    EnvConfig {
        observation: ObservationKind::Combined,
        feature_norm: FeatureNorm::InstCount,
        reward: RewardKind::Log,
        episode_len: SERVE_EPISODE_LEN,
        filtered_features: true,
        filtered_passes: true,
        ..EnvConfig::default()
    }
}

/// Observation width of [`serve_env_config`]: filtered features plus the
/// action histogram.
pub fn serve_obs_dim() -> usize {
    FILTERED_FEATURES.len() + FILTERED_PASSES.len()
}

/// Action count of [`serve_env_config`].
pub fn serve_num_actions() -> usize {
    FILTERED_PASSES.len()
}

/// A sanity environment over `program` in the serving configuration —
/// what `serve_bench` trains on.
pub fn serve_env(programs: Vec<Module>) -> PhaseOrderEnv {
    PhaseOrderEnv::new(programs, serve_env_config())
}

/// Why the policy path could not answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyFault {
    /// A forward pass panicked (or a chaos fault was injected).
    Inference,
    /// The engine is shutting down.
    Shutdown,
}

impl std::fmt::Display for PolicyFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyFault::Inference => write!(f, "policy inference faulted"),
            PolicyFault::Shutdown => write!(f, "inference engine shut down"),
        }
    }
}

impl std::error::Error for PolicyFault {}

/// Batching knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// How long the engine thread lingers for more arrivals after the
    /// first observation of a batch.
    pub batch_window: Duration,
    /// Hard cap on observations per batch.
    pub max_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            batch_window: Duration::from_micros(100),
            max_batch: 64,
        }
    }
}

/// What a traced rollout did, beyond the chosen ordering — the
/// per-request aggregates the flight recorder attaches as trace notes
/// (the rollout interleaves inference and pass application, so its
/// inner structure is aggregate counts, not timeline segments).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RolloutReport {
    /// The effective ordering (the passes that changed the module).
    pub applied: Vec<usize>,
    /// Forward passes submitted to the batching queue.
    pub infer_calls: u32,
    /// Total nanoseconds this request spent blocked on inference
    /// (enqueue → result, including batch linger).
    pub infer_wait_ns: u64,
    /// Largest engine batch any of this request's inferences was served
    /// in — 1 means every forward ran alone, larger values mean the
    /// batched GEMM actually amortized work across concurrent requests.
    pub infer_batch_max: u32,
    /// Pass applications that faulted (rolled back and quarantined).
    pub pass_faults: u32,
}

/// A successful inference: the logits plus the size of the engine batch
/// that served it (for [`RolloutReport::infer_batch_max`]).
type Inference = (Vec<f64>, u32);

type Slot = Arc<(Mutex<Option<Result<Inference, PolicyFault>>>, Condvar)>;

struct Job {
    obs: Vec<f64>,
    slot: Slot,
}

struct Queue {
    jobs: Vec<Job>,
    shutdown: bool,
}

/// Handle to the inference thread (see module docs).
pub struct InferenceEngine {
    queue: Arc<(Mutex<Queue>, Condvar)>,
    /// Armed chaos faults: each pending fault makes one upcoming
    /// inference answer [`PolicyFault::Inference`].
    chaos: Arc<AtomicU32>,
    /// Armed chaos crashes: each one panics the engine thread at the
    /// start of an upcoming batch (the supervisor respawns it).
    crash: Arc<AtomicU32>,
    /// Times the supervisor respawned the engine loop after a panic.
    respawns: Arc<AtomicU64>,
    episode_len: usize,
    /// Baseline-only mode: no thread, every inference answers
    /// [`PolicyFault::Inference`] so callers take the baseline rung.
    disabled: bool,
    thread: Option<JoinHandle<()>>,
}

/// Checkpoint/engine shape mismatch at startup.
#[derive(Debug)]
pub struct ShapeError(pub String);

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy shape error: {}", self.0)
    }
}

impl std::error::Error for ShapeError {}

impl InferenceEngine {
    /// Spawn the engine thread around a trained policy network.
    ///
    /// # Errors
    ///
    /// Rejects a policy whose input/output dimensions do not match the
    /// serving observation layout — a checkpoint from a different
    /// training configuration would silently misread every observation.
    pub fn start(policy: Mlp, cfg: EngineConfig) -> Result<InferenceEngine, ShapeError> {
        if policy.input_dim() != serve_obs_dim() || policy.output_dim() != serve_num_actions() {
            return Err(ShapeError(format!(
                "policy is {}x{}, serving needs {}x{} (train with serve_env_config())",
                policy.input_dim(),
                policy.output_dim(),
                serve_obs_dim(),
                serve_num_actions()
            )));
        }
        let queue = Arc::new((
            Mutex::new(Queue {
                jobs: Vec::new(),
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let chaos = Arc::new(AtomicU32::new(0));
        let crash = Arc::new(AtomicU32::new(0));
        let respawns = Arc::new(AtomicU64::new(0));
        let thread = {
            let queue = Arc::clone(&queue);
            let chaos = Arc::clone(&chaos);
            let crash = Arc::clone(&crash);
            let respawns = Arc::clone(&respawns);
            std::thread::Builder::new()
                .name("serve-infer".into())
                .spawn(move || {
                    // Supervisor: a panicking engine loop (injected crash
                    // or a bug past the per-forward catch_unwind) is
                    // respawned, not fatal. In-flight batch slots were
                    // already answered by the batch guard's Drop, so no
                    // request ever hangs across a respawn. Clean return
                    // means shutdown.
                    loop {
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            engine_loop(&queue, &chaos, &crash, &policy, &cfg)
                        }));
                        if run.is_ok() {
                            return;
                        }
                        respawns.fetch_add(1, Ordering::Relaxed);
                        telemetry::incr("serve.engine", "respawn", 1);
                    }
                })
                .expect("spawn inference thread")
        };
        Ok(InferenceEngine {
            queue,
            chaos,
            crash,
            respawns,
            episode_len: SERVE_EPISODE_LEN,
            disabled: false,
            thread: Some(thread),
        })
    }

    /// An engine with no policy and no thread: every inference answers
    /// [`PolicyFault::Inference`] immediately, so every request degrades
    /// to the baseline ordering. This is how the daemon keeps serving
    /// when its checkpoint is quarantined at startup.
    pub fn start_baseline_only() -> InferenceEngine {
        InferenceEngine {
            queue: Arc::new((
                Mutex::new(Queue {
                    jobs: Vec::new(),
                    shutdown: false,
                }),
                Condvar::new(),
            )),
            chaos: Arc::new(AtomicU32::new(0)),
            crash: Arc::new(AtomicU32::new(0)),
            respawns: Arc::new(AtomicU64::new(0)),
            episode_len: SERVE_EPISODE_LEN,
            disabled: true,
            thread: None,
        }
    }

    /// Whether this engine was started without a policy
    /// ([`start_baseline_only`](InferenceEngine::start_baseline_only)).
    pub fn is_baseline_only(&self) -> bool {
        self.disabled
    }

    /// Arm `n` injected faults: the next `n` inferences answer
    /// [`PolicyFault::Inference`], driving their requests down the
    /// degradation ladder exactly like a real forward-pass panic.
    pub fn inject_faults(&self, n: u32) {
        self.chaos.fetch_add(n, Ordering::Relaxed);
    }

    /// Arm `n` injected crashes: each one panics the engine thread at
    /// the start of an upcoming batch. The batch degrades (its requests
    /// get [`PolicyFault::Inference`]) and the supervisor respawns the
    /// loop — exercising the full whole-thread-death recovery path.
    pub fn inject_crashes(&self, n: u32) {
        self.crash.fetch_add(n, Ordering::Relaxed);
    }

    /// How many times the supervisor has respawned the engine loop after
    /// a panic.
    pub fn respawn_count(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// One blocking forward pass through the batching queue: logits over
    /// the serving action space.
    ///
    /// # Errors
    ///
    /// [`PolicyFault`] when the forward pass faulted (or was injected to)
    /// or the engine is shutting down.
    pub fn infer(&self, obs: Vec<f64>) -> Result<Vec<f64>, PolicyFault> {
        self.infer_sized(obs).map(|(logits, _)| logits)
    }

    /// [`infer`](InferenceEngine::infer), also reporting the size of the
    /// engine batch the forward ran in (≥ 1).
    ///
    /// # Errors
    ///
    /// Same contract as [`infer`](InferenceEngine::infer).
    pub fn infer_sized(&self, obs: Vec<f64>) -> Result<Inference, PolicyFault> {
        if self.disabled {
            return Err(PolicyFault::Inference);
        }
        let slot: Slot = Arc::new((Mutex::new(None), Condvar::new()));
        {
            let (lock, cv) = &*self.queue;
            let mut q = lock_recover(lock);
            if q.shutdown {
                return Err(PolicyFault::Shutdown);
            }
            q.jobs.push(Job {
                obs,
                slot: Arc::clone(&slot),
            });
            cv.notify_all();
        }
        let (lock, cv) = &*slot;
        let mut state = lock_recover(lock);
        while state.is_none() {
            state = cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.take().expect("slot filled")
    }

    /// Greedy policy rollout on `m` in place: `episode_len` steps of
    /// argmax actions, each chosen pass applied transactionally. Faulted
    /// applies are recorded in `quarantine` and skipped; quarantined
    /// passes are masked out of the argmax. Returns the effective
    /// ordering (the changing passes).
    ///
    /// # Errors
    ///
    /// [`PolicyFault`] if any forward pass faults — `m` is left at the
    /// last good state and the caller degrades to the baseline ordering.
    pub fn choose_sequence(
        &self,
        m: &mut Module,
        fp: u64,
        quarantine: &Quarantine,
        fuel: &FuelBudget,
    ) -> Result<Vec<usize>, PolicyFault> {
        self.choose_sequence_report(m, fp, quarantine, fuel)
            .map(|r| r.applied)
    }

    /// [`choose_sequence`](InferenceEngine::choose_sequence), plus the
    /// per-request aggregates ([`RolloutReport`]) a trace records.
    ///
    /// # Errors
    ///
    /// Same contract as [`choose_sequence`](InferenceEngine::choose_sequence).
    pub fn choose_sequence_report(
        &self,
        m: &mut Module,
        fp: u64,
        quarantine: &Quarantine,
        fuel: &FuelBudget,
    ) -> Result<RolloutReport, PolicyFault> {
        let mut histogram = vec![0.0f64; serve_num_actions()];
        // Incremental feature state: seeded with one full extraction,
        // then resynced from each successful apply's ChangeSet — a
        // changing pass usually dirties a few functions, not the module.
        let mut inc = IncrementalFeatures::new(m);
        let mut feats = inst_count_filtered(&inc.total());
        let mut report = RolloutReport::default();
        for _ in 0..self.episode_len {
            let mut obs = feats.clone();
            obs.extend_from_slice(&histogram);
            let infer_start = std::time::Instant::now();
            report.infer_calls += 1;
            let (logits, batch) = self.infer_sized(obs)?;
            report.infer_wait_ns += infer_start.elapsed().as_nanos() as u64;
            report.infer_batch_max = report.infer_batch_max.max(batch);
            let mut best: Option<(usize, f64)> = None;
            for (a, &score) in logits.iter().enumerate() {
                if quarantine.is_quarantined(fp, FILTERED_PASSES[a]) {
                    continue;
                }
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((a, score));
                }
            }
            // Everything quarantined for this program: nothing left to try.
            let Some((action, _)) = best else { break };
            let pass = FILTERED_PASSES[action];
            match apply_checked_changeset(m, pass, fuel) {
                Ok((true, cs)) => {
                    report.applied.push(pass);
                    if cs.needs_full_rebuild() {
                        inc.rebuild(m);
                    } else {
                        inc.update(m, &cs.dirty_funcs);
                    }
                    feats = inst_count_filtered(&inc.total());
                }
                Ok((false, _)) => {}
                Err(_fault) => {
                    // Rolled back by apply_checked; remember the offender
                    // so repeat faults stop costing attempts.
                    quarantine.record_fault(fp, pass);
                    report.pass_faults += 1;
                    telemetry::incr("serve.rollout", "pass_fault", 1);
                }
            }
            histogram[action] += 1.0;
        }
        Ok(report)
    }

    /// Stop the engine thread. Queued jobs are answered with
    /// [`PolicyFault::Shutdown`]. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let (lock, cv) = &*self.queue;
            let mut q = lock_recover(lock);
            q.shutdown = true;
            cv.notify_all();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn fill(slot: &Slot, result: Result<Inference, PolicyFault>) {
    let (lock, cv) = &**slot;
    *lock_recover(lock) = Some(result);
    cv.notify_all();
}

/// A drained batch with panic insurance: if the engine thread unwinds
/// mid-batch (injected crash, or a panic outside the per-forward
/// `catch_unwind`), Drop answers every not-yet-filled slot with
/// [`PolicyFault::Inference`] so those requests degrade instead of
/// hanging forever on a dead thread.
struct BatchGuard {
    jobs: Vec<Job>,
    filled: usize,
}

impl Drop for BatchGuard {
    fn drop(&mut self) {
        for job in &self.jobs[self.filled..] {
            fill(&job.slot, Err(PolicyFault::Inference));
        }
    }
}

fn engine_loop(
    queue: &Arc<(Mutex<Queue>, Condvar)>,
    chaos: &Arc<AtomicU32>,
    crash: &Arc<AtomicU32>,
    policy: &Mlp,
    cfg: &EngineConfig,
) {
    // The engine thread owns the policy for its whole life, so the SoA
    // transpose happens once per (re)spawn and every batch reuses one
    // workspace — a gathered batch is a single `forward_batch`, not
    // max_batch separate matvec chains.
    let psoa = SoaMlp::from_mlp(policy);
    let mut ws = BatchWorkspace::new();
    let (lock, cv) = &**queue;
    let mut q = lock_recover(lock);
    loop {
        while q.jobs.is_empty() && !q.shutdown {
            q = cv.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        if q.shutdown {
            for job in q.jobs.drain(..) {
                fill(&job.slot, Err(PolicyFault::Shutdown));
            }
            return;
        }
        // Linger one batching window for more arrivals, then drain.
        if q.jobs.len() < cfg.max_batch && !cfg.batch_window.is_zero() {
            let (guard, _) = cv
                .wait_timeout(q, cfg.batch_window)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
        let take = q.jobs.len().min(cfg.max_batch);
        let mut batch = BatchGuard {
            jobs: q.jobs.drain(..take).collect(),
            filled: 0,
        };
        drop(q);

        // One armed chaos crash kills this whole batch: panic with the
        // queue lock released (never poisoned by an injected crash) and
        // the batch in the guard, whose Drop degrades its requests.
        if crash
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            telemetry::incr("serve.policy_fault", "injected_crash", 1);
            std::panic::panic_any(INJECTED_CRASH_MSG);
        }

        telemetry::observe("serve.batch_size", "", batch.jobs.len() as u64);
        let t = telemetry::maybe_now();
        let batch_size = batch.jobs.len() as u32;

        // Triage in arrival order before touching the network: armed
        // chaos faults consume exactly one inference each (same drain
        // semantics as the per-job forward had), and a wrong-width
        // observation faults its own job instead of panicking the GEMM
        // under the whole batch.
        let mut faulted: Vec<Option<PolicyFault>> = Vec::with_capacity(batch.jobs.len());
        ws.begin(&psoa);
        for job in &batch.jobs {
            let injected = chaos
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
            if injected {
                telemetry::incr("serve.policy_fault", "injected", 1);
                faulted.push(Some(PolicyFault::Inference));
            } else if job.obs.len() != psoa.input_dim() {
                telemetry::incr("serve.policy_fault", "shape", 1);
                faulted.push(Some(PolicyFault::Inference));
            } else {
                ws.push_input(&job.obs);
                faulted.push(None);
            }
        }

        // One batched forward for every live job. A panic here faults
        // the live jobs (the armed/invalid ones keep their own verdicts);
        // the workspace is rebuilt by `begin` next batch, so a torn state
        // cannot leak forward.
        let forward_ok = ws.batch() == 0
            || catch_unwind(AssertUnwindSafe(|| psoa.forward_batch(&mut ws)))
                .map_err(|_| {
                    telemetry::incr("serve.policy_fault", "panic", ws.batch() as u64);
                })
                .is_ok();

        let mut row = 0;
        for (i, verdict) in faulted.iter_mut().enumerate() {
            let result = match verdict.take() {
                Some(fault) => Err(fault),
                None => {
                    let r = row;
                    row += 1;
                    if forward_ok {
                        Ok((ws.logits(r).to_vec(), batch_size))
                    } else {
                        Err(PolicyFault::Inference)
                    }
                }
            };
            fill(&batch.jobs[i].slot, result);
            batch.filled = i + 1;
        }
        telemetry::observe_since("serve.engine_ns", "forward", t);
        q = lock_recover(lock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autophase_passes::checked::apply_checked;

    fn test_policy(seed: u64) -> Mlp {
        Mlp::new(
            &[serve_obs_dim(), 16, serve_num_actions()],
            autophase_nn::mlp::Activation::Tanh,
            seed,
        )
    }

    #[test]
    fn rejects_mismatched_checkpoint_shape() {
        let bad = Mlp::new(&[3, 4, 2], autophase_nn::mlp::Activation::Tanh, 1);
        assert!(InferenceEngine::start(bad, EngineConfig::default()).is_err());
    }

    #[test]
    fn concurrent_inference_matches_direct_forward() {
        let policy = test_policy(7);
        let engine =
            Arc::new(InferenceEngine::start(policy.clone(), EngineConfig::default()).unwrap());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let policy = policy.clone();
                std::thread::spawn(move || {
                    for k in 0..20 {
                        let obs: Vec<f64> = (0..serve_obs_dim())
                            .map(|j| ((i * 31 + k * 7 + j) % 13) as f64 / 13.0)
                            .collect();
                        let got = engine.infer(obs.clone()).unwrap();
                        assert_eq!(got, policy.forward(&obs));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn wrong_width_observation_faults_its_job_not_the_engine() {
        let engine = InferenceEngine::start(test_policy(5), EngineConfig::default()).unwrap();
        assert_eq!(engine.infer(vec![0.0; 3]), Err(PolicyFault::Inference));
        // The engine keeps serving well-formed observations afterwards.
        assert!(engine.infer(vec![0.0; serve_obs_dim()]).is_ok());
    }

    #[test]
    fn infer_sized_reports_the_serving_batch() {
        let engine = InferenceEngine::start(test_policy(6), EngineConfig::default()).unwrap();
        let (logits, batch) = engine.infer_sized(vec![0.0; serve_obs_dim()]).unwrap();
        assert_eq!(logits.len(), serve_num_actions());
        assert_eq!(batch, 1, "a lone request is a batch of one");
    }

    #[test]
    fn injected_faults_surface_and_drain() {
        let engine = InferenceEngine::start(test_policy(3), EngineConfig::default()).unwrap();
        engine.inject_faults(2);
        let obs = vec![0.0; serve_obs_dim()];
        assert_eq!(engine.infer(obs.clone()), Err(PolicyFault::Inference));
        assert_eq!(engine.infer(obs.clone()), Err(PolicyFault::Inference));
        assert!(engine.infer(obs).is_ok(), "faults must drain");
    }

    #[test]
    fn injected_crash_degrades_batch_and_respawns() {
        quiet_crash_hook();
        let engine = InferenceEngine::start(test_policy(21), EngineConfig::default()).unwrap();
        engine.inject_crashes(1);
        let obs = vec![0.0; serve_obs_dim()];
        // The crashed batch answers with a fault (never hangs) ...
        assert_eq!(engine.infer(obs.clone()), Err(PolicyFault::Inference));
        // ... and the supervisor respawns the loop, so the engine keeps
        // serving without a new handle.
        assert!(engine.infer(obs).is_ok(), "engine must survive the crash");
        assert_eq!(engine.respawn_count(), 1);
    }

    #[test]
    fn baseline_only_engine_faults_every_inference() {
        let mut engine = InferenceEngine::start_baseline_only();
        assert!(engine.is_baseline_only());
        assert_eq!(
            engine.infer(vec![0.0; serve_obs_dim()]),
            Err(PolicyFault::Inference)
        );
        // The rollout degrades up front: the first inference faults, so
        // callers fall through to the baseline ordering.
        let mut m = autophase_benchmarks::suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .expect("gsm present")
            .module;
        let fp = autophase_core::eval_cache::fingerprint_module(&m);
        let got =
            engine.choose_sequence(&mut m, fp, &Quarantine::default(), &FuelBudget::default());
        assert_eq!(got, Err(PolicyFault::Inference));
        engine.shutdown(); // no thread: must be a no-op, not a hang
    }

    #[test]
    fn shutdown_answers_instead_of_hanging() {
        let mut engine = InferenceEngine::start(test_policy(9), EngineConfig::default()).unwrap();
        engine.shutdown();
        assert_eq!(
            engine.infer(vec![0.0; serve_obs_dim()]),
            Err(PolicyFault::Shutdown)
        );
    }

    #[test]
    fn greedy_rollout_improves_a_real_program() {
        let program = autophase_benchmarks::suite()
            .into_iter()
            .find(|b| b.name == "gsm")
            .expect("gsm present")
            .module;
        let engine = InferenceEngine::start(test_policy(11), EngineConfig::default()).unwrap();
        let quarantine = Quarantine::default();
        let fuel = FuelBudget::default();
        let fp = autophase_core::eval_cache::fingerprint_module(&program);
        let mut m = program.clone();
        let seq = engine
            .choose_sequence(&mut m, fp, &quarantine, &fuel)
            .unwrap();
        // Replaying the returned effective ordering on a fresh copy gives
        // exactly the module the rollout produced.
        let mut replay = program.clone();
        for &p in &seq {
            apply_checked(&mut replay, p, &fuel).unwrap();
        }
        use autophase_ir::printer::print_module;
        assert_eq!(print_module(&replay), print_module(&m));
    }
}
